//! Seeded property test: the TPR\*-tree's batched maintenance path is
//! observationally equivalent to the single-op oracle.
//!
//! The promoted successor of the pinned deterministic baselines in
//! `src/tree.rs` (which predate the batched path and once guarded the
//! trait-default fallback): for **random tick streams** — moves,
//! direction turns, fresh insertions, batch deletions, duplicate ids
//! within one batch — a tree maintained through `update_batch` /
//! `remove_batch` must answer every range and kNN query exactly like
//! a twin maintained through looped `insert` / `update` / `delete`
//! calls. Tree *shapes* legitimately differ (group insertion
//! re-clusters, forced reinsertion does not run); query answers,
//! contents, and structural invariants must not.

use proptest::prelude::*;
use vp_core::{knn_at, MovingObject, MovingObjectIndex, QueryRegion, RangeQuery};
use vp_geom::{Circle, Point, Rect};
use vp_storage::{BufferPool, DiskManager};
use vp_tpr::{TprConfig, TprTree, TprVariant};

use std::sync::Arc;

const DOMAIN: f64 = 10_000.0;

/// Deterministic xorshift stream (the shared idiom of this
/// workspace's tests).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x % 1_000_000) as f64 / 1_000_000.0
    }
}

fn tree(variant: TprVariant) -> TprTree {
    // 512-byte pages: 10 leaf entries, 6 internal entries — small
    // fanout exercises multi-way splits and underflow repair with few
    // objects.
    let pool = Arc::new(BufferPool::with_capacity(
        DiskManager::with_page_size(512),
        64,
    ));
    TprTree::new(
        pool,
        TprConfig {
            variant,
            ..TprConfig::default()
        },
    )
}

fn random_object(id: u64, t: f64, rng: &mut Rng) -> MovingObject {
    let pos = Point::new(rng.next() * DOMAIN, rng.next() * DOMAIN);
    let ang = rng.next() * std::f64::consts::TAU;
    let speed = rng.next() * 90.0;
    MovingObject::new(id, pos, Point::new(ang.cos() * speed, ang.sin() * speed), t)
}

/// Every observable of the two trees must agree: size, per-object
/// state, a spread of range queries, kNN answers, and the batched
/// tree's structural invariants.
fn assert_equivalent(batched: &TprTree, oracle: &TprTree, t: f64, rng: &mut Rng, ctx: &str) {
    assert_eq!(batched.len(), oracle.len(), "{ctx}: len diverged");
    batched
        .check_invariants()
        .unwrap()
        .unwrap_or_else(|e| panic!("{ctx}: invariant violated: {e}"));
    let domain = Rect::from_bounds(0.0, 0.0, DOMAIN, DOMAIN);
    for qi in 0..6 {
        let c = Point::new(rng.next() * DOMAIN, rng.next() * DOMAIN);
        let q = if qi % 2 == 0 {
            RangeQuery::time_slice(
                QueryRegion::Circle(Circle::new(c, 300.0 + rng.next() * 1_500.0)),
                t + qi as f64 * 10.0,
            )
        } else {
            RangeQuery::time_interval(
                QueryRegion::Rect(Rect::centered(c, 900.0, 700.0)),
                t,
                t + 40.0,
            )
        };
        let mut a = batched.range_query(&q).unwrap();
        let mut b = oracle.range_query(&q).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{ctx}: range query {qi} diverged");
        let k = 1 + (qi * 5) % 16;
        let a = knn_at(batched, c, k, t, &domain).unwrap();
        let b = knn_at(oracle, c, k, t, &domain).unwrap();
        assert_eq!(a, b, "{ctx}: {k}-NN at {c:?} diverged");
    }
}

fn run_stream(seed: u64, n: usize, ticks: usize, variant: TprVariant) {
    let mut rng = Rng(seed | 1);
    let mut batched = tree(variant);
    let mut oracle = tree(variant);

    // Seed population: the batched twin loads it through one
    // update_batch on an empty tree (the bulk re-clustering path).
    let mut live: Vec<MovingObject> = (0..n as u64)
        .map(|id| random_object(id, 0.0, &mut rng))
        .collect();
    batched.update_batch(&live).unwrap();
    for o in &live {
        oracle.insert(*o).unwrap();
    }
    let mut next_id = n as u64;
    assert_equivalent(&batched, &oracle, 0.0, &mut rng, "after load");

    for tick in 1..=ticks {
        let t = tick as f64 * 15.0;

        // Movers: about a third of the population reports; half of
        // those turn 90 degrees (stressing velocity re-clustering).
        let mut updates = Vec::new();
        let mut stale = None;
        for o in live.iter_mut() {
            if (o.id.wrapping_add(tick as u64)) % 3 == 0 {
                if stale.is_none() {
                    stale = Some(*o);
                }
                let vel = if o.id % 2 == 0 {
                    Point::new(-o.vel.y, o.vel.x)
                } else {
                    o.vel
                };
                *o = MovingObject::new(o.id, o.position_at(t), vel, t);
                updates.push(*o);
            }
        }
        // A duplicate id inside the batch: the stale pre-tick state
        // rides first; the fresh update must win.
        if let Some(stale) = stale {
            updates.insert(0, stale);
        }
        // A few brand-new ids exercise the upsert path.
        for _ in 0..(1 + (rng.next() * 4.0) as usize) {
            let fresh = random_object(next_id, t, &mut rng);
            next_id += 1;
            updates.push(fresh);
            live.push(fresh);
        }

        batched.update_batch(&updates).unwrap();
        for u in &updates {
            if oracle.get_object(u.id).unwrap().is_some() {
                oracle.update(*u).unwrap();
            } else {
                oracle.insert(*u).unwrap();
            }
        }
        for o in &live {
            assert_eq!(
                batched.get_object(o.id).unwrap(),
                oracle.get_object(o.id).unwrap(),
                "tick {tick}: object {} state diverged",
                o.id
            );
        }
        assert_equivalent(
            &batched,
            &oracle,
            t,
            &mut rng,
            &format!("tick {tick} updates"),
        );

        // Batched deletion of roughly a seventh of the population.
        let doomed: Vec<u64> = live
            .iter()
            .map(|o| o.id)
            .filter(|id| (id.wrapping_mul(31).wrapping_add(tick as u64)) % 7 == 0)
            .collect();
        if !doomed.is_empty() {
            batched.remove_batch(&doomed).unwrap();
            for &id in &doomed {
                oracle.delete(id).unwrap();
            }
            live.retain(|o| !doomed.contains(&o.id));
        }
        assert_equivalent(
            &batched,
            &oracle,
            t,
            &mut rng,
            &format!("tick {tick} removals"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random tick streams against the single-op oracle, TPR\* mode.
    #[test]
    fn star_batched_ticks_match_single_op_oracle(
        seed in 0u64..u64::MAX,
        n in 40usize..180,
        ticks in 1usize..5,
    ) {
        run_stream(seed, n, ticks, TprVariant::Star);
    }

    /// The classic TPR variant shares the batched machinery with a
    /// different cost metric and fewer candidate orderings; it must
    /// hold the same equivalence.
    #[test]
    fn classic_batched_ticks_match_single_op_oracle(
        seed in 0u64..u64::MAX,
        n in 40usize..120,
        ticks in 1usize..4,
    ) {
        run_stream(seed, n, ticks, TprVariant::Classic);
    }
}
