//! The TPR-tree read path, shared between the live tree and its
//! lock-free snapshots.
//!
//! The traversal machinery (single, batched, and incremental-kNN
//! queries) is written once, generic over a [`PageRead`] page source:
//! the live [`TprTree`] runs it against its buffer pool (wrapped in
//! I/O tracking), [`TprSnapshot`] against a pinned [`PageSnapshot`] —
//! giving point-in-time query results with no coordination with
//! writers mutating the live tree.
//!
//! [`TprTree`]: crate::tree::TprTree

use vp_core::{IndexResult, IndexSnapshot, ObjectId, RangeQuery};
use vp_geom::Tpbr;
use vp_storage::{PageId, PageRead, PageSnapshot};

use crate::node::Node;

/// Reads and decodes one node from any page source.
pub(crate) fn read_node_from<P: PageRead>(pages: &P, pid: PageId) -> IndexResult<Node> {
    let node = pages.read_page(pid, Node::decode)??;
    Ok(node)
}

/// Single range query: DFS from `root`, pruning subtrees whose TPBR
/// cannot intersect the query's over its time window; leaf entries are
/// exact-filtered. Contract as
/// [`vp_core::MovingObjectIndex::range_query`].
pub(crate) fn range_query_from<P: PageRead>(
    pages: &P,
    root: PageId,
    query: &RangeQuery,
) -> IndexResult<Vec<ObjectId>> {
    let mut out = Vec::new();
    if root.is_valid() {
        let q_tpbr = query.tpbr();
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            match read_node_from(pages, pid)? {
                Node::Leaf { entries } => {
                    for e in &entries {
                        if query.matches(&e.to_object()) {
                            out.push(e.id);
                        }
                    }
                }
                Node::Internal { entries, .. } => {
                    for e in &entries {
                        if e.tpbr
                            .intersects_during(&q_tpbr, query.t_start, query.t_end)
                        {
                            stack.push(e.child);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Shared traversal over the whole batch: one top-down pass carries,
/// per subtree, the indices of the queries whose TPBR still intersects
/// it — every node page is read and decoded once for all queries that
/// reach it. Per query the visited subtrees, the exact filter, and the
/// report order are identical to [`range_query_from`].
pub(crate) fn range_query_batch_from<P: PageRead>(
    pages: &P,
    root: PageId,
    queries: &[RangeQuery],
) -> IndexResult<Vec<Vec<ObjectId>>> {
    let mut results: Vec<Vec<ObjectId>> = vec![Vec::new(); queries.len()];
    if !root.is_valid() || queries.is_empty() {
        return Ok(results);
    }
    let q_tpbrs: Vec<Tpbr> = queries.iter().map(RangeQuery::tpbr).collect();
    let mut stack: Vec<(PageId, Vec<usize>)> = vec![(root, (0..queries.len()).collect())];
    while let Some((pid, alive)) = stack.pop() {
        match read_node_from(pages, pid)? {
            Node::Leaf { entries } => {
                for e in &entries {
                    let obj = e.to_object();
                    for &qi in &alive {
                        if queries[qi].matches(&obj) {
                            results[qi].push(e.id);
                        }
                    }
                }
            }
            Node::Internal { entries, .. } => {
                for e in &entries {
                    let survivors: Vec<usize> = alive
                        .iter()
                        .copied()
                        .filter(|&qi| {
                            e.tpbr.intersects_during(
                                &q_tpbrs[qi],
                                queries[qi].t_start,
                                queries[qi].t_end,
                            )
                        })
                        .collect();
                    if !survivors.is_empty() {
                        stack.push((e.child, survivors));
                    }
                }
            }
        }
    }
    Ok(results)
}

/// Incremental kNN candidates: a pruned re-descent skipping subtrees
/// whose footprint over the query window lies entirely inside the
/// `covered` probe's region (already swept by earlier rounds of the
/// chain); visited leaves report unfiltered. Contract as
/// [`vp_core::MovingObjectIndex::knn_candidates`].
pub(crate) fn knn_candidates_from<P: PageRead>(
    pages: &P,
    root: PageId,
    query: &RangeQuery,
    covered: Option<&RangeQuery>,
) -> IndexResult<Vec<ObjectId>> {
    let mut out = Vec::new();
    if !root.is_valid() {
        return Ok(out);
    }
    // The containment test evaluates node footprints at a single
    // instant, which is only sound for time-slice probes over the
    // same instant.
    let covered = covered
        .filter(|c| c.is_time_slice() && query.is_time_slice() && c.t_start == query.t_start);
    let q_tpbr = query.tpbr();
    let mut stack = vec![root];
    while let Some(pid) = stack.pop() {
        match read_node_from(pages, pid)? {
            Node::Leaf { entries } => {
                // Candidate mode: every entry of a visited leaf,
                // unfiltered.
                out.extend(entries.iter().map(|e| e.id));
            }
            Node::Internal { entries, .. } => {
                for e in &entries {
                    if !e
                        .tpbr
                        .intersects_during(&q_tpbr, query.t_start, query.t_end)
                    {
                        continue;
                    }
                    if let Some(c) = covered {
                        if c.region.contains_rect(&e.tpbr.rect_at(c.t_start)) {
                            continue; // fully swept by earlier rounds
                        }
                    }
                    stack.push(e.child);
                }
            }
        }
    }
    Ok(out)
}

/// A point-in-time, read-only handle on a [`TprTree`]: the root handle
/// as of one committed pool epoch plus a [`PageSnapshot`] serving that
/// epoch's pages.
///
/// Queries run against it with no coordination with — and no
/// visibility into — writers mutating the live tree, and acquire **no
/// shared locks** for pages resident when the snapshot was taken.
/// Snapshot reads are invisible to the live tree's I/O counters. Safe
/// to share across reader threads. Obtained via
/// [`vp_core::SnapshotIndex::snapshot`] on [`TprTree`].
///
/// [`TprTree`]: crate::tree::TprTree
pub struct TprSnapshot {
    pub(crate) pages: PageSnapshot,
    pub(crate) root: PageId,
    pub(crate) len: usize,
}

impl TprSnapshot {
    /// The committed pool epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.pages.epoch()
    }
}

impl IndexSnapshot for TprSnapshot {
    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        range_query_from(&self.pages, self.root, query)
    }

    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        range_query_batch_from(&self.pages, self.root, queries)
    }

    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        knn_candidates_from(&self.pages, self.root, query, covered)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use vp_core::{MovingObject, MovingObjectIndex, QueryRegion, SnapshotIndex};
    use vp_geom::{Circle, Point};
    use vp_storage::{BufferPool, DiskManager};

    use super::*;
    use crate::tree::{TprConfig, TprTree};

    fn small_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(512),
            50,
        ))
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x % 1_000_000) as f64 / 1_000_000.0
        }
    }

    fn random_objects(n: usize, seed: u64, t: f64) -> Vec<MovingObject> {
        let mut rng = Rng(seed);
        (0..n as u64)
            .map(|id| {
                MovingObject::new(
                    id,
                    Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0),
                    Point::new((rng.next() - 0.5) * 100.0, (rng.next() - 0.5) * 100.0),
                    t,
                )
            })
            .collect()
    }

    fn queries(n: usize, seed: u64, t: f64) -> Vec<RangeQuery> {
        let mut rng = Rng(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
                RangeQuery::time_slice(QueryRegion::Circle(Circle::new(c, 1_100.0)), t)
            })
            .collect()
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TprSnapshot>();
    }

    #[test]
    fn snapshot_isolated_from_later_ticks() {
        let objs = random_objects(500, 0x7B1, 0.0);
        let mut t = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
        let qs = queries(16, 0xABCD, 10.0);
        let baseline = t.range_query_batch(&qs).unwrap();
        let knn_probe = &qs[0];
        let baseline_knn = t.knn_candidates(knn_probe, None).unwrap();

        let snap = t.snapshot().unwrap();
        assert_eq!(snap.len(), 500);

        // Move everything, drop one, add one.
        let moved: Vec<MovingObject> = objs
            .iter()
            .map(|o| MovingObject::new(o.id, o.position_at(60.0), o.vel, 60.0))
            .collect();
        t.update_batch(&moved).unwrap();
        t.delete(0).unwrap();
        t.insert(MovingObject::new(
            9_999,
            Point::new(5_000.0, 5_000.0),
            Point::new(2.0, -3.0),
            60.0,
        ))
        .unwrap();

        // Bit-identical to the quiesced pre-tick answers.
        assert_eq!(snap.range_query_batch(&qs).unwrap(), baseline);
        for (q, want) in qs.iter().zip(&baseline) {
            assert_eq!(&IndexSnapshot::range_query(&snap, q).unwrap(), want);
        }
        assert_eq!(
            IndexSnapshot::knn_candidates(&snap, knn_probe, None).unwrap(),
            baseline_knn
        );

        // Fresh snapshot observes the post-tick state.
        let snap2 = t.snapshot().unwrap();
        assert_eq!(snap2.len(), 500);
        let later = queries(16, 0xABCD, 65.0);
        assert_eq!(
            snap2.range_query_batch(&later).unwrap(),
            t.range_query_batch(&later).unwrap()
        );
    }

    #[test]
    fn snapshot_readable_while_writer_thread_ticks() {
        let objs = random_objects(300, 0xD0C, 0.0);
        let mut t = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
        let qs = queries(6, 0x51AB, 5.0);
        let baseline = t.range_query_batch(&qs).unwrap();
        let snap = t.snapshot().unwrap();

        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..12 {
                    assert_eq!(snap.range_query_batch(&qs).unwrap(), baseline);
                }
            });
            for round in 1..=5 {
                let at = round as f64 * 20.0;
                let moved: Vec<MovingObject> = objs
                    .iter()
                    .map(|o| MovingObject::new(o.id, o.position_at(at), o.vel, at))
                    .collect();
                t.update_batch(&moved).unwrap();
                t.publish_epoch();
            }
        });
        assert_eq!(t.len(), 300);
        assert!(t.check_invariants().unwrap().is_ok());
    }
}
