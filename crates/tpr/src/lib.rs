//! # vp-tpr — the TPR-tree and TPR\*-tree
//!
//! A from-scratch, paged implementation of the time-parameterized
//! R-tree family used as the paper's first baseline index:
//!
//! * **TPR\*-tree** (Tao, Papadias, Sun — VLDB 2003): insertion chooses
//!   subtrees and split points by minimizing *sweep-region volume*
//!   integrals over a horizon (the expected-node-access cost model of
//!   the paper's Equation 1), with R\*-style forced reinsertion.
//! * **TPR-tree** (Šaltenis et al. — SIGMOD 2000) mode: the classic
//!   variant using area-at-midpoint metrics, kept as an ablation
//!   baseline ([`TprVariant::Classic`]).
//!
//! Every structural decision — subtree choice, reinsertion
//! candidates, split points — is steered by the [`cost`] metric: the
//! sweep volume a query-inflated node TPBR covers over the tree's
//! horizon (Star) or its area at the horizon midpoint (Classic). See
//! [`cost::sweep_cost`] / [`cost::midpoint_area`].
//!
//! Nodes live in 4 KB pages behind the `vp-storage` buffer pool; every
//! node visit is a logical page access, so the paper's query/update I/O
//! metrics fall out of the pool statistics. The tree implements
//! [`vp_core::MovingObjectIndex`], so it can be wrapped by the VP index
//! manager unchanged — including the **batched maintenance path**
//! ([`TprTree::bulk_load`], `update_batch`, `remove_batch`): whole
//! tick batches are partitioned per node top-down and applied with
//! bulk TPBR re-clustering (multi-way splits scored by prefix/suffix
//! cost scans, bulk underflow repair), one page write per touched
//! node. See the [`tree`] module docs for the algorithm.

pub mod cost;
pub mod node;
pub mod snapshot;
pub mod tree;

pub use cost::sweep_cost;
pub use node::{InternalEntry, LeafEntry, Node, NodeLayout};
pub use snapshot::TprSnapshot;
pub use tree::{TprConfig, TprTree, TprVariant};
