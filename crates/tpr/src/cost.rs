//! Insertion cost metrics (Tao et al. cost model).
//!
//! The TPR\*-tree steers every structural decision — subtree choice,
//! reinsertion candidates, split points — by the *sweep-region volume*
//! a node contributes to an average query: the node's TPBR, inflated by
//! half the optimization query's extent per axis, integrated over the
//! tree's horizon (Section 3.1 / Equation 1 of the paper). The classic
//! TPR-tree uses the simpler area-at-midpoint metric.

use vp_geom::Tpbr;

/// The expected-access cost of a node over `[now, now + horizon]` for
/// queries of extent `query_len` per axis: the sweep volume of the
/// query-inflated TPBR.
pub fn sweep_cost(tpbr: &Tpbr, now: f64, horizon: f64, query_len: f64) -> f64 {
    if tpbr.is_empty() {
        return 0.0;
    }
    let inflated = Tpbr::new(
        tpbr.rect.inflate(query_len * 0.5, query_len * 0.5),
        tpbr.vbr,
        tpbr.ref_time,
    );
    inflated.sweep_volume(now, now + horizon)
}

/// The classic TPR-tree metric: area of the (query-inflated) rectangle
/// at the horizon midpoint.
pub fn midpoint_area(tpbr: &Tpbr, now: f64, horizon: f64, query_len: f64) -> f64 {
    if tpbr.is_empty() {
        return 0.0;
    }
    let t = now + horizon * 0.5;
    (tpbr.extent_x_at(t) + query_len) * (tpbr.extent_y_at(t) + query_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_geom::{Point, Rect, Vbr};

    fn growing(v: f64) -> Tpbr {
        Tpbr::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            Vbr::new(Point::new(-v, -v), Point::new(v, v)),
            0.0,
        )
    }

    #[test]
    fn faster_nodes_cost_more() {
        let slow = sweep_cost(&growing(1.0), 0.0, 10.0, 2.0);
        let fast = sweep_cost(&growing(5.0), 0.0, 10.0, 2.0);
        assert!(fast > slow);
    }

    #[test]
    fn inflation_increases_cost() {
        let small_q = sweep_cost(&growing(1.0), 0.0, 10.0, 0.0);
        let big_q = sweep_cost(&growing(1.0), 0.0, 10.0, 100.0);
        assert!(big_q > small_q);
    }

    #[test]
    fn empty_costs_nothing() {
        assert_eq!(sweep_cost(&Tpbr::empty(0.0), 0.0, 10.0, 1.0), 0.0);
        assert_eq!(midpoint_area(&Tpbr::empty(0.0), 0.0, 10.0, 1.0), 0.0);
    }

    #[test]
    fn midpoint_area_matches_hand_computation() {
        // Extent 10 growing at 2v=2 per axis; at t=5 extent is 20; +q=2
        // per axis -> 22^2.
        let a = midpoint_area(&growing(1.0), 0.0, 10.0, 2.0);
        assert!((a - 484.0).abs() < 1e-9);
    }

    #[test]
    fn anisotropic_growth_cheaper_than_isotropic() {
        // The core observation of the paper (Section 4): a node whose
        // objects all move along one axis sweeps far less volume than a
        // node expanding along both axes at the same top speed.
        let along_x = Tpbr::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            Vbr::new(Point::new(-5.0, 0.0), Point::new(5.0, 0.0)),
            0.0,
        );
        let both = growing(5.0);
        let cx = sweep_cost(&along_x, 0.0, 60.0, 1.0);
        let cb = sweep_cost(&both, 0.0, 60.0, 1.0);
        assert!(
            cb > cx * 10.0,
            "2-D expansion ({cb:.0}) should dwarf 1-D ({cx:.0})"
        );
    }
}
