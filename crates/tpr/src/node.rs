//! TPR-tree node layout and page codec.
//!
//! A node is either a leaf (moving-point entries) or an internal node
//! (child pointers with time-parameterized bounding rectangles). Nodes
//! serialize into fixed-size pages:
//!
//! ```text
//! header: tag(u8) level(u8) count(u16) pad(u32)            = 8 bytes
//! leaf entry:     id(u64) x y vx vy ref_time (6 x f64)     = 48 bytes
//! internal entry: child(u64) rect(4 x f64) vbr(4 x f64)
//!                 ref_time(f64)                            = 80 bytes
//! ```
//!
//! With 4 KB pages this gives 85 leaf entries and 51 internal entries
//! per node — comparable to the fanouts in the paper's setup.

use vp_core::{MovingObject, ObjectId};
use vp_geom::{Point, Rect, Tpbr, Vbr, Vec2};
use vp_storage::codec::{PageReader, PageWriter};
use vp_storage::{PageId, StorageError, StorageResult};

const HEADER_LEN: usize = 8;
const LEAF_ENTRY_LEN: usize = 48;
const INTERNAL_ENTRY_LEN: usize = 80;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// A moving-point entry in a leaf node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    pub id: ObjectId,
    /// Position at `ref_time`.
    pub pos: Point,
    pub vel: Vec2,
    pub ref_time: f64,
}

impl LeafEntry {
    /// Creates a leaf entry from a moving object.
    pub fn from_object(obj: &MovingObject) -> LeafEntry {
        LeafEntry {
            id: obj.id,
            pos: obj.pos,
            vel: obj.vel,
            ref_time: obj.ref_time,
        }
    }

    /// The entry as a moving object (for exact query predicates).
    pub fn to_object(&self) -> MovingObject {
        MovingObject::new(self.id, self.pos, self.vel, self.ref_time)
    }

    /// The degenerate TPBR of this moving point.
    pub fn tpbr(&self) -> Tpbr {
        Tpbr::from_moving_point(self.pos, self.vel, self.ref_time)
    }

    /// Predicted position at time `t`.
    pub fn position_at(&self, t: f64) -> Point {
        self.pos.advance(self.vel, t - self.ref_time)
    }
}

/// A child reference in an internal node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InternalEntry {
    pub child: PageId,
    pub tpbr: Tpbr,
}

/// A decoded TPR-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Leaf {
        /// Leaf level is 0.
        entries: Vec<LeafEntry>,
    },
    Internal {
        /// Level above the leaves (1 = parents of leaves).
        level: u8,
        entries: Vec<InternalEntry>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { entries, .. } => entries.len(),
        }
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Node level: 0 for leaves.
    pub fn level(&self) -> u8 {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal { level, .. } => *level,
        }
    }

    /// The tightest TPBR covering all entries, anchored at the maximum
    /// entry reference time (empty TPBR for an empty node).
    pub fn bounding_tpbr(&self) -> Tpbr {
        match self {
            Node::Leaf { entries } => {
                let mut acc = Tpbr::empty(0.0);
                for e in entries {
                    acc = acc.union(&e.tpbr());
                }
                acc
            }
            Node::Internal { entries, .. } => {
                let mut acc = Tpbr::empty(0.0);
                for e in entries {
                    acc = acc.union(&e.tpbr);
                }
                acc
            }
        }
    }

    /// Serializes the node into a page buffer.
    pub fn encode(&self, buf: &mut [u8]) -> StorageResult<()> {
        let mut w = PageWriter::new(buf);
        match self {
            Node::Leaf { entries } => {
                w.put_u8(TAG_LEAF)?;
                w.put_u8(0)?;
                w.put_u16(entries.len() as u16)?;
                w.put_u32(0)?;
                for e in entries {
                    w.put_u64(e.id)?;
                    w.put_f64(e.pos.x)?;
                    w.put_f64(e.pos.y)?;
                    w.put_f64(e.vel.x)?;
                    w.put_f64(e.vel.y)?;
                    w.put_f64(e.ref_time)?;
                }
            }
            Node::Internal { level, entries } => {
                w.put_u8(TAG_INTERNAL)?;
                w.put_u8(*level)?;
                w.put_u16(entries.len() as u16)?;
                w.put_u32(0)?;
                for e in entries {
                    w.put_page_id(e.child)?;
                    w.put_f64(e.tpbr.rect.lo.x)?;
                    w.put_f64(e.tpbr.rect.lo.y)?;
                    w.put_f64(e.tpbr.rect.hi.x)?;
                    w.put_f64(e.tpbr.rect.hi.y)?;
                    w.put_f64(e.tpbr.vbr.lo.x)?;
                    w.put_f64(e.tpbr.vbr.lo.y)?;
                    w.put_f64(e.tpbr.vbr.hi.x)?;
                    w.put_f64(e.tpbr.vbr.hi.y)?;
                    w.put_f64(e.tpbr.ref_time)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a node from a page buffer.
    pub fn decode(buf: &[u8]) -> StorageResult<Node> {
        let mut r = PageReader::new(buf);
        let tag = r.get_u8()?;
        let level = r.get_u8()?;
        let count = r.get_u16()? as usize;
        let _pad = r.get_u32()?;
        match tag {
            TAG_LEAF => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = r.get_u64()?;
                    let pos = Point::new(r.get_f64()?, r.get_f64()?);
                    let vel = Point::new(r.get_f64()?, r.get_f64()?);
                    let ref_time = r.get_f64()?;
                    entries.push(LeafEntry {
                        id,
                        pos,
                        vel,
                        ref_time,
                    });
                }
                Ok(Node::Leaf { entries })
            }
            TAG_INTERNAL => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = r.get_page_id()?;
                    let rect = Rect::new(
                        Point::new(r.get_f64()?, r.get_f64()?),
                        Point::new(r.get_f64()?, r.get_f64()?),
                    );
                    let vbr = Vbr::new(
                        Point::new(r.get_f64()?, r.get_f64()?),
                        Point::new(r.get_f64()?, r.get_f64()?),
                    );
                    let ref_time = r.get_f64()?;
                    entries.push(InternalEntry {
                        child,
                        tpbr: Tpbr::new(rect, vbr, ref_time),
                    });
                }
                Ok(Node::Internal { level, entries })
            }
            other => Err(StorageError::Corrupt(format!("unknown node tag {other}"))),
        }
    }
}

/// Fanout limits derived from the page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLayout {
    pub max_leaf: usize,
    pub max_internal: usize,
    pub min_leaf: usize,
    pub min_internal: usize,
}

impl NodeLayout {
    /// Computes fanouts for a page size with the given minimum fill
    /// factor (R\*-tree convention: 40%).
    pub fn for_page_size(page_size: usize, min_fill: f64) -> NodeLayout {
        let max_leaf = (page_size - HEADER_LEN) / LEAF_ENTRY_LEN;
        let max_internal = (page_size - HEADER_LEN) / INTERNAL_ENTRY_LEN;
        assert!(
            max_leaf >= 4 && max_internal >= 4,
            "page size {page_size} too small for a TPR node"
        );
        let min_leaf = ((max_leaf as f64 * min_fill) as usize).max(2);
        let min_internal = ((max_internal as f64 * min_fill) as usize).max(2);
        NodeLayout {
            max_leaf,
            max_internal,
            min_leaf,
            min_internal,
        }
    }

    /// Maximum entries for a node of the given level.
    pub fn max_for_level(&self, level: u8) -> usize {
        if level == 0 {
            self.max_leaf
        } else {
            self.max_internal
        }
    }

    /// Minimum entries for a non-root node of the given level.
    pub fn min_for_level(&self, level: u8) -> usize {
        if level == 0 {
            self.min_leaf
        } else {
            self.min_internal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_entry(id: u64) -> LeafEntry {
        LeafEntry {
            id,
            pos: Point::new(id as f64, -(id as f64)),
            vel: Point::new(0.5, -0.25),
            ref_time: 3.0,
        }
    }

    #[test]
    fn leaf_round_trip() {
        let node = Node::Leaf {
            entries: (0..10).map(leaf_entry).collect(),
        };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        let back = Node::decode(&buf).unwrap();
        assert_eq!(node, back);
        assert!(back.is_leaf());
        assert_eq!(back.level(), 0);
        assert_eq!(back.len(), 10);
    }

    #[test]
    fn internal_round_trip() {
        let entries: Vec<InternalEntry> = (0..7)
            .map(|i| InternalEntry {
                child: PageId(i),
                tpbr: Tpbr::new(
                    Rect::from_bounds(i as f64, 0.0, i as f64 + 1.0, 2.0),
                    Vbr::new(Point::new(-1.0, 0.0), Point::new(1.0, 0.5)),
                    i as f64 * 0.5,
                ),
            })
            .collect();
        let node = Node::Internal { level: 3, entries };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        let back = Node::decode(&buf).unwrap();
        assert_eq!(node, back);
        assert_eq!(back.level(), 3);
    }

    #[test]
    fn decode_rejects_garbage() {
        let buf = vec![0xFFu8; 64];
        assert!(matches!(Node::decode(&buf), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn layout_for_4k_pages() {
        let l = NodeLayout::for_page_size(4096, 0.4);
        assert_eq!(l.max_leaf, 85);
        assert_eq!(l.max_internal, 51);
        assert_eq!(l.min_leaf, 34);
        assert_eq!(l.min_internal, 20);
        assert_eq!(l.max_for_level(0), 85);
        assert_eq!(l.max_for_level(2), 51);
        assert_eq!(l.min_for_level(0), 34);
        assert_eq!(l.min_for_level(1), 20);
    }

    #[test]
    fn full_leaf_fits_page() {
        let l = NodeLayout::for_page_size(4096, 0.4);
        let node = Node::Leaf {
            entries: (0..l.max_leaf as u64).map(leaf_entry).collect(),
        };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        assert_eq!(Node::decode(&buf).unwrap().len(), l.max_leaf);
    }

    #[test]
    fn bounding_tpbr_covers_entries() {
        let node = Node::Leaf {
            entries: (0..5).map(leaf_entry).collect(),
        };
        let b = node.bounding_tpbr();
        for e in (0..5).map(leaf_entry) {
            for t in [3.0, 5.0, 10.0] {
                assert!(b.rect_at(t).contains_point(e.position_at(t)));
            }
        }
        assert!(Node::empty_leaf().bounding_tpbr().is_empty());
    }

    #[test]
    fn leaf_entry_object_round_trip() {
        let o = MovingObject::new(5, Point::new(1.0, 2.0), Point::new(3.0, 4.0), 6.0);
        let e = LeafEntry::from_object(&o);
        assert_eq!(e.to_object(), o);
        assert_eq!(e.position_at(7.0), Point::new(4.0, 6.0));
    }
}
