//! The TPR/TPR\*-tree proper.
//!
//! Structure and algorithms:
//!
//! * **ChooseSubtree** — descend towards the child whose cost metric
//!   (sweep volume over the horizon for [`TprVariant::Star`], area at
//!   the horizon midpoint for [`TprVariant::Classic`]) increases least
//!   when absorbing the new entry.
//! * **Overflow** — on the first leaf overflow per insertion, the
//!   entries farthest from the node center (evaluated at the horizon
//!   midpoint) are *force-reinserted* (R\*-tree style); a second
//!   overflow splits. Internal overflows always split.
//! * **Split** — candidate sortings along position x/y and (for the
//!   TPR\* variant) velocity x/y; every legal split point is scored by
//!   the summed cost metric of the two groups using prefix/suffix TPBR
//!   unions, and the cheapest is taken. Sorting by velocity lets the
//!   TPR\*-tree group objects moving in the same direction — the local
//!   optimization the paper contrasts with VP's global partitioning.
//! * **Delete** — guided descent using the recorded entry (the paper's
//!   "simple lookup table", Section 5.3); underflowing nodes are
//!   dissolved and their entries reinserted (R-tree condense).
//! * **Tightening** — whenever an insertion or deletion touches a
//!   path, parent entries are rewritten with the exact union of the
//!   child's contents, curbing MBR/VBR drift.
//!
//! ## Batched maintenance
//!
//! Moving-object ticks hit the tree with whole batches of coherent
//! updates (a velocity partition's objects move together — the
//! regime the VP paper carves out). Three entry points exploit that,
//! mirroring `vp_bptree::apply_batch`:
//!
//! * [`TprTree::bulk_load`] builds a tree bottom-up by re-clustering
//!   the whole population into leaves with the prefix/suffix TPBR
//!   cost scan, then stacking internal levels — no per-object root
//!   descent.
//! * [`MovingObjectIndex::update_batch`] /
//!   [`MovingObjectIndex::remove_batch`] partition the batch per node
//!   in **one top-down pass**: all removals for a subtree are applied
//!   together (guided by the lookup-table entries), the surviving
//!   inserts are routed by the same cost metric as single insertion,
//!   and every touched page is read and written exactly once.
//!   Overflowing nodes re-cluster **multi-way** (`ceil(n/max)` nodes
//!   at once, boundaries refined by the prefix/suffix cost scan
//!   shared with the 2-way split); underflowing nodes dissolve in
//!   bulk and their survivors are group-reinserted in one trailing
//!   pass. Forced reinsertion is not used on the batched path —
//!   multi-way re-clustering already plays its role of un-doing bad
//!   locality.
//!
//! All node accesses go through the shared buffer pool; the tree keeps
//! its own attributable I/O counters (thread-local stat deltas), so
//! several trees (the VP sub-indexes) can share one pool — even from
//! concurrent partition workers — without double counting.

use std::collections::HashMap;
use std::sync::Arc;

use vp_core::{
    IndexError, IndexResult, MovingObject, MovingObjectIndex, ObjectId, RangeQuery, SnapshotIndex,
};
#[cfg(test)]
use vp_geom::Point;
use vp_geom::Tpbr;
use vp_storage::{AtomicIoStats, BufferPool, IoStats, PageId};

use crate::cost::{midpoint_area, sweep_cost};
use crate::node::{InternalEntry, LeafEntry, Node, NodeLayout};
use crate::snapshot::TprSnapshot;

/// Which member of the TPR family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TprVariant {
    /// TPR\*-tree: sweep-volume cost metric, velocity-aware splits.
    Star,
    /// Classic TPR-tree: midpoint-area metric, position-only splits.
    Classic,
}

/// TPR-tree configuration.
#[derive(Debug, Clone)]
pub struct TprConfig {
    pub variant: TprVariant,
    /// Cost-integration horizon (timestamps). The paper's workloads use
    /// a 120 ts maximum update interval; costs are integrated that far.
    pub horizon: f64,
    /// Extent of the optimization query per axis (the paper optimizes
    /// the TPR\*-tree for 1000 m × 1000 m queries).
    pub query_len: f64,
    /// Minimum node fill factor.
    pub min_fill: f64,
    /// Fraction of a leaf force-reinserted on first overflow.
    pub reinsert_fraction: f64,
}

impl Default for TprConfig {
    fn default() -> Self {
        TprConfig {
            variant: TprVariant::Star,
            horizon: 120.0,
            query_len: 1000.0,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
        }
    }
}

/// Tolerances for guided-descent containment tests (deletion). Erring
/// on the inclusive side only costs a little extra traversal.
const EPS_POS: f64 = 1e-4;
const EPS_VEL: f64 = 1e-6;

/// A paged TPR/TPR\*-tree implementing [`MovingObjectIndex`].
pub struct TprTree {
    pool: Arc<BufferPool>,
    config: TprConfig,
    layout: NodeLayout,
    root: PageId,
    /// Number of levels (0 = empty tree; root level = height - 1).
    height: u8,
    len: usize,
    /// Logical clock: the largest reference time seen.
    now: f64,
    /// Lookup table: object id -> the exact entry stored in the tree.
    entries: HashMap<ObjectId, LeafEntry>,
    /// I/O attributable to this tree, tracked as thread-local
    /// ([`vp_storage::thread_io`]) deltas around each operation —
    /// exact even with other trees on the same pool running
    /// concurrently. Atomic so a shared handle stays `Sync`.
    own: AtomicIoStats,
}

impl TprTree {
    /// Creates an empty tree over the shared buffer pool.
    pub fn new(pool: Arc<BufferPool>, config: TprConfig) -> TprTree {
        let layout = NodeLayout::for_page_size(pool.page_size(), config.min_fill);
        TprTree {
            pool,
            config,
            layout,
            root: PageId::INVALID,
            height: 0,
            len: 0,
            now: 0.0,
            entries: HashMap::new(),
            own: AtomicIoStats::zero(),
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TprConfig {
        &self.config
    }

    /// Tree height in levels (0 when empty).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// The logical current time (max reference time inserted).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Visits the exact bounding TPBR of every leaf (used to plot the
    /// paper's Figure 7 — leaf MBR expansion rates).
    pub fn visit_leaf_tpbrs(&self, mut f: impl FnMut(&Tpbr)) -> IndexResult<()> {
        if !self.root.is_valid() {
            return Ok(());
        }
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                Node::Leaf { entries } => {
                    let b = Node::Leaf { entries }.bounding_tpbr();
                    if !b.is_empty() {
                        f(&b);
                    }
                }
                Node::Internal { entries, .. } => {
                    stack.extend(entries.iter().map(|e| e.child));
                }
            }
        }
        Ok(())
    }

    /// Exhaustively validates the tree's structural invariants; returns
    /// a human-readable violation description on failure. Intended for
    /// tests and debugging (visits every page).
    ///
    /// Checked invariants:
    /// * stored entry count equals the lookup table and `len()`;
    /// * every parent entry's TPBR dominates its child's exact bounding
    ///   TPBR (within float tolerance) at the union reference time;
    /// * fanout bounds: non-root nodes hold at least the minimum and at
    ///   most the maximum number of entries;
    /// * levels decrease by exactly one per tree level and leaves sit
    ///   at level 0;
    /// * every object in the lookup table is reachable by guided
    ///   descent.
    pub fn check_invariants(&self) -> IndexResult<Result<(), String>> {
        if !self.root.is_valid() {
            return Ok(if self.len == 0 && self.entries.is_empty() {
                Ok(())
            } else {
                Err(format!("empty tree but len = {}", self.len))
            });
        }
        let mut total_entries = 0usize;
        // (pid, expected_level, bounding tpbr claimed by the parent)
        let mut stack: Vec<(PageId, u8, Option<Tpbr>)> = vec![(self.root, self.height - 1, None)];
        while let Some((pid, level, claimed)) = stack.pop() {
            let node = self.read_node(pid)?;
            if node.level() != level {
                return Ok(Err(format!(
                    "node {pid} has level {} but expected {level}",
                    node.level()
                )));
            }
            let is_root = pid == self.root;
            let min = self.layout.min_for_level(level);
            let max = self.layout.max_for_level(level);
            if node.len() > max {
                return Ok(Err(format!("node {pid} overfull: {} > {max}", node.len())));
            }
            if !is_root && node.len() < min {
                return Ok(Err(format!("node {pid} underfull: {} < {min}", node.len())));
            }
            if let Some(parent_tpbr) = claimed {
                let exact = node.bounding_tpbr();
                let t0 = parent_tpbr.ref_time.max(exact.ref_time);
                let pr = parent_tpbr.rect_at(t0).inflate(EPS_POS, EPS_POS);
                if !pr.contains_rect(&exact.rect_at(t0)) {
                    return Ok(Err(format!(
                        "parent TPBR does not dominate child {pid} at t={t0}"
                    )));
                }
            }
            match node {
                Node::Leaf { entries } => {
                    total_entries += entries.len();
                    for e in &entries {
                        match self.entries.get(&e.id) {
                            None => {
                                return Ok(Err(format!(
                                    "leaf entry {} missing from lookup table",
                                    e.id
                                )))
                            }
                            Some(rec) if rec != e => {
                                return Ok(Err(format!("lookup table stale for object {}", e.id)))
                            }
                            _ => {}
                        }
                    }
                }
                Node::Internal { entries, .. } => {
                    for e in &entries {
                        stack.push((e.child, level - 1, Some(e.tpbr)));
                    }
                }
            }
        }
        if total_entries != self.len || total_entries != self.entries.len() {
            return Ok(Err(format!(
                "entry count mismatch: tree {total_entries}, len {}, table {}",
                self.len,
                self.entries.len()
            )));
        }
        Ok(Ok(()))
    }

    // ----- page helpers -------------------------------------------------

    fn read_node(&self, pid: PageId) -> IndexResult<Node> {
        let node = self.pool.with_page(pid, Node::decode)??;
        Ok(node)
    }

    fn write_node(&self, pid: PageId, node: &Node) -> IndexResult<()> {
        self.pool.with_page_mut(pid, |buf| node.encode(buf))??;
        Ok(())
    }

    fn alloc_node(&self, node: &Node) -> IndexResult<PageId> {
        let pid = self.pool.new_page()?;
        self.write_node(pid, node)?;
        Ok(pid)
    }

    fn track_begin(&self) -> IoStats {
        vp_storage::thread_io::snapshot()
    }

    fn track_end(&self, before: IoStats) {
        self.own
            .add(vp_storage::thread_io::snapshot().delta(&before));
    }

    // ----- cost metric --------------------------------------------------

    fn metric(&self, tpbr: &Tpbr) -> f64 {
        match self.config.variant {
            TprVariant::Star => {
                sweep_cost(tpbr, self.now, self.config.horizon, self.config.query_len)
            }
            TprVariant::Classic => {
                midpoint_area(tpbr, self.now, self.config.horizon, self.config.query_len)
            }
        }
    }

    // ----- insertion ----------------------------------------------------

    fn insert_entry_toplevel(&mut self, entry: LeafEntry) -> IndexResult<()> {
        if !self.root.is_valid() {
            let node = Node::Leaf {
                entries: vec![entry],
            };
            self.root = self.alloc_node(&node)?;
            self.height = 1;
            return Ok(());
        }
        let mut pending: Vec<LeafEntry> = Vec::new();
        let mut reinserted = false;
        self.insert_from_root(entry, &mut pending, &mut reinserted)?;
        // Reinsert evicted entries; further reinsertion is disabled
        // (standard R* policy: once per level per insertion — we apply
        // forced reinsert at the leaf level only).
        while let Some(e) = pending.pop() {
            let mut nobody = true;
            self.insert_from_root(e, &mut Vec::new(), &mut nobody)?;
        }
        Ok(())
    }

    fn insert_from_root(
        &mut self,
        entry: LeafEntry,
        pending: &mut Vec<LeafEntry>,
        reinserted: &mut bool,
    ) -> IndexResult<()> {
        match self.insert_rec(self.root, entry, pending, reinserted)? {
            RecOutcome::Fit(_) => Ok(()),
            RecOutcome::Split(left_tpbr, right_pid, right_tpbr) => {
                // Root split: grow the tree.
                let new_root = Node::Internal {
                    level: self.height,
                    entries: vec![
                        InternalEntry {
                            child: self.root,
                            tpbr: left_tpbr,
                        },
                        InternalEntry {
                            child: right_pid,
                            tpbr: right_tpbr,
                        },
                    ],
                };
                self.root = self.alloc_node(&new_root)?;
                self.height += 1;
                Ok(())
            }
        }
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        entry: LeafEntry,
        pending: &mut Vec<LeafEntry>,
        reinserted: &mut bool,
    ) -> IndexResult<RecOutcome> {
        match self.read_node(pid)? {
            Node::Leaf { mut entries } => {
                entries.push(entry);
                if entries.len() <= self.layout.max_leaf {
                    let node = Node::Leaf { entries };
                    self.write_node(pid, &node)?;
                    return Ok(RecOutcome::Fit(node.bounding_tpbr()));
                }
                // Overflow. Forced reinsert once per insertion, and only
                // when the leaf is not the root (splitting the root is
                // how the tree grows).
                if !*reinserted && self.height > 1 {
                    *reinserted = true;
                    let keep = self.select_reinsert(&mut entries);
                    pending.extend(entries.drain(keep..));
                    let node = Node::Leaf { entries };
                    self.write_node(pid, &node)?;
                    return Ok(RecOutcome::Fit(node.bounding_tpbr()));
                }
                // Split.
                let (left, right) = self.split_leaf(entries);
                let left_node = Node::Leaf { entries: left };
                let right_node = Node::Leaf { entries: right };
                self.write_node(pid, &left_node)?;
                let right_pid = self.alloc_node(&right_node)?;
                Ok(RecOutcome::Split(
                    left_node.bounding_tpbr(),
                    right_pid,
                    right_node.bounding_tpbr(),
                ))
            }
            Node::Internal { level, mut entries } => {
                let chosen = self.choose_subtree(&entries, &entry);
                let child_pid = entries[chosen].child;
                match self.insert_rec(child_pid, entry, pending, reinserted)? {
                    RecOutcome::Fit(tpbr) => {
                        // Tighten: the child's exact bounding TPBR.
                        entries[chosen].tpbr = tpbr;
                        let node = Node::Internal { level, entries };
                        self.write_node(pid, &node)?;
                        Ok(RecOutcome::Fit(node.bounding_tpbr()))
                    }
                    RecOutcome::Split(left_tpbr, right_pid, right_tpbr) => {
                        entries[chosen].tpbr = left_tpbr;
                        entries.push(InternalEntry {
                            child: right_pid,
                            tpbr: right_tpbr,
                        });
                        if entries.len() <= self.layout.max_internal {
                            let node = Node::Internal { level, entries };
                            self.write_node(pid, &node)?;
                            return Ok(RecOutcome::Fit(node.bounding_tpbr()));
                        }
                        let (left, right) = self.split_internal(entries);
                        let left_node = Node::Internal {
                            level,
                            entries: left,
                        };
                        let right_node = Node::Internal {
                            level,
                            entries: right,
                        };
                        self.write_node(pid, &left_node)?;
                        let right_pid = self.alloc_node(&right_node)?;
                        Ok(RecOutcome::Split(
                            left_node.bounding_tpbr(),
                            right_pid,
                            right_node.bounding_tpbr(),
                        ))
                    }
                }
            }
        }
    }

    /// Picks the child minimizing the cost-metric increase.
    fn choose_subtree(&self, entries: &[InternalEntry], entry: &LeafEntry) -> usize {
        let e_tpbr = entry.tpbr();
        let mut best = 0usize;
        let mut best_delta = f64::INFINITY;
        let mut best_cost = f64::INFINITY;
        for (i, ie) in entries.iter().enumerate() {
            let cost = self.metric(&ie.tpbr);
            let grown = self.metric(&ie.tpbr.union(&e_tpbr));
            let delta = grown - cost;
            if delta < best_delta - 1e-12
                || ((delta - best_delta).abs() <= 1e-12 && cost < best_cost)
            {
                best = i;
                best_delta = delta;
                best_cost = cost;
            }
        }
        best
    }

    /// Reorders `entries` so the kept prefix stays in the node; returns
    /// the prefix length. Eviction candidates are the entries farthest
    /// from the node center at the horizon midpoint.
    fn select_reinsert(&self, entries: &mut [LeafEntry]) -> usize {
        let node = Node::Leaf {
            entries: entries.to_vec(),
        };
        let tm = self.now + self.config.horizon * 0.5;
        let center = node.bounding_tpbr().rect_at(tm).center();
        entries.sort_by(|a, b| {
            let da = a.position_at(tm).dist_sq(center);
            let db = b.position_at(tm).dist_sq(center);
            da.total_cmp(&db) // ascending: nearest first (kept)
        });
        let n = entries.len();
        let evict = ((n as f64 * self.config.reinsert_fraction).ceil() as usize)
            .min(n - self.layout.min_leaf)
            .max(1);
        n - evict
    }

    /// TPR\*-style leaf split: the 2-way case of
    /// [`TprTree::cluster_leaves`] (an overflowing node holds exactly
    /// `max + 1` entries, so re-clustering yields two groups).
    fn split_leaf(&self, entries: Vec<LeafEntry>) -> (Vec<LeafEntry>, Vec<LeafEntry>) {
        let mut groups = self.cluster_leaves(entries);
        debug_assert_eq!(groups.len(), 2, "single-op split always yields two groups");
        let right = groups.pop().expect("two groups");
        let left = groups.pop().expect("two groups");
        (left, right)
    }

    fn split_internal(
        &self,
        entries: Vec<InternalEntry>,
    ) -> (Vec<InternalEntry>, Vec<InternalEntry>) {
        let mut groups = self.cluster_internals(entries);
        debug_assert_eq!(groups.len(), 2, "single-op split always yields two groups");
        let right = groups.pop().expect("two groups");
        let left = groups.pop().expect("two groups");
        (left, right)
    }

    /// Re-clusters leaf entries into `ceil(n / max_leaf)` groups using
    /// the TPR\*-tree's candidate orderings: position x/y advanced to
    /// `now` and — in Star mode — velocity x/y (sorting by velocity is
    /// what lets the tree group objects moving in the same direction).
    fn cluster_leaves(&self, entries: Vec<LeafEntry>) -> Vec<Vec<LeafEntry>> {
        let now = self.now;
        let px = move |e: &LeafEntry| e.position_at(now).x;
        let py = move |e: &LeafEntry| e.position_at(now).y;
        let vx = |e: &LeafEntry| e.vel.x;
        let vy = |e: &LeafEntry| e.vel.y;
        let star: [&dyn Fn(&LeafEntry) -> f64; 4] = [&px, &py, &vx, &vy];
        let classic: [&dyn Fn(&LeafEntry) -> f64; 2] = [&px, &py];
        let keys: &[&dyn Fn(&LeafEntry) -> f64] = match self.config.variant {
            TprVariant::Star => &star,
            TprVariant::Classic => &classic,
        };
        self.cluster(
            entries,
            keys,
            &|e: &LeafEntry| e.tpbr(),
            self.layout.min_leaf,
            self.layout.max_leaf,
        )
    }

    /// Re-clusters internal entries into `ceil(n / max_internal)`
    /// groups, ordering by MBR center and — in Star mode — VBR center.
    fn cluster_internals(&self, entries: Vec<InternalEntry>) -> Vec<Vec<InternalEntry>> {
        let px = |e: &InternalEntry| e.tpbr.rect.center().x;
        let py = |e: &InternalEntry| e.tpbr.rect.center().y;
        let vx = |e: &InternalEntry| (e.tpbr.vbr.lo.x + e.tpbr.vbr.hi.x) * 0.5;
        let vy = |e: &InternalEntry| (e.tpbr.vbr.lo.y + e.tpbr.vbr.hi.y) * 0.5;
        let star: [&dyn Fn(&InternalEntry) -> f64; 4] = [&px, &py, &vx, &vy];
        let classic: [&dyn Fn(&InternalEntry) -> f64; 2] = [&px, &py];
        let keys: &[&dyn Fn(&InternalEntry) -> f64] = match self.config.variant {
            TprVariant::Star => &star,
            TprVariant::Classic => &classic,
        };
        self.cluster(
            entries,
            keys,
            &|e: &InternalEntry| e.tpbr,
            self.layout.min_internal,
            self.layout.max_internal,
        )
    }

    /// The multi-way re-clustering core shared by 2-way node splits,
    /// group insertion, and bulk loading.
    ///
    /// Partitions `items` into `ceil(n / max)` groups of between `min`
    /// and `max` items. For each candidate ordering the items are
    /// sorted, balanced contiguous chunks are seeded, and every
    /// interior chunk boundary is refined between its (fixed)
    /// neighbors by the O(window) prefix/suffix TPBR cost scan of
    /// [`TprTree::best_split_in`]. The ordering with the smallest
    /// summed group cost wins. With `n == max + 1` this degenerates to
    /// exactly the classic TPR\*-tree 2-way split (same candidate
    /// range, same scoring, same tie-breaking).
    fn cluster<T: Clone>(
        &self,
        items: Vec<T>,
        keys: &[&dyn Fn(&T) -> f64],
        tpbr_of: &dyn Fn(&T) -> Tpbr,
        min: usize,
        max: usize,
    ) -> Vec<Vec<T>> {
        let n = items.len();
        if n <= max {
            return vec![items];
        }
        let m = n.div_ceil(max);
        let mut best: Option<(f64, Vec<T>, Vec<usize>)> = None;
        for key in keys {
            let mut sorted = items.clone();
            sorted.sort_by(|a, b| key(a).total_cmp(&key(b)));
            let tpbrs: Vec<Tpbr> = sorted.iter().map(tpbr_of).collect();
            // Balanced seeds: group g covers [g*n/m, (g+1)*n/m). Since
            // n > (m-1)*max, every seed already holds >= max/2 >= min
            // entries.
            let mut bounds: Vec<usize> = (0..=m).map(|g| g * n / m).collect();
            for bi in 1..m {
                let (s, e) = (bounds[bi - 1], bounds[bi + 1]);
                let lo = (s + min).max(e.saturating_sub(max));
                let hi = (s + max).min(e.saturating_sub(min));
                if lo <= hi {
                    if let Some((_, at)) = self.best_split_in(&tpbrs[s..e], lo - s, hi - s) {
                        bounds[bi] = s + at;
                    }
                }
            }
            let cost: f64 = (0..m)
                .map(|g| {
                    let mut acc = Tpbr::empty(0.0);
                    for t in &tpbrs[bounds[g]..bounds[g + 1]] {
                        acc = acc.union(t);
                    }
                    self.metric(&acc)
                })
                .sum();
            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best = Some((cost, sorted, bounds));
            }
        }
        let (_, mut sorted, bounds) = best.expect("at least one candidate ordering");
        let mut groups: Vec<Vec<T>> = Vec::with_capacity(m);
        for g in (1..m).rev() {
            groups.push(sorted.split_off(bounds[g]));
        }
        groups.push(sorted);
        groups.reverse();
        debug_assert!(groups.iter().all(|g| (min..=max).contains(&g.len())));
        groups
    }

    /// For a fixed ordering, the split index in `[lo, hi]` minimizing
    /// the summed cost metric of the two groups, computed with O(n)
    /// prefix/suffix TPBR unions.
    fn best_split_in(&self, tpbrs: &[Tpbr], lo: usize, hi: usize) -> Option<(f64, usize)> {
        let n = tpbrs.len();
        if n < 2 || lo == 0 || hi >= n || lo > hi {
            return None;
        }
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Tpbr::empty(0.0);
        for t in tpbrs {
            acc = acc.union(t);
            prefix.push(acc);
        }
        let mut suffix = vec![Tpbr::empty(0.0); n];
        let mut acc = Tpbr::empty(0.0);
        for i in (0..n).rev() {
            acc = acc.union(&tpbrs[i]);
            suffix[i] = acc;
        }
        let mut best: Option<(f64, usize)> = None;
        for at in lo..=hi {
            let cost = self.metric(&prefix[at - 1]) + self.metric(&suffix[at]);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, at));
            }
        }
        best
    }

    // ----- deletion -----------------------------------------------------

    fn delete_entry_toplevel(&mut self, target: LeafEntry) -> IndexResult<bool> {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let outcome = self.delete_rec(self.root, self.height - 1, &target, &mut orphans)?;
        let found = match outcome {
            DelOutcome::NotFound => false,
            DelOutcome::Deleted { .. } => true,
        };
        if !found {
            return Ok(false);
        }
        self.shrink_root()?;
        // Reinsert orphaned entries. Dissolved subtrees were dismantled
        // to leaf entries during the descent, so everything reinserts
        // uniformly at the leaf level.
        for e in orphans {
            self.insert_entry_toplevel(e)?;
        }
        Ok(true)
    }

    /// Collapses trivial roots left behind by removals: an internal
    /// root with a single child loses a level (repeatedly), and an
    /// empty root of either kind empties the tree.
    fn shrink_root(&mut self) -> IndexResult<()> {
        if !self.root.is_valid() {
            return Ok(());
        }
        loop {
            match self.read_node(self.root)? {
                Node::Internal { entries, .. } if entries.len() == 1 => {
                    let old_root = self.root;
                    self.root = entries[0].child;
                    self.height -= 1;
                    self.pool.free_page(old_root)?;
                }
                Node::Internal { entries, .. } if entries.is_empty() => {
                    // All children dissolved into orphans.
                    self.pool.free_page(self.root)?;
                    self.root = PageId::INVALID;
                    self.height = 0;
                    return Ok(());
                }
                Node::Leaf { entries } if entries.is_empty() => {
                    self.pool.free_page(self.root)?;
                    self.root = PageId::INVALID;
                    self.height = 0;
                    return Ok(());
                }
                _ => return Ok(()),
            }
        }
    }

    /// Dismantles a subtree into its leaf entries, freeing every page.
    /// Used when an internal node underflows: reinserting the leaves is
    /// simpler and more robust than grafting subtrees at matching
    /// levels, and internal underflow is rare in the paper's workloads.
    fn dismantle_subtree(&mut self, root: PageId, out: &mut Vec<LeafEntry>) -> IndexResult<()> {
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                Node::Leaf { entries } => out.extend(entries),
                Node::Internal { entries, .. } => {
                    stack.extend(entries.iter().map(|e| e.child));
                }
            }
            self.pool.free_page(pid)?;
        }
        Ok(())
    }

    fn delete_rec(
        &mut self,
        pid: PageId,
        level: u8,
        target: &LeafEntry,
        orphans: &mut Vec<LeafEntry>,
    ) -> IndexResult<DelOutcome> {
        match self.read_node(pid)? {
            Node::Leaf { mut entries } => {
                let Some(at) = entries.iter().position(|e| e.id == target.id) else {
                    return Ok(DelOutcome::NotFound);
                };
                entries.remove(at);
                let is_root = pid == self.root;
                if !is_root && entries.len() < self.layout.min_leaf {
                    // Dissolve: caller removes this node; entries become
                    // orphans.
                    orphans.extend(entries);
                    self.pool.free_page(pid)?;
                    return Ok(DelOutcome::Deleted {
                        tpbr: None,
                        dissolved: true,
                    });
                }
                let node = Node::Leaf { entries };
                self.write_node(pid, &node)?;
                Ok(DelOutcome::Deleted {
                    tpbr: Some(node.bounding_tpbr()),
                    dissolved: false,
                })
            }
            Node::Internal {
                level: lvl,
                mut entries,
            } => {
                debug_assert_eq!(lvl, level);
                let mut found_at: Option<(usize, Option<Tpbr>, bool)> = None;
                // Indexing (not iterating) because the loop body calls
                // `&mut self` methods while `entries` stays borrowed.
                #[allow(clippy::needless_range_loop)]
                for i in 0..entries.len() {
                    if !could_contain(&entries[i].tpbr, target) {
                        continue;
                    }
                    match self.delete_rec(entries[i].child, level - 1, target, orphans)? {
                        DelOutcome::NotFound => continue,
                        DelOutcome::Deleted { tpbr, dissolved } => {
                            found_at = Some((i, tpbr, dissolved));
                            break;
                        }
                    }
                }
                let Some((i, child_tpbr, dissolved)) = found_at else {
                    return Ok(DelOutcome::NotFound);
                };
                if dissolved {
                    entries.remove(i);
                } else if let Some(t) = child_tpbr {
                    entries[i].tpbr = t; // tighten
                }
                let is_root = pid == self.root;
                if !is_root && entries.len() < self.layout.min_internal {
                    for e in &entries {
                        self.dismantle_subtree(e.child, orphans)?;
                    }
                    self.pool.free_page(pid)?;
                    return Ok(DelOutcome::Deleted {
                        tpbr: None,
                        dissolved: true,
                    });
                }
                let node = Node::Internal { level, entries };
                self.write_node(pid, &node)?;
                Ok(DelOutcome::Deleted {
                    tpbr: Some(node.bounding_tpbr()),
                    dissolved: false,
                })
            }
        }
    }

    // ----- batched maintenance ------------------------------------------

    /// Builds a tree from a snapshot of objects by bulk TPBR
    /// re-clustering: leaves are packed by the multi-way clustering
    /// core and internal levels stacked on top, with no per-object
    /// root descent. Equivalent in contents to
    /// inserting every object individually, far cheaper, and usually
    /// better clustered (every leaf is cost-optimized at once).
    /// Fails with [`IndexError::DuplicateObject`] on a repeated id.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        config: TprConfig,
        objects: &[MovingObject],
    ) -> IndexResult<TprTree> {
        let mut tree = TprTree::new(pool, config);
        let mut table = HashMap::with_capacity(objects.len());
        let mut leaves = Vec::with_capacity(objects.len());
        for obj in objects {
            let entry = LeafEntry::from_object(obj);
            if table.insert(obj.id, entry).is_some() {
                return Err(IndexError::DuplicateObject(obj.id));
            }
            tree.now = tree.now.max(obj.ref_time);
            leaves.push(entry);
        }
        let before = tree.track_begin();
        let built = tree.build_from_entries(leaves);
        tree.track_end(before);
        built?;
        tree.len = table.len();
        tree.entries = table;
        Ok(tree)
    }

    /// Builds the tree bottom-up over `entries` (the tree must be
    /// empty): cluster into leaves, then stack internal levels.
    fn build_from_entries(&mut self, entries: Vec<LeafEntry>) -> IndexResult<()> {
        debug_assert!(!self.root.is_valid());
        if entries.is_empty() {
            return Ok(());
        }
        let groups = self.cluster_leaves(entries);
        let mut nodes = Vec::with_capacity(groups.len());
        for g in groups {
            let node = Node::Leaf { entries: g };
            let tpbr = node.bounding_tpbr();
            let pid = self.alloc_node(&node)?;
            nodes.push(InternalEntry { child: pid, tpbr });
        }
        self.install_root(nodes, 0)
    }

    /// Installs a root above `nodes` (which all sit at `child_level`),
    /// re-clustering each internal level until a single node remains.
    fn install_root(
        &mut self,
        mut nodes: Vec<InternalEntry>,
        mut child_level: u8,
    ) -> IndexResult<()> {
        while nodes.len() > 1 {
            let level = child_level + 1;
            let groups = self.cluster_internals(nodes);
            let mut parents = Vec::with_capacity(groups.len());
            for g in groups {
                let node = Node::Internal { level, entries: g };
                let tpbr = node.bounding_tpbr();
                let pid = self.alloc_node(&node)?;
                parents.push(InternalEntry { child: pid, tpbr });
            }
            nodes = parents;
            child_level = level;
        }
        self.root = nodes[0].child;
        self.height = child_level + 1;
        Ok(())
    }

    /// One batched pass over the tree: remove the given stored entries
    /// and group-insert `inserts`, reading and writing every touched
    /// page exactly once. Entries orphaned by bulk underflow repair
    /// are group-reinserted in one trailing pure-insert pass.
    fn apply_group(
        &mut self,
        removals: Vec<LeafEntry>,
        inserts: Vec<LeafEntry>,
    ) -> IndexResult<()> {
        if removals.is_empty() && inserts.is_empty() {
            return Ok(());
        }
        if !self.root.is_valid() {
            debug_assert!(removals.is_empty(), "nothing to remove from an empty tree");
            return self.build_from_entries(inserts);
        }
        let cands: Vec<ObjectId> = removals.iter().map(|e| e.id).collect();
        let mut pending: HashMap<ObjectId, LeafEntry> =
            removals.into_iter().map(|e| (e.id, e)).collect();
        let mut orphans = Vec::new();
        let outcome = self.batch_rec(
            self.root,
            self.height - 1,
            &cands,
            &mut pending,
            inserts,
            &mut orphans,
        )?;
        if let GroupOutcome::Many(nodes) = outcome {
            let child_level = self.height - 1;
            self.install_root(nodes, child_level)?;
        }
        if !pending.is_empty() {
            // The lookup table said these exist; a miss means drift
            // beyond the containment epsilons — surface loudly rather
            // than corrupting the table (same contract as `delete`).
            let mut ids: Vec<ObjectId> = pending.keys().copied().collect();
            ids.sort_unstable();
            return Err(IndexError::Storage(vp_storage::StorageError::Corrupt(
                format!("entries for objects {ids:?} not reachable by guided descent"),
            )));
        }
        self.shrink_root()?;
        if !orphans.is_empty() {
            // A pure insert pass cannot dissolve nodes, so this
            // recursion terminates after one round.
            self.apply_group(Vec::new(), orphans)?;
        }
        Ok(())
    }

    /// The recursive batched pass. `cands` is the subset of pending
    /// removal ids whose stored entry this subtree could contain;
    /// `pending` is the global not-yet-removed map (ids are claimed
    /// from it at the leaves, so overlapping sibling subtrees never
    /// search for an already-removed entry).
    fn batch_rec(
        &mut self,
        pid: PageId,
        level: u8,
        cands: &[ObjectId],
        pending: &mut HashMap<ObjectId, LeafEntry>,
        inserts: Vec<LeafEntry>,
        orphans: &mut Vec<LeafEntry>,
    ) -> IndexResult<GroupOutcome> {
        match self.read_node(pid)? {
            Node::Leaf { mut entries } => {
                debug_assert_eq!(level, 0);
                if !cands.is_empty() {
                    entries.retain(|e| pending.remove(&e.id).is_none());
                }
                entries.extend(inserts);
                self.finish_leaf(pid, entries, orphans)
            }
            Node::Internal {
                level: lvl,
                mut entries,
            } => {
                debug_assert_eq!(lvl, level);
                // Route every insert to the child whose cost metric
                // grows least — the same rule as single insertion,
                // evaluated against the pre-pass child TPBRs.
                let mut child_inserts: Vec<Vec<LeafEntry>> = vec![Vec::new(); entries.len()];
                for e in inserts {
                    let c = self.choose_subtree(&entries, &e);
                    child_inserts[c].push(e);
                }
                let mut out: Vec<InternalEntry> = Vec::with_capacity(entries.len());
                for (i, ie) in entries.drain(..).enumerate() {
                    let ins = std::mem::take(&mut child_inserts[i]);
                    let child_cands: Vec<ObjectId> = cands
                        .iter()
                        .copied()
                        .filter(|id| pending.get(id).is_some_and(|t| could_contain(&ie.tpbr, t)))
                        .collect();
                    if ins.is_empty() && child_cands.is_empty() {
                        // Untouched subtree: zero I/O.
                        out.push(ie);
                        continue;
                    }
                    match self.batch_rec(
                        ie.child,
                        level - 1,
                        &child_cands,
                        pending,
                        ins,
                        orphans,
                    )? {
                        GroupOutcome::One(tpbr) => out.push(InternalEntry {
                            child: ie.child,
                            tpbr,
                        }),
                        GroupOutcome::Many(nodes) => out.extend(nodes),
                        GroupOutcome::Dissolved => {}
                    }
                }
                self.finish_internal(pid, level, out, orphans)
            }
        }
    }

    /// Writes back a leaf's post-batch contents: multi-way re-cluster
    /// on overflow (page `pid` is reused for the first group), dissolve
    /// into the orphan pool on underflow, plain single write otherwise.
    fn finish_leaf(
        &mut self,
        pid: PageId,
        entries: Vec<LeafEntry>,
        orphans: &mut Vec<LeafEntry>,
    ) -> IndexResult<GroupOutcome> {
        if entries.len() > self.layout.max_leaf {
            let groups = self.cluster_leaves(entries);
            let mut out = Vec::with_capacity(groups.len());
            for (i, g) in groups.into_iter().enumerate() {
                let node = Node::Leaf { entries: g };
                let tpbr = node.bounding_tpbr();
                let child = if i == 0 {
                    self.write_node(pid, &node)?;
                    pid
                } else {
                    self.alloc_node(&node)?
                };
                out.push(InternalEntry { child, tpbr });
            }
            return Ok(GroupOutcome::Many(out));
        }
        if pid != self.root && entries.len() < self.layout.min_leaf {
            orphans.extend(entries);
            self.pool.free_page(pid)?;
            return Ok(GroupOutcome::Dissolved);
        }
        let node = Node::Leaf { entries };
        self.write_node(pid, &node)?;
        Ok(GroupOutcome::One(node.bounding_tpbr()))
    }

    /// [`TprTree::finish_leaf`]'s internal-node sibling: on underflow
    /// the surviving child subtrees are dismantled into the orphan
    /// pool (bulk condense).
    fn finish_internal(
        &mut self,
        pid: PageId,
        level: u8,
        entries: Vec<InternalEntry>,
        orphans: &mut Vec<LeafEntry>,
    ) -> IndexResult<GroupOutcome> {
        if entries.len() > self.layout.max_internal {
            let groups = self.cluster_internals(entries);
            let mut out = Vec::with_capacity(groups.len());
            for (i, g) in groups.into_iter().enumerate() {
                let node = Node::Internal { level, entries: g };
                let tpbr = node.bounding_tpbr();
                let child = if i == 0 {
                    self.write_node(pid, &node)?;
                    pid
                } else {
                    self.alloc_node(&node)?
                };
                out.push(InternalEntry { child, tpbr });
            }
            return Ok(GroupOutcome::Many(out));
        }
        if pid != self.root && entries.len() < self.layout.min_internal {
            for e in &entries {
                self.dismantle_subtree(e.child, orphans)?;
            }
            self.pool.free_page(pid)?;
            return Ok(GroupOutcome::Dissolved);
        }
        let node = Node::Internal { level, entries };
        self.write_node(pid, &node)?;
        Ok(GroupOutcome::One(node.bounding_tpbr()))
    }
}

enum RecOutcome {
    /// Child absorbed the entry; its new exact bounding TPBR.
    Fit(Tpbr),
    /// Child split: (left TPBR, right page, right TPBR).
    Split(Tpbr, PageId, Tpbr),
}

enum DelOutcome {
    NotFound,
    Deleted {
        /// The child's new bounding TPBR (None when dissolved).
        tpbr: Option<Tpbr>,
        dissolved: bool,
    },
}

/// Outcome of one subtree's share of a batched pass.
enum GroupOutcome {
    /// The node absorbed its ops in place; its new exact bounding TPBR.
    One(Tpbr),
    /// The node overflowed and re-clustered into several nodes (the
    /// original page is reused for the first); all at the node's level.
    Many(Vec<InternalEntry>),
    /// The node underflowed and dissolved: its surviving entries moved
    /// to the orphan pool and its page was freed.
    Dissolved,
}

/// Conservative test: could this node's TPBR contain the given entry?
/// Exact containment holds by construction (parent TPBRs are unions of
/// their children); epsilons absorb floating-point drift.
fn could_contain(node: &Tpbr, e: &LeafEntry) -> bool {
    let t0 = node.ref_time.max(e.ref_time);
    let r = node.rect_at(t0);
    let p = e.position_at(t0);
    r.inflate(EPS_POS, EPS_POS).contains_point(p)
        && node.vbr.lo.x - EPS_VEL <= e.vel.x
        && e.vel.x <= node.vbr.hi.x + EPS_VEL
        && node.vbr.lo.y - EPS_VEL <= e.vel.y
        && e.vel.y <= node.vbr.hi.y + EPS_VEL
}

impl MovingObjectIndex for TprTree {
    fn insert(&mut self, obj: MovingObject) -> IndexResult<()> {
        if self.entries.contains_key(&obj.id) {
            return Err(IndexError::DuplicateObject(obj.id));
        }
        let before = self.track_begin();
        self.now = self.now.max(obj.ref_time);
        let entry = LeafEntry::from_object(&obj);
        let result = self.insert_entry_toplevel(entry);
        self.track_end(before);
        result?;
        self.entries.insert(obj.id, entry);
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, id: ObjectId) -> IndexResult<()> {
        let Some(entry) = self.entries.get(&id).copied() else {
            return Err(IndexError::UnknownObject(id));
        };
        let before = self.track_begin();
        let found = self.delete_entry_toplevel(entry);
        self.track_end(before);
        if !found? {
            // The lookup table says it exists; a miss means drift beyond
            // the containment epsilons — surface loudly rather than
            // corrupting the table.
            return Err(IndexError::Storage(vp_storage::StorageError::Corrupt(
                format!("entry for object {id} not reachable by guided descent"),
            )));
        }
        self.entries.remove(&id);
        self.len -= 1;
        Ok(())
    }

    /// Batched upsert (the tentpole of the TPR batched-maintenance
    /// path): the stale stored entries of already-present ids are
    /// removed and every winner group-inserted in **one top-down
    /// pass** — per-node op partitioning, multi-way re-clustering
    /// splits, bulk underflow repair, one write per touched page —
    /// instead of a delete + insert root descent per object. Same
    /// contents as the looped default (last occurrence of an id wins),
    /// usually a different (at least as well clustered) shape.
    fn update_batch(&mut self, updates: &[MovingObject]) -> IndexResult<()> {
        if updates.is_empty() {
            return Ok(());
        }
        let mut latest: HashMap<ObjectId, usize> = HashMap::with_capacity(updates.len());
        for (i, obj) in updates.iter().enumerate() {
            latest.insert(obj.id, i);
        }
        let mut removals = Vec::new();
        let mut winners: Vec<LeafEntry> = Vec::with_capacity(latest.len());
        for (i, obj) in updates.iter().enumerate() {
            if latest[&obj.id] != i {
                continue;
            }
            self.now = self.now.max(obj.ref_time);
            if let Some(old) = self.entries.get(&obj.id) {
                removals.push(*old);
            }
            winners.push(LeafEntry::from_object(obj));
        }
        let before = self.track_begin();
        let result = self.apply_group(removals, winners.clone());
        self.track_end(before);
        result?;
        for e in winners {
            self.entries.insert(e.id, e);
        }
        self.len = self.entries.len();
        Ok(())
    }

    /// Batched deletion: all doomed entries are removed in one
    /// top-down pass with bulk underflow repair. Every id is resolved
    /// before the tree is touched, so an unknown or duplicated id
    /// rejects the whole batch with the index unchanged.
    fn remove_batch(&mut self, ids: &[ObjectId]) -> IndexResult<()> {
        if ids.is_empty() {
            return Ok(());
        }
        let mut targets = Vec::with_capacity(ids.len());
        let mut seen = std::collections::HashSet::with_capacity(ids.len());
        for &id in ids {
            let Some(entry) = self.entries.get(&id) else {
                return Err(IndexError::UnknownObject(id));
            };
            if !seen.insert(id) {
                return Err(IndexError::DuplicateObject(id));
            }
            targets.push(*entry);
        }
        let before = self.track_begin();
        let result = self.apply_group(targets, Vec::new());
        self.track_end(before);
        result?;
        for &id in ids {
            self.entries.remove(&id);
        }
        self.len = self.entries.len();
        Ok(())
    }

    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        let before = self.track_begin();
        let result = crate::snapshot::range_query_from(&*self.pool, self.root, query);
        self.track_end(before);
        result
    }

    /// Shared traversal over the whole batch: one top-down pass
    /// carries, per subtree, the indices of the queries whose TPBR
    /// still intersects it — every node page is read and decoded once
    /// for all queries that reach it, instead of once per query as a
    /// loop of [`MovingObjectIndex::range_query`] calls would. Leaf
    /// entries are decoded once and exact-filtered against each
    /// surviving query. Per query the visited subtrees, the exact
    /// filter, and the report order are identical to the single-query
    /// traversal (a DFS visits any query's subtree subset in the same
    /// relative order).
    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        let before = self.track_begin();
        let result = crate::snapshot::range_query_batch_from(&*self.pool, self.root, queries);
        self.track_end(before);
        result
    }

    /// Incremental kNN candidates: a pruned re-descent. Besides the
    /// normal intersects-the-probe pruning, any subtree whose TPBR
    /// footprint over the query window lies **entirely inside** the
    /// `covered` probe's region is skipped — an earlier round of the
    /// chain already visited every leaf under it and reported all
    /// their entries (visited leaves report unfiltered, which is what
    /// makes that induction airtight). Only the delta ring between
    /// the two probes is re-read. The covered pruning applies to
    /// time-slice chains whose windows match (what
    /// `vp_core::knn` issues); anything else falls
    /// back to a full candidate scan.
    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        let before = self.track_begin();
        let result = crate::snapshot::knn_candidates_from(&*self.pool, self.root, query, covered);
        self.track_end(before);
        result
    }

    fn get_object(&self, id: ObjectId) -> IndexResult<Option<MovingObject>> {
        Ok(self.entries.get(&id).map(|e| e.to_object()))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn io_stats(&self) -> IoStats {
        self.own.snapshot()
    }

    fn reset_io_stats(&self) {
        self.own.reset();
    }

    fn flush_storage(&self) -> IndexResult<()> {
        Ok(self.pool.checkpoint()?)
    }

    fn publish_epoch(&self) {
        if self.pool.is_versioned() {
            self.pool.commit_epoch();
        }
    }
}

impl SnapshotIndex for TprTree {
    type Snapshot = TprSnapshot;

    /// Captures the tree's current state: publishes everything written
    /// so far as a fresh committed pool epoch (the caller holds
    /// `&self`, so no write is in flight) and pins it, switching the
    /// shared pool into versioned mode on first use. Cheap — no page
    /// copies; resident pages are shared by refcount.
    fn snapshot(&self) -> IndexResult<TprSnapshot> {
        self.pool.enable_versioning();
        self.pool.commit_epoch();
        Ok(TprSnapshot {
            pages: self.pool.page_snapshot(),
            root: self.root,
            len: self.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_core::QueryRegion;
    use vp_geom::{Circle, Rect};
    use vp_storage::DiskManager;

    fn small_pool() -> Arc<BufferPool> {
        // 512-byte pages: 10 leaf entries, 6 internal entries. Small
        // fanout exercises splits/underflows with few objects.
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(512),
            50,
        ))
    }

    fn tree() -> TprTree {
        TprTree::new(small_pool(), TprConfig::default())
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TprTree>();
    }

    fn obj(id: u64, x: f64, y: f64, vx: f64, vy: f64, t: f64) -> MovingObject {
        MovingObject::new(id, Point::new(x, y), Point::new(vx, vy), t)
    }

    /// Deterministic pseudo-random stream.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x % 1_000_000) as f64 / 1_000_000.0
        }
    }

    fn random_objects(n: usize, seed: u64) -> Vec<MovingObject> {
        let mut rng = Rng(seed);
        (0..n as u64)
            .map(|id| {
                let x = rng.next() * 10_000.0;
                let y = rng.next() * 10_000.0;
                let ang = rng.next() * std::f64::consts::TAU;
                let speed = rng.next() * 100.0;
                obj(id, x, y, ang.cos() * speed, ang.sin() * speed, 0.0)
            })
            .collect()
    }

    /// The batched path's semantic contract: `update_batch` (one
    /// top-down group pass with re-clustering) must behave exactly
    /// like looping `update` / `insert` by hand — same contents, same
    /// query answers, same structural invariants. (The tree *shapes*
    /// legitimately differ; queries must not.) The seeded proptest in
    /// `tests/batch_equivalence.rs` generalizes this to random tick
    /// streams with range + kNN oracles.
    #[test]
    fn update_batch_matches_looped_updates() {
        let mut batched = tree();
        let mut looped = tree();
        let mut objs = random_objects(300, 0x7EE7);
        for o in &objs {
            batched.insert(*o).unwrap();
            looped.insert(*o).unwrap();
        }
        let mut rng = Rng(0x1CE);
        for tick in 1..=4u64 {
            let t = tick as f64 * 15.0;
            let mut updates = Vec::new();
            let mut stale = None;
            for o in objs.iter_mut() {
                if o.id % 4 == tick % 4 {
                    // Remember the first mover's pre-tick state to use
                    // as a genuinely different duplicate below.
                    if stale.is_none() {
                        stale = Some(*o);
                    }
                    // Half the movers turn 90°, stressing re-clustering.
                    let vel = if o.id % 2 == 0 {
                        Point::new(-o.vel.y, o.vel.x)
                    } else {
                        o.vel
                    };
                    *o = MovingObject::new(o.id, o.position_at(t), vel, t);
                    updates.push(*o);
                }
            }
            // Duplicate id inside one batch: the stale pre-tick state
            // rides first, the fresh update last — last write must
            // win, like the documented upsert semantics. (A
            // first-write-wins bug would keep the stale position and
            // diverge from the looped twin below.)
            if let Some(stale) = stale {
                updates.insert(0, stale);
            }
            // A brand-new id exercises the upsert path.
            let fresh = obj(
                50_000 + tick,
                rng.next() * 10_000.0,
                rng.next() * 10_000.0,
                10.0,
                -5.0,
                t,
            );
            updates.push(fresh);
            objs.push(fresh);

            batched.update_batch(&updates).unwrap();
            for u in &updates {
                if looped.get_object(u.id).unwrap().is_some() {
                    looped.update(*u).unwrap();
                } else {
                    looped.insert(*u).unwrap();
                }
            }

            assert_eq!(batched.len(), looped.len(), "tick {tick}");
            for o in &objs {
                assert_eq!(
                    batched.get_object(o.id).unwrap(),
                    looped.get_object(o.id).unwrap(),
                    "tick {tick}, object {}",
                    o.id
                );
            }
            let mut qrng = Rng(tick * 31 + 7);
            for qi in 0..8 {
                let c = Point::new(qrng.next() * 10_000.0, qrng.next() * 10_000.0);
                let q = RangeQuery::time_slice(
                    QueryRegion::Circle(Circle::new(c, 1_500.0)),
                    t + qi as f64,
                );
                let mut a = batched.range_query(&q).unwrap();
                let mut b = looped.range_query(&q).unwrap();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "tick {tick} query {qi} diverged");
            }
            batched.check_invariants().unwrap().unwrap();
        }
    }

    /// `remove_batch`'s sibling contract: looped deletes and the
    /// batched one-pass removal answer every query identically.
    #[test]
    fn remove_batch_matches_looped_deletes() {
        let objs = random_objects(200, 0xD00D);
        let mut batched = tree();
        let mut looped = tree();
        for o in &objs {
            batched.insert(*o).unwrap();
            looped.insert(*o).unwrap();
        }
        let doomed: Vec<u64> = objs.iter().map(|o| o.id).filter(|id| id % 3 == 0).collect();
        batched.remove_batch(&doomed).unwrap();
        for &id in &doomed {
            looped.delete(id).unwrap();
        }
        assert_eq!(batched.len(), looped.len());
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)),
            0.0,
        );
        let mut a = batched.range_query(&q).unwrap();
        let mut b = looped.range_query(&q).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(a.iter().all(|id| id % 3 != 0));
        batched.check_invariants().unwrap().unwrap();
    }

    /// `bulk_load` must hold the same contents and answer the same
    /// queries as incremental insertion, through several multi-level
    /// tree sizes.
    #[test]
    fn bulk_load_matches_incremental_inserts() {
        for n in [0usize, 5, 60, 400, 1200] {
            let objs = random_objects(n, 0xB01D ^ n as u64);
            let bulk = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
            let mut inc = tree();
            for o in &objs {
                inc.insert(*o).unwrap();
            }
            assert_eq!(bulk.len(), inc.len(), "n = {n}");
            bulk.check_invariants().unwrap().unwrap();
            let mut rng = Rng(0x5EED ^ n as u64 | 1);
            for qi in 0..10 {
                let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
                let q = RangeQuery::time_slice(
                    QueryRegion::Circle(Circle::new(c, 1_200.0)),
                    (qi % 4) as f64 * 20.0,
                );
                let mut a = bulk.range_query(&q).unwrap();
                let mut b = inc.range_query(&q).unwrap();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "n = {n}, query {qi}");
            }
        }
    }

    #[test]
    fn bulk_load_rejects_duplicate_ids() {
        let mut objs = random_objects(20, 0xD0D0);
        objs.push(objs[3]);
        assert!(matches!(
            TprTree::bulk_load(small_pool(), TprConfig::default(), &objs),
            Err(IndexError::DuplicateObject(3))
        ));
    }

    /// A bulk-loaded tree keeps working under the single-op paths.
    #[test]
    fn bulk_loaded_tree_supports_all_ops() {
        let objs = random_objects(300, 0x1DEA);
        let mut t = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
        t.insert(obj(9_999, 1.0, 1.0, 0.0, 0.0, 0.0)).unwrap();
        t.delete(0).unwrap();
        t.update(obj(1, 5_000.0, 5_000.0, 3.0, -2.0, 10.0)).unwrap();
        assert_eq!(t.len(), 300);
        t.check_invariants().unwrap().unwrap();
    }

    /// The attributable win of the tentpole: one full tick applied
    /// batched must write strictly fewer pages than looped single-op
    /// updates (one write per touched page vs. one path rewrite per
    /// object).
    #[test]
    fn update_batch_writes_fewer_pages_than_looped() {
        let objs = random_objects(600, 0x10C0);
        let updates: Vec<MovingObject> = objs
            .iter()
            .map(|o| MovingObject::new(o.id, o.position_at(30.0), o.vel, 30.0))
            .collect();

        let mut batched = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
        batched.reset_io_stats();
        batched.update_batch(&updates).unwrap();
        let io_batched = batched.io_stats();

        let mut looped = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
        looped.reset_io_stats();
        for u in &updates {
            looped.update(*u).unwrap();
        }
        let io_looped = looped.io_stats();

        assert!(
            io_batched.logical_writes < io_looped.logical_writes / 2,
            "batched tick should write far fewer pages: batched {} vs looped {}",
            io_batched.logical_writes,
            io_looped.logical_writes
        );
        batched.check_invariants().unwrap().unwrap();
    }

    #[test]
    fn remove_batch_rejects_unknown_and_duplicate_ids() {
        let objs = random_objects(50, 0xBAD);
        let mut t = TprTree::bulk_load(small_pool(), TprConfig::default(), &objs).unwrap();
        assert!(matches!(
            t.remove_batch(&[1, 2, 999]),
            Err(IndexError::UnknownObject(999))
        ));
        assert!(matches!(
            t.remove_batch(&[1, 2, 1]),
            Err(IndexError::DuplicateObject(1))
        ));
        // Both rejections left the index untouched.
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap().unwrap();
        t.remove_batch(&[1, 2]).unwrap();
        assert_eq!(t.len(), 48);
    }

    /// A giant batch landing on a tiny tree must grow it through
    /// multiple levels in one pass (multi-way splits cascading through
    /// `install_root`).
    #[test]
    fn update_batch_grows_tree_multiple_levels() {
        let mut t = tree();
        t.insert(obj(100_000, 5_000.0, 5_000.0, 1.0, 1.0, 0.0))
            .unwrap();
        let objs = random_objects(800, 0x9E0);
        t.update_batch(&objs).unwrap();
        assert_eq!(t.len(), 801);
        assert!(t.height() >= 3, "expected >= 3 levels, got {}", t.height());
        t.check_invariants().unwrap().unwrap();
        // And shrink back down through batched removal.
        let doomed: Vec<u64> = objs.iter().map(|o| o.id).collect();
        t.remove_batch(&doomed).unwrap();
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap().unwrap();
    }

    #[test]
    fn insert_and_point_query() {
        let mut t = tree();
        t.insert(obj(1, 100.0, 100.0, 1.0, 0.0, 0.0)).unwrap();
        t.insert(obj(2, 500.0, 500.0, 0.0, 1.0, 0.0)).unwrap();
        assert_eq!(t.len(), 2);
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(90.0, 90.0, 110.0, 110.0)),
            0.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![1]);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = tree();
        t.insert(obj(1, 0.0, 0.0, 0.0, 0.0, 0.0)).unwrap();
        assert!(matches!(
            t.insert(obj(1, 5.0, 5.0, 0.0, 0.0, 0.0)),
            Err(IndexError::DuplicateObject(1))
        ));
    }

    #[test]
    fn grows_and_queries_through_splits() {
        let mut t = tree();
        let objs = random_objects(500, 0xABCD);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2, "tree should have split");
        // Every object findable by a tight query at its own position.
        for o in objs.iter().step_by(37) {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(o.pos, 1.0)), 0.0);
            let got = t.range_query(&q).unwrap();
            assert!(got.contains(&o.id), "object {} lost", o.id);
        }
    }

    #[test]
    fn matches_linear_scan_on_predictive_queries() {
        let mut t = tree();
        let objs = random_objects(400, 0x77);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x1234);
        for qi in 0..40 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let horizon = (qi % 5) as f64 * 20.0;
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(c, 800.0)), horizon);
            let mut got = t.range_query(&q).unwrap();
            let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} diverged");
        }
    }

    #[test]
    fn interval_and_moving_queries_match_scan() {
        let mut t = tree();
        let objs = random_objects(300, 0x99);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x555);
        for qi in 0..30 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let region = QueryRegion::Rect(Rect::centered(c, 500.0, 500.0));
            let q = if qi % 2 == 0 {
                RangeQuery::time_interval(region, 10.0, 50.0)
            } else {
                RangeQuery::moving(region, Point::new(rng.next() * 50.0, 0.0), 10.0, 50.0)
            };
            let mut got = t.range_query(&q).unwrap();
            let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} diverged");
        }
    }

    #[test]
    fn delete_all_objects() {
        let mut t = tree();
        let objs = random_objects(300, 0x31);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        for (i, o) in objs.iter().enumerate() {
            t.delete(o.id).unwrap();
            assert_eq!(t.len(), 300 - i - 1);
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap().expect("empty tree is valid");
        assert_eq!(t.height(), 0);
        // Everything gone.
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 1e5, 1e5)),
            0.0,
        );
        assert!(t.range_query(&q).unwrap().is_empty());
    }

    #[test]
    fn delete_unknown_errors() {
        let mut t = tree();
        assert!(matches!(t.delete(9), Err(IndexError::UnknownObject(9))));
    }

    #[test]
    fn update_moves_object() {
        let mut t = tree();
        for o in random_objects(200, 0x42) {
            t.insert(o).unwrap();
        }
        t.update(obj(5, 9_999.0, 9_999.0, 0.0, 0.0, 10.0)).unwrap();
        assert_eq!(t.len(), 200);
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(9_999.0, 9_999.0), 5.0)),
            10.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![5]);
    }

    #[test]
    fn mixed_workload_stays_consistent() {
        let mut t = tree();
        let mut live: std::collections::BTreeMap<u64, MovingObject> = Default::default();
        let mut rng = Rng(0xFEED);
        let mut next_id = 0u64;
        for step in 0..2000 {
            let r = rng.next();
            if r < 0.5 || live.is_empty() {
                let o = obj(
                    next_id,
                    rng.next() * 10_000.0,
                    rng.next() * 10_000.0,
                    rng.next() * 100.0 - 50.0,
                    rng.next() * 100.0 - 50.0,
                    (step / 100) as f64,
                );
                next_id += 1;
                t.insert(o).unwrap();
                live.insert(o.id, o);
            } else if r < 0.75 {
                let k = *live
                    .keys()
                    .nth((rng.next() * live.len() as f64) as usize)
                    .unwrap();
                t.delete(k).unwrap();
                live.remove(&k);
            } else {
                let k = *live
                    .keys()
                    .nth((rng.next() * live.len() as f64) as usize)
                    .unwrap();
                let o = obj(
                    k,
                    rng.next() * 10_000.0,
                    rng.next() * 10_000.0,
                    rng.next() * 100.0 - 50.0,
                    rng.next() * 100.0 - 50.0,
                    (step / 100) as f64,
                );
                t.update(o).unwrap();
                live.insert(k, o);
            }
            assert_eq!(t.len(), live.len());
            if step % 500 == 0 {
                t.check_invariants()
                    .unwrap()
                    .expect("invariants hold mid-fuzz");
            }
        }
        t.check_invariants()
            .unwrap()
            .expect("invariants hold at end");
        // Final consistency check against a scan.
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 3_000.0)),
            25.0,
        );
        let mut got = t.range_query(&q).unwrap();
        let mut want: Vec<u64> = live
            .values()
            .filter(|o| q.matches(o))
            .map(|o| o.id)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn io_stats_accumulate_and_reset() {
        let mut t = tree();
        for o in random_objects(200, 0x10) {
            t.insert(o).unwrap();
        }
        assert!(t.io_stats().logical_reads > 0);
        t.reset_io_stats();
        assert_eq!(t.io_stats(), IoStats::zero());
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 2_000.0)),
            0.0,
        );
        t.range_query(&q).unwrap();
        assert!(t.io_stats().logical_reads > 0);
    }

    #[test]
    fn two_trees_share_pool_without_stat_crosstalk() {
        let pool = small_pool();
        let mut a = TprTree::new(Arc::clone(&pool), TprConfig::default());
        let mut b = TprTree::new(Arc::clone(&pool), TprConfig::default());
        for o in random_objects(100, 0x1) {
            a.insert(o).unwrap();
        }
        let a_io = a.io_stats();
        assert!(a_io.logical_reads > 0);
        assert_eq!(b.io_stats(), IoStats::zero());
        for o in random_objects(100, 0x2) {
            b.insert(o).unwrap();
        }
        // a unchanged while b worked.
        assert_eq!(a.io_stats(), a_io);
    }

    #[test]
    fn classic_variant_works_too() {
        let mut t = TprTree::new(
            small_pool(),
            TprConfig {
                variant: TprVariant::Classic,
                ..TprConfig::default()
            },
        );
        let objs = random_objects(300, 0x66);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 2_000.0)),
            30.0,
        );
        let mut got = t.range_query(&q).unwrap();
        let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn range_query_batch_matches_looped_queries() {
        let mut t = tree();
        let objs = random_objects(500, 0xBA7C2);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x9A7);
        let queries: Vec<RangeQuery> = (0..20)
            .map(|qi| {
                let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
                match qi % 3 {
                    0 => RangeQuery::time_slice(
                        QueryRegion::Circle(Circle::new(c, 400.0 + rng.next() * 1_600.0)),
                        (qi % 5) as f64 * 12.0,
                    ),
                    1 => RangeQuery::time_interval(
                        QueryRegion::Rect(Rect::centered(c, 1_200.0, 800.0)),
                        5.0,
                        35.0,
                    ),
                    _ => RangeQuery::moving(
                        QueryRegion::Circle(Circle::new(c, 800.0)),
                        Point::new(rng.next() * 20.0 - 10.0, 8.0),
                        0.0,
                        30.0,
                    ),
                }
            })
            .collect();
        let batched = t.range_query_batch(&queries).unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let looped = t.range_query(q).unwrap();
            assert_eq!(batched[qi], looped, "query {qi} diverged (order included)");
        }
    }

    #[test]
    fn range_query_batch_reads_fewer_pages_than_looped_queries() {
        let mut t = tree();
        let objs = random_objects(1_500, 0x10AD2);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        // Overlapping hotspot queries: the shared traversal reads the
        // upper levels and hot leaves once for the whole batch.
        let queries: Vec<RangeQuery> = (0..24)
            .map(|i| {
                RangeQuery::time_slice(
                    QueryRegion::Circle(Circle::new(
                        Point::new(5_000.0 + (i % 6) as f64 * 80.0, 5_000.0),
                        1_500.0,
                    )),
                    15.0,
                )
            })
            .collect();

        t.reset_io_stats();
        let batched = t.range_query_batch(&queries).unwrap();
        let batched_reads = t.io_stats().logical_reads;

        t.reset_io_stats();
        let looped: Vec<Vec<u64>> = queries.iter().map(|q| t.range_query(q).unwrap()).collect();
        let looped_reads = t.io_stats().logical_reads;

        assert_eq!(batched, looped);
        assert!(
            batched_reads * 2 < looped_reads,
            "shared traversal should at least halve page reads: {batched_reads} vs {looped_reads}"
        );
    }

    #[test]
    fn knn_candidates_delta_rings_cover_matches() {
        let mut t = tree();
        let objs = random_objects(900, 0xD317A2);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let center = Point::new(5_000.0, 5_000.0);
        // Early probe time: node TPBRs inflate with velocity bounds
        // over time, and the containment pruning only bites while the
        // covered circle is large relative to the inflated footprints.
        let tq = 2.0;
        let radii = [400.0, 1_200.0, 3_000.0, 6_500.0];
        let mut union: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut covered: Option<RangeQuery> = None;
        let mut last_delta_reads = 0;
        for &r in &radii {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
            t.reset_io_stats();
            union.extend(t.knn_candidates(&q, covered.as_ref()).unwrap());
            last_delta_reads = t.io_stats().logical_reads;
            let want: std::collections::BTreeSet<u64> =
                t.range_query(&q).unwrap().into_iter().collect();
            assert!(
                union.is_superset(&want),
                "radius {r}: union misses {:?}",
                want.difference(&union).collect::<Vec<_>>()
            );
            covered = Some(q);
        }
        // The pruned re-descent of the last ring beats a full rescan
        // of the final region.
        let final_q =
            RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, radii[3])), tq);
        t.reset_io_stats();
        t.knn_candidates(&final_q, None).unwrap();
        let full_reads = t.io_stats().logical_reads;
        assert!(
            last_delta_reads < full_reads,
            "delta ring ({last_delta_reads}) should read fewer pages than the full region ({full_reads})"
        );
    }

    /// Pins the half of the `knn_candidates` contract that holds with
    /// no chain at all: a standalone call (covered = `None`) returns a
    /// superset of the exact matches, at every radius and probe time
    /// the kNN driver would use. The subscription engine's kNN path
    /// leans on this directly.
    #[test]
    fn knn_candidates_standalone_is_superset() {
        let mut t = tree();
        for o in random_objects(600, 0xCA17D2) {
            t.insert(o).unwrap();
        }
        let center = Point::new(4_000.0, 6_000.0);
        for &tq in &[0.0, 10.0, 30.0] {
            for &r in &[250.0, 900.0, 2_500.0] {
                let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
                let got: std::collections::BTreeSet<u64> =
                    t.knn_candidates(&q, None).unwrap().into_iter().collect();
                let want: std::collections::BTreeSet<u64> =
                    t.range_query(&q).unwrap().into_iter().collect();
                assert!(
                    got.is_superset(&want),
                    "t={tq} r={r}: candidates miss {:?}",
                    want.difference(&got).collect::<Vec<_>>()
                );
            }
        }
    }

    /// Pins the omission rule verbatim: within one expanding chain, a
    /// call may omit an id matching its probe *only* if some earlier
    /// call of the chain already returned it — a sharper per-step
    /// check than the cumulative union-superset assertion above.
    #[test]
    fn knn_candidates_chain_omissions_were_previously_returned() {
        let mut t = tree();
        for o in random_objects(800, 0xFACE12) {
            t.insert(o).unwrap();
        }
        let center = Point::new(5_000.0, 5_000.0);
        let tq = 2.0;
        let mut earlier: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut covered: Option<RangeQuery> = None;
        for &r in &[400.0, 1_200.0, 3_000.0, 6_500.0] {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
            let returned: std::collections::BTreeSet<u64> = t
                .knn_candidates(&q, covered.as_ref())
                .unwrap()
                .into_iter()
                .collect();
            let want: std::collections::BTreeSet<u64> =
                t.range_query(&q).unwrap().into_iter().collect();
            let omitted: Vec<u64> = want.difference(&returned).copied().collect();
            assert!(
                omitted.iter().all(|id| earlier.contains(id)),
                "radius {r}: omitted ids never returned earlier: {:?}",
                omitted
                    .iter()
                    .filter(|id| !earlier.contains(id))
                    .collect::<Vec<_>>()
            );
            earlier.extend(returned);
            covered = Some(q);
        }
    }

    /// The chain contract only holds on an otherwise unmodified index;
    /// after a tick the consumer must restart with covered = `None`.
    /// Pins that a fresh chain over the post-update state is sound —
    /// what the subscription engine does on every tick.
    #[test]
    fn knn_candidates_fresh_chain_after_updates_is_sound() {
        let mut t = tree();
        let objs = random_objects(600, 0x0DDBA112);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        // A tick: every third object re-reports near the query center.
        let moved: Vec<MovingObject> = objs
            .iter()
            .step_by(3)
            .enumerate()
            .map(|(i, o)| {
                obj(
                    o.id,
                    4_900.0 + (i % 40) as f64 * 5.0,
                    5_000.0,
                    10.0,
                    0.0,
                    10.0,
                )
            })
            .collect();
        t.update_batch(&moved).unwrap();
        let center = Point::new(5_000.0, 5_000.0);
        let tq = 15.0;
        let mut union: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut covered: Option<RangeQuery> = None;
        for &r in &[200.0, 600.0, 1_400.0] {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
            union.extend(t.knn_candidates(&q, covered.as_ref()).unwrap());
            let want: std::collections::BTreeSet<u64> =
                t.range_query(&q).unwrap().into_iter().collect();
            assert!(
                union.is_superset(&want),
                "radius {r}: post-update chain misses {:?}",
                want.difference(&union).collect::<Vec<_>>()
            );
            covered = Some(q);
        }
    }

    #[test]
    fn visit_leaf_tpbrs_covers_objects() {
        let mut t = tree();
        let objs = random_objects(150, 0x8);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut count = 0;
        let mut total_entries_bound = 0.0;
        t.visit_leaf_tpbrs(|tp| {
            count += 1;
            total_entries_bound += tp.rect_at(0.0).area();
        })
        .unwrap();
        assert!(count >= 150 / 10, "expected several leaves, got {count}");
        assert!(total_entries_bound >= 0.0);
    }
}
