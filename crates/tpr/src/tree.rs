//! The TPR/TPR\*-tree proper.
//!
//! Structure and algorithms:
//!
//! * **ChooseSubtree** — descend towards the child whose cost metric
//!   (sweep volume over the horizon for [`TprVariant::Star`], area at
//!   the horizon midpoint for [`TprVariant::Classic`]) increases least
//!   when absorbing the new entry.
//! * **Overflow** — on the first leaf overflow per insertion, the
//!   entries farthest from the node center (evaluated at the horizon
//!   midpoint) are *force-reinserted* (R\*-tree style); a second
//!   overflow splits. Internal overflows always split.
//! * **Split** — candidate sortings along position x/y and (for the
//!   TPR\* variant) velocity x/y; every legal split point is scored by
//!   the summed cost metric of the two groups using prefix/suffix TPBR
//!   unions, and the cheapest is taken. Sorting by velocity lets the
//!   TPR\*-tree group objects moving in the same direction — the local
//!   optimization the paper contrasts with VP's global partitioning.
//! * **Delete** — guided descent using the recorded entry (the paper's
//!   "simple lookup table", Section 5.3); underflowing nodes are
//!   dissolved and their entries reinserted (R-tree condense).
//! * **Tightening** — whenever an insertion or deletion touches a
//!   path, parent entries are rewritten with the exact union of the
//!   child's contents, curbing MBR/VBR drift.
//!
//! All node accesses go through the shared buffer pool; the tree keeps
//! its own attributable I/O counters (thread-local stat deltas), so
//! several trees (the VP sub-indexes) can share one pool — even from
//! concurrent partition workers — without double counting.

use std::collections::HashMap;
use std::sync::Arc;

use vp_core::{IndexError, IndexResult, MovingObject, MovingObjectIndex, ObjectId, RangeQuery};
#[cfg(test)]
use vp_geom::Point;
use vp_geom::Tpbr;
use vp_storage::{AtomicIoStats, BufferPool, IoStats, PageId};

use crate::cost::{midpoint_area, sweep_cost};
use crate::node::{InternalEntry, LeafEntry, Node, NodeLayout};

/// Which member of the TPR family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TprVariant {
    /// TPR\*-tree: sweep-volume cost metric, velocity-aware splits.
    Star,
    /// Classic TPR-tree: midpoint-area metric, position-only splits.
    Classic,
}

/// TPR-tree configuration.
#[derive(Debug, Clone)]
pub struct TprConfig {
    pub variant: TprVariant,
    /// Cost-integration horizon (timestamps). The paper's workloads use
    /// a 120 ts maximum update interval; costs are integrated that far.
    pub horizon: f64,
    /// Extent of the optimization query per axis (the paper optimizes
    /// the TPR\*-tree for 1000 m × 1000 m queries).
    pub query_len: f64,
    /// Minimum node fill factor.
    pub min_fill: f64,
    /// Fraction of a leaf force-reinserted on first overflow.
    pub reinsert_fraction: f64,
}

impl Default for TprConfig {
    fn default() -> Self {
        TprConfig {
            variant: TprVariant::Star,
            horizon: 120.0,
            query_len: 1000.0,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
        }
    }
}

/// Tolerances for guided-descent containment tests (deletion). Erring
/// on the inclusive side only costs a little extra traversal.
const EPS_POS: f64 = 1e-4;
const EPS_VEL: f64 = 1e-6;

/// A paged TPR/TPR\*-tree implementing [`MovingObjectIndex`].
pub struct TprTree {
    pool: Arc<BufferPool>,
    config: TprConfig,
    layout: NodeLayout,
    root: PageId,
    /// Number of levels (0 = empty tree; root level = height - 1).
    height: u8,
    len: usize,
    /// Logical clock: the largest reference time seen.
    now: f64,
    /// Lookup table: object id -> the exact entry stored in the tree.
    entries: HashMap<ObjectId, LeafEntry>,
    /// I/O attributable to this tree, tracked as thread-local
    /// ([`vp_storage::thread_io`]) deltas around each operation —
    /// exact even with other trees on the same pool running
    /// concurrently. Atomic so a shared handle stays `Sync`.
    own: AtomicIoStats,
}

impl TprTree {
    /// Creates an empty tree over the shared buffer pool.
    pub fn new(pool: Arc<BufferPool>, config: TprConfig) -> TprTree {
        let layout = NodeLayout::for_page_size(pool.page_size(), config.min_fill);
        TprTree {
            pool,
            config,
            layout,
            root: PageId::INVALID,
            height: 0,
            len: 0,
            now: 0.0,
            entries: HashMap::new(),
            own: AtomicIoStats::zero(),
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TprConfig {
        &self.config
    }

    /// Tree height in levels (0 when empty).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// The logical current time (max reference time inserted).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Visits the exact bounding TPBR of every leaf (used to plot the
    /// paper's Figure 7 — leaf MBR expansion rates).
    pub fn visit_leaf_tpbrs(&self, mut f: impl FnMut(&Tpbr)) -> IndexResult<()> {
        if !self.root.is_valid() {
            return Ok(());
        }
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                Node::Leaf { entries } => {
                    let b = Node::Leaf { entries }.bounding_tpbr();
                    if !b.is_empty() {
                        f(&b);
                    }
                }
                Node::Internal { entries, .. } => {
                    stack.extend(entries.iter().map(|e| e.child));
                }
            }
        }
        Ok(())
    }

    /// Exhaustively validates the tree's structural invariants; returns
    /// a human-readable violation description on failure. Intended for
    /// tests and debugging (visits every page).
    ///
    /// Checked invariants:
    /// * stored entry count equals the lookup table and `len()`;
    /// * every parent entry's TPBR dominates its child's exact bounding
    ///   TPBR (within float tolerance) at the union reference time;
    /// * fanout bounds: non-root nodes hold at least the minimum and at
    ///   most the maximum number of entries;
    /// * levels decrease by exactly one per tree level and leaves sit
    ///   at level 0;
    /// * every object in the lookup table is reachable by guided
    ///   descent.
    pub fn check_invariants(&self) -> IndexResult<Result<(), String>> {
        if !self.root.is_valid() {
            return Ok(if self.len == 0 && self.entries.is_empty() {
                Ok(())
            } else {
                Err(format!("empty tree but len = {}", self.len))
            });
        }
        let mut total_entries = 0usize;
        // (pid, expected_level, bounding tpbr claimed by the parent)
        let mut stack: Vec<(PageId, u8, Option<Tpbr>)> = vec![(self.root, self.height - 1, None)];
        while let Some((pid, level, claimed)) = stack.pop() {
            let node = self.read_node(pid)?;
            if node.level() != level {
                return Ok(Err(format!(
                    "node {pid} has level {} but expected {level}",
                    node.level()
                )));
            }
            let is_root = pid == self.root;
            let min = self.layout.min_for_level(level);
            let max = self.layout.max_for_level(level);
            if node.len() > max {
                return Ok(Err(format!("node {pid} overfull: {} > {max}", node.len())));
            }
            if !is_root && node.len() < min {
                return Ok(Err(format!("node {pid} underfull: {} < {min}", node.len())));
            }
            if let Some(parent_tpbr) = claimed {
                let exact = node.bounding_tpbr();
                let t0 = parent_tpbr.ref_time.max(exact.ref_time);
                let pr = parent_tpbr.rect_at(t0).inflate(EPS_POS, EPS_POS);
                if !pr.contains_rect(&exact.rect_at(t0)) {
                    return Ok(Err(format!(
                        "parent TPBR does not dominate child {pid} at t={t0}"
                    )));
                }
            }
            match node {
                Node::Leaf { entries } => {
                    total_entries += entries.len();
                    for e in &entries {
                        match self.entries.get(&e.id) {
                            None => {
                                return Ok(Err(format!(
                                    "leaf entry {} missing from lookup table",
                                    e.id
                                )))
                            }
                            Some(rec) if rec != e => {
                                return Ok(Err(format!("lookup table stale for object {}", e.id)))
                            }
                            _ => {}
                        }
                    }
                }
                Node::Internal { entries, .. } => {
                    for e in &entries {
                        stack.push((e.child, level - 1, Some(e.tpbr)));
                    }
                }
            }
        }
        if total_entries != self.len || total_entries != self.entries.len() {
            return Ok(Err(format!(
                "entry count mismatch: tree {total_entries}, len {}, table {}",
                self.len,
                self.entries.len()
            )));
        }
        Ok(Ok(()))
    }

    // ----- page helpers -------------------------------------------------

    fn read_node(&self, pid: PageId) -> IndexResult<Node> {
        let node = self.pool.with_page(pid, Node::decode)??;
        Ok(node)
    }

    fn write_node(&self, pid: PageId, node: &Node) -> IndexResult<()> {
        self.pool.with_page_mut(pid, |buf| node.encode(buf))??;
        Ok(())
    }

    fn alloc_node(&self, node: &Node) -> IndexResult<PageId> {
        let pid = self.pool.new_page()?;
        self.write_node(pid, node)?;
        Ok(pid)
    }

    fn track_begin(&self) -> IoStats {
        vp_storage::thread_io::snapshot()
    }

    fn track_end(&self, before: IoStats) {
        self.own
            .add(vp_storage::thread_io::snapshot().delta(&before));
    }

    // ----- cost metric --------------------------------------------------

    fn metric(&self, tpbr: &Tpbr) -> f64 {
        match self.config.variant {
            TprVariant::Star => {
                sweep_cost(tpbr, self.now, self.config.horizon, self.config.query_len)
            }
            TprVariant::Classic => {
                midpoint_area(tpbr, self.now, self.config.horizon, self.config.query_len)
            }
        }
    }

    // ----- insertion ----------------------------------------------------

    fn insert_entry_toplevel(&mut self, entry: LeafEntry) -> IndexResult<()> {
        if !self.root.is_valid() {
            let node = Node::Leaf {
                entries: vec![entry],
            };
            self.root = self.alloc_node(&node)?;
            self.height = 1;
            return Ok(());
        }
        let mut pending: Vec<LeafEntry> = Vec::new();
        let mut reinserted = false;
        self.insert_from_root(entry, &mut pending, &mut reinserted)?;
        // Reinsert evicted entries; further reinsertion is disabled
        // (standard R* policy: once per level per insertion — we apply
        // forced reinsert at the leaf level only).
        while let Some(e) = pending.pop() {
            let mut nobody = true;
            self.insert_from_root(e, &mut Vec::new(), &mut nobody)?;
        }
        Ok(())
    }

    fn insert_from_root(
        &mut self,
        entry: LeafEntry,
        pending: &mut Vec<LeafEntry>,
        reinserted: &mut bool,
    ) -> IndexResult<()> {
        match self.insert_rec(self.root, entry, pending, reinserted)? {
            RecOutcome::Fit(_) => Ok(()),
            RecOutcome::Split(left_tpbr, right_pid, right_tpbr) => {
                // Root split: grow the tree.
                let new_root = Node::Internal {
                    level: self.height,
                    entries: vec![
                        InternalEntry {
                            child: self.root,
                            tpbr: left_tpbr,
                        },
                        InternalEntry {
                            child: right_pid,
                            tpbr: right_tpbr,
                        },
                    ],
                };
                self.root = self.alloc_node(&new_root)?;
                self.height += 1;
                Ok(())
            }
        }
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        entry: LeafEntry,
        pending: &mut Vec<LeafEntry>,
        reinserted: &mut bool,
    ) -> IndexResult<RecOutcome> {
        match self.read_node(pid)? {
            Node::Leaf { mut entries } => {
                entries.push(entry);
                if entries.len() <= self.layout.max_leaf {
                    let node = Node::Leaf { entries };
                    self.write_node(pid, &node)?;
                    return Ok(RecOutcome::Fit(node.bounding_tpbr()));
                }
                // Overflow. Forced reinsert once per insertion, and only
                // when the leaf is not the root (splitting the root is
                // how the tree grows).
                if !*reinserted && self.height > 1 {
                    *reinserted = true;
                    let keep = self.select_reinsert(&mut entries);
                    pending.extend(entries.drain(keep..));
                    let node = Node::Leaf { entries };
                    self.write_node(pid, &node)?;
                    return Ok(RecOutcome::Fit(node.bounding_tpbr()));
                }
                // Split.
                let (left, right) = self.split_leaf(entries);
                let left_node = Node::Leaf { entries: left };
                let right_node = Node::Leaf { entries: right };
                self.write_node(pid, &left_node)?;
                let right_pid = self.alloc_node(&right_node)?;
                Ok(RecOutcome::Split(
                    left_node.bounding_tpbr(),
                    right_pid,
                    right_node.bounding_tpbr(),
                ))
            }
            Node::Internal { level, mut entries } => {
                let chosen = self.choose_subtree(&entries, &entry);
                let child_pid = entries[chosen].child;
                match self.insert_rec(child_pid, entry, pending, reinserted)? {
                    RecOutcome::Fit(tpbr) => {
                        // Tighten: the child's exact bounding TPBR.
                        entries[chosen].tpbr = tpbr;
                        let node = Node::Internal { level, entries };
                        self.write_node(pid, &node)?;
                        Ok(RecOutcome::Fit(node.bounding_tpbr()))
                    }
                    RecOutcome::Split(left_tpbr, right_pid, right_tpbr) => {
                        entries[chosen].tpbr = left_tpbr;
                        entries.push(InternalEntry {
                            child: right_pid,
                            tpbr: right_tpbr,
                        });
                        if entries.len() <= self.layout.max_internal {
                            let node = Node::Internal { level, entries };
                            self.write_node(pid, &node)?;
                            return Ok(RecOutcome::Fit(node.bounding_tpbr()));
                        }
                        let (left, right) = self.split_internal(entries);
                        let left_node = Node::Internal {
                            level,
                            entries: left,
                        };
                        let right_node = Node::Internal {
                            level,
                            entries: right,
                        };
                        self.write_node(pid, &left_node)?;
                        let right_pid = self.alloc_node(&right_node)?;
                        Ok(RecOutcome::Split(
                            left_node.bounding_tpbr(),
                            right_pid,
                            right_node.bounding_tpbr(),
                        ))
                    }
                }
            }
        }
    }

    /// Picks the child minimizing the cost-metric increase.
    fn choose_subtree(&self, entries: &[InternalEntry], entry: &LeafEntry) -> usize {
        let e_tpbr = entry.tpbr();
        let mut best = 0usize;
        let mut best_delta = f64::INFINITY;
        let mut best_cost = f64::INFINITY;
        for (i, ie) in entries.iter().enumerate() {
            let cost = self.metric(&ie.tpbr);
            let grown = self.metric(&ie.tpbr.union(&e_tpbr));
            let delta = grown - cost;
            if delta < best_delta - 1e-12
                || ((delta - best_delta).abs() <= 1e-12 && cost < best_cost)
            {
                best = i;
                best_delta = delta;
                best_cost = cost;
            }
        }
        best
    }

    /// Reorders `entries` so the kept prefix stays in the node; returns
    /// the prefix length. Eviction candidates are the entries farthest
    /// from the node center at the horizon midpoint.
    fn select_reinsert(&self, entries: &mut [LeafEntry]) -> usize {
        let node = Node::Leaf {
            entries: entries.to_vec(),
        };
        let tm = self.now + self.config.horizon * 0.5;
        let center = node.bounding_tpbr().rect_at(tm).center();
        entries.sort_by(|a, b| {
            let da = a.position_at(tm).dist_sq(center);
            let db = b.position_at(tm).dist_sq(center);
            da.total_cmp(&db) // ascending: nearest first (kept)
        });
        let n = entries.len();
        let evict = ((n as f64 * self.config.reinsert_fraction).ceil() as usize)
            .min(n - self.layout.min_leaf)
            .max(1);
        n - evict
    }

    /// TPR\*-style leaf split: try sortings by position x/y (advanced to
    /// `now`) and — in Star mode — velocity x/y; score every legal split
    /// point with the summed cost metric via prefix/suffix TPBR unions.
    fn split_leaf(&self, entries: Vec<LeafEntry>) -> (Vec<LeafEntry>, Vec<LeafEntry>) {
        let now = self.now;
        let keys: &[fn(&LeafEntry, f64) -> f64] = match self.config.variant {
            TprVariant::Star => &[
                |e, t| e.position_at(t).x,
                |e, t| e.position_at(t).y,
                |e, _| e.vel.x,
                |e, _| e.vel.y,
            ],
            TprVariant::Classic => &[|e, t| e.position_at(t).x, |e, t| e.position_at(t).y],
        };
        let min = self.layout.min_leaf;
        let mut best: Option<(f64, Vec<LeafEntry>, usize)> = None;
        for key in keys {
            let mut sorted = entries.clone();
            sorted.sort_by(|a, b| key(a, now).total_cmp(&key(b, now)));
            let tpbrs: Vec<Tpbr> = sorted.iter().map(|e| e.tpbr()).collect();
            if let Some((cost, at)) = self.best_split_point(&tpbrs, min) {
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, sorted, at));
                }
            }
        }
        let (_, sorted, at) =
            best.expect("split invoked on a node with enough entries for a legal split");
        let mut left = sorted;
        let right = left.split_off(at);
        (left, right)
    }

    fn split_internal(
        &self,
        entries: Vec<InternalEntry>,
    ) -> (Vec<InternalEntry>, Vec<InternalEntry>) {
        let keys: &[fn(&InternalEntry) -> f64] = match self.config.variant {
            TprVariant::Star => &[
                |e| e.tpbr.rect.center().x,
                |e| e.tpbr.rect.center().y,
                |e| (e.tpbr.vbr.lo.x + e.tpbr.vbr.hi.x) * 0.5,
                |e| (e.tpbr.vbr.lo.y + e.tpbr.vbr.hi.y) * 0.5,
            ],
            TprVariant::Classic => &[|e| e.tpbr.rect.center().x, |e| e.tpbr.rect.center().y],
        };
        let min = self.layout.min_internal;
        let mut best: Option<(f64, Vec<InternalEntry>, usize)> = None;
        for key in keys {
            let mut sorted = entries.clone();
            sorted.sort_by(|a, b| key(a).total_cmp(&key(b)));
            let tpbrs: Vec<Tpbr> = sorted.iter().map(|e| e.tpbr).collect();
            if let Some((cost, at)) = self.best_split_point(&tpbrs, min) {
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, sorted, at));
                }
            }
        }
        let (_, sorted, at) =
            best.expect("split invoked on a node with enough entries for a legal split");
        let mut left = sorted;
        let right = left.split_off(at);
        (left, right)
    }

    /// For a fixed ordering, finds the split index minimizing the summed
    /// cost metric of the two groups using O(n) prefix/suffix unions.
    fn best_split_point(&self, tpbrs: &[Tpbr], min: usize) -> Option<(f64, usize)> {
        let n = tpbrs.len();
        if n < 2 * min {
            return None;
        }
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Tpbr::empty(0.0);
        for t in tpbrs {
            acc = acc.union(t);
            prefix.push(acc);
        }
        let mut suffix = vec![Tpbr::empty(0.0); n];
        let mut acc = Tpbr::empty(0.0);
        for i in (0..n).rev() {
            acc = acc.union(&tpbrs[i]);
            suffix[i] = acc;
        }
        let mut best: Option<(f64, usize)> = None;
        for at in min..=(n - min) {
            let cost = self.metric(&prefix[at - 1]) + self.metric(&suffix[at]);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, at));
            }
        }
        best
    }

    // ----- deletion -----------------------------------------------------

    fn delete_entry_toplevel(&mut self, target: LeafEntry) -> IndexResult<bool> {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let outcome = self.delete_rec(self.root, self.height - 1, &target, &mut orphans)?;
        let found = match outcome {
            DelOutcome::NotFound => false,
            DelOutcome::Deleted { .. } => true,
        };
        if !found {
            return Ok(false);
        }
        // Root adjustments.
        loop {
            match self.read_node(self.root)? {
                Node::Internal { entries, .. } if entries.len() == 1 => {
                    let old_root = self.root;
                    self.root = entries[0].child;
                    self.height -= 1;
                    self.pool.free_page(old_root)?;
                }
                Node::Internal { entries, .. } if entries.is_empty() => {
                    // All children dissolved into orphans.
                    self.pool.free_page(self.root)?;
                    self.root = PageId::INVALID;
                    self.height = 0;
                    break;
                }
                Node::Leaf { entries } if entries.is_empty() => {
                    self.pool.free_page(self.root)?;
                    self.root = PageId::INVALID;
                    self.height = 0;
                    break;
                }
                _ => break,
            }
        }
        // Reinsert orphaned entries. Dissolved subtrees were dismantled
        // to leaf entries during the descent, so everything reinserts
        // uniformly at the leaf level.
        for e in orphans {
            self.insert_entry_toplevel(e)?;
        }
        Ok(true)
    }

    /// Dismantles a subtree into its leaf entries, freeing every page.
    /// Used when an internal node underflows: reinserting the leaves is
    /// simpler and more robust than grafting subtrees at matching
    /// levels, and internal underflow is rare in the paper's workloads.
    fn dismantle_subtree(&mut self, root: PageId, out: &mut Vec<LeafEntry>) -> IndexResult<()> {
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                Node::Leaf { entries } => out.extend(entries),
                Node::Internal { entries, .. } => {
                    stack.extend(entries.iter().map(|e| e.child));
                }
            }
            self.pool.free_page(pid)?;
        }
        Ok(())
    }

    fn delete_rec(
        &mut self,
        pid: PageId,
        level: u8,
        target: &LeafEntry,
        orphans: &mut Vec<LeafEntry>,
    ) -> IndexResult<DelOutcome> {
        match self.read_node(pid)? {
            Node::Leaf { mut entries } => {
                let Some(at) = entries.iter().position(|e| e.id == target.id) else {
                    return Ok(DelOutcome::NotFound);
                };
                entries.remove(at);
                let is_root = pid == self.root;
                if !is_root && entries.len() < self.layout.min_leaf {
                    // Dissolve: caller removes this node; entries become
                    // orphans.
                    orphans.extend(entries);
                    self.pool.free_page(pid)?;
                    return Ok(DelOutcome::Deleted {
                        tpbr: None,
                        dissolved: true,
                    });
                }
                let node = Node::Leaf { entries };
                self.write_node(pid, &node)?;
                Ok(DelOutcome::Deleted {
                    tpbr: Some(node.bounding_tpbr()),
                    dissolved: false,
                })
            }
            Node::Internal {
                level: lvl,
                mut entries,
            } => {
                debug_assert_eq!(lvl, level);
                let mut found_at: Option<(usize, Option<Tpbr>, bool)> = None;
                // Indexing (not iterating) because the loop body calls
                // `&mut self` methods while `entries` stays borrowed.
                #[allow(clippy::needless_range_loop)]
                for i in 0..entries.len() {
                    if !could_contain(&entries[i].tpbr, target) {
                        continue;
                    }
                    match self.delete_rec(entries[i].child, level - 1, target, orphans)? {
                        DelOutcome::NotFound => continue,
                        DelOutcome::Deleted { tpbr, dissolved } => {
                            found_at = Some((i, tpbr, dissolved));
                            break;
                        }
                    }
                }
                let Some((i, child_tpbr, dissolved)) = found_at else {
                    return Ok(DelOutcome::NotFound);
                };
                if dissolved {
                    entries.remove(i);
                } else if let Some(t) = child_tpbr {
                    entries[i].tpbr = t; // tighten
                }
                let is_root = pid == self.root;
                if !is_root && entries.len() < self.layout.min_internal {
                    for e in &entries {
                        self.dismantle_subtree(e.child, orphans)?;
                    }
                    self.pool.free_page(pid)?;
                    return Ok(DelOutcome::Deleted {
                        tpbr: None,
                        dissolved: true,
                    });
                }
                let node = Node::Internal { level, entries };
                self.write_node(pid, &node)?;
                Ok(DelOutcome::Deleted {
                    tpbr: Some(node.bounding_tpbr()),
                    dissolved: false,
                })
            }
        }
    }
}

enum RecOutcome {
    /// Child absorbed the entry; its new exact bounding TPBR.
    Fit(Tpbr),
    /// Child split: (left TPBR, right page, right TPBR).
    Split(Tpbr, PageId, Tpbr),
}

enum DelOutcome {
    NotFound,
    Deleted {
        /// The child's new bounding TPBR (None when dissolved).
        tpbr: Option<Tpbr>,
        dissolved: bool,
    },
}

/// Conservative test: could this node's TPBR contain the given entry?
/// Exact containment holds by construction (parent TPBRs are unions of
/// their children); epsilons absorb floating-point drift.
fn could_contain(node: &Tpbr, e: &LeafEntry) -> bool {
    let t0 = node.ref_time.max(e.ref_time);
    let r = node.rect_at(t0);
    let p = e.position_at(t0);
    r.inflate(EPS_POS, EPS_POS).contains_point(p)
        && node.vbr.lo.x - EPS_VEL <= e.vel.x
        && e.vel.x <= node.vbr.hi.x + EPS_VEL
        && node.vbr.lo.y - EPS_VEL <= e.vel.y
        && e.vel.y <= node.vbr.hi.y + EPS_VEL
}

impl MovingObjectIndex for TprTree {
    fn insert(&mut self, obj: MovingObject) -> IndexResult<()> {
        if self.entries.contains_key(&obj.id) {
            return Err(IndexError::DuplicateObject(obj.id));
        }
        let before = self.track_begin();
        self.now = self.now.max(obj.ref_time);
        let entry = LeafEntry::from_object(&obj);
        let result = self.insert_entry_toplevel(entry);
        self.track_end(before);
        result?;
        self.entries.insert(obj.id, entry);
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, id: ObjectId) -> IndexResult<()> {
        let Some(entry) = self.entries.get(&id).copied() else {
            return Err(IndexError::UnknownObject(id));
        };
        let before = self.track_begin();
        let found = self.delete_entry_toplevel(entry);
        self.track_end(before);
        if !found? {
            // The lookup table says it exists; a miss means drift beyond
            // the containment epsilons — surface loudly rather than
            // corrupting the table.
            return Err(IndexError::Storage(vp_storage::StorageError::Corrupt(
                format!("entry for object {id} not reachable by guided descent"),
            )));
        }
        self.entries.remove(&id);
        self.len -= 1;
        Ok(())
    }

    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        let before = self.track_begin();
        let mut out = Vec::new();
        if self.root.is_valid() {
            let q_tpbr = query.tpbr();
            let mut stack = vec![self.root];
            while let Some(pid) = stack.pop() {
                match self.read_node(pid)? {
                    Node::Leaf { entries } => {
                        for e in &entries {
                            if query.matches(&e.to_object()) {
                                out.push(e.id);
                            }
                        }
                    }
                    Node::Internal { entries, .. } => {
                        for e in &entries {
                            if e.tpbr
                                .intersects_during(&q_tpbr, query.t_start, query.t_end)
                            {
                                stack.push(e.child);
                            }
                        }
                    }
                }
            }
        }
        self.track_end(before);
        Ok(out)
    }

    fn get_object(&self, id: ObjectId) -> Option<MovingObject> {
        self.entries.get(&id).map(|e| e.to_object())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn io_stats(&self) -> IoStats {
        self.own.snapshot()
    }

    fn reset_io_stats(&self) {
        self.own.reset();
    }

    fn flush_storage(&self) -> IndexResult<()> {
        Ok(self.pool.checkpoint()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_core::QueryRegion;
    use vp_geom::{Circle, Rect};
    use vp_storage::DiskManager;

    fn small_pool() -> Arc<BufferPool> {
        // 512-byte pages: 10 leaf entries, 6 internal entries. Small
        // fanout exercises splits/underflows with few objects.
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(512),
            50,
        ))
    }

    fn tree() -> TprTree {
        TprTree::new(small_pool(), TprConfig::default())
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TprTree>();
    }

    fn obj(id: u64, x: f64, y: f64, vx: f64, vy: f64, t: f64) -> MovingObject {
        MovingObject::new(id, Point::new(x, y), Point::new(vx, vy), t)
    }

    /// Deterministic pseudo-random stream.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x % 1_000_000) as f64 / 1_000_000.0
        }
    }

    fn random_objects(n: usize, seed: u64) -> Vec<MovingObject> {
        let mut rng = Rng(seed);
        (0..n as u64)
            .map(|id| {
                let x = rng.next() * 10_000.0;
                let y = rng.next() * 10_000.0;
                let ang = rng.next() * std::f64::consts::TAU;
                let speed = rng.next() * 100.0;
                obj(id, x, y, ang.cos() * speed, ang.sin() * speed, 0.0)
            })
            .collect()
    }

    /// Pins the baseline for the ROADMAP's future TPR group-insert:
    /// the TPR\*-tree has no batched plan yet, so
    /// [`MovingObjectIndex::update_batch`] falls back to the single-op
    /// default, which must behave exactly like looping `update` /
    /// `insert` by hand — same contents, same query answers, same
    /// structural invariants. When a real batched path lands, this
    /// test keeps its semantics honest.
    #[test]
    fn update_batch_fallback_matches_looped_updates() {
        let mut batched = tree();
        let mut looped = tree();
        let mut objs = random_objects(300, 0x7EE7);
        for o in &objs {
            batched.insert(*o).unwrap();
            looped.insert(*o).unwrap();
        }
        let mut rng = Rng(0x1CE);
        for tick in 1..=4u64 {
            let t = tick as f64 * 15.0;
            let mut updates = Vec::new();
            let mut stale = None;
            for o in objs.iter_mut() {
                if o.id % 4 == tick % 4 {
                    // Remember the first mover's pre-tick state to use
                    // as a genuinely different duplicate below.
                    if stale.is_none() {
                        stale = Some(*o);
                    }
                    // Half the movers turn 90°, stressing re-clustering.
                    let vel = if o.id % 2 == 0 {
                        Point::new(-o.vel.y, o.vel.x)
                    } else {
                        o.vel
                    };
                    *o = MovingObject::new(o.id, o.position_at(t), vel, t);
                    updates.push(*o);
                }
            }
            // Duplicate id inside one batch: the stale pre-tick state
            // rides first, the fresh update last — last write must
            // win, like the documented upsert semantics. (A
            // first-write-wins bug would keep the stale position and
            // diverge from the looped twin below.)
            if let Some(stale) = stale {
                updates.insert(0, stale);
            }
            // A brand-new id exercises the upsert path.
            let fresh = obj(
                50_000 + tick,
                rng.next() * 10_000.0,
                rng.next() * 10_000.0,
                10.0,
                -5.0,
                t,
            );
            updates.push(fresh);
            objs.push(fresh);

            batched.update_batch(&updates).unwrap();
            for u in &updates {
                if looped.get_object(u.id).is_some() {
                    looped.update(*u).unwrap();
                } else {
                    looped.insert(*u).unwrap();
                }
            }

            assert_eq!(batched.len(), looped.len(), "tick {tick}");
            for o in &objs {
                assert_eq!(
                    batched.get_object(o.id),
                    looped.get_object(o.id),
                    "tick {tick}, object {}",
                    o.id
                );
            }
            let mut qrng = Rng(tick * 31 + 7);
            for qi in 0..8 {
                let c = Point::new(qrng.next() * 10_000.0, qrng.next() * 10_000.0);
                let q = RangeQuery::time_slice(
                    QueryRegion::Circle(Circle::new(c, 1_500.0)),
                    t + qi as f64,
                );
                let mut a = batched.range_query(&q).unwrap();
                let mut b = looped.range_query(&q).unwrap();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "tick {tick} query {qi} diverged");
            }
            batched.check_invariants().unwrap().unwrap();
        }
    }

    /// The fallback's `remove_batch` sibling: looped deletes and the
    /// default batch removal leave identical trees.
    #[test]
    fn remove_batch_fallback_matches_looped_deletes() {
        let objs = random_objects(200, 0xD00D);
        let mut batched = tree();
        let mut looped = tree();
        for o in &objs {
            batched.insert(*o).unwrap();
            looped.insert(*o).unwrap();
        }
        let doomed: Vec<u64> = objs.iter().map(|o| o.id).filter(|id| id % 3 == 0).collect();
        batched.remove_batch(&doomed).unwrap();
        for &id in &doomed {
            looped.delete(id).unwrap();
        }
        assert_eq!(batched.len(), looped.len());
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)),
            0.0,
        );
        let mut a = batched.range_query(&q).unwrap();
        let mut b = looped.range_query(&q).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(a.iter().all(|id| id % 3 != 0));
        batched.check_invariants().unwrap().unwrap();
    }

    #[test]
    fn insert_and_point_query() {
        let mut t = tree();
        t.insert(obj(1, 100.0, 100.0, 1.0, 0.0, 0.0)).unwrap();
        t.insert(obj(2, 500.0, 500.0, 0.0, 1.0, 0.0)).unwrap();
        assert_eq!(t.len(), 2);
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(90.0, 90.0, 110.0, 110.0)),
            0.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![1]);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = tree();
        t.insert(obj(1, 0.0, 0.0, 0.0, 0.0, 0.0)).unwrap();
        assert!(matches!(
            t.insert(obj(1, 5.0, 5.0, 0.0, 0.0, 0.0)),
            Err(IndexError::DuplicateObject(1))
        ));
    }

    #[test]
    fn grows_and_queries_through_splits() {
        let mut t = tree();
        let objs = random_objects(500, 0xABCD);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2, "tree should have split");
        // Every object findable by a tight query at its own position.
        for o in objs.iter().step_by(37) {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(o.pos, 1.0)), 0.0);
            let got = t.range_query(&q).unwrap();
            assert!(got.contains(&o.id), "object {} lost", o.id);
        }
    }

    #[test]
    fn matches_linear_scan_on_predictive_queries() {
        let mut t = tree();
        let objs = random_objects(400, 0x77);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x1234);
        for qi in 0..40 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let horizon = (qi % 5) as f64 * 20.0;
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(c, 800.0)), horizon);
            let mut got = t.range_query(&q).unwrap();
            let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} diverged");
        }
    }

    #[test]
    fn interval_and_moving_queries_match_scan() {
        let mut t = tree();
        let objs = random_objects(300, 0x99);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x555);
        for qi in 0..30 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let region = QueryRegion::Rect(Rect::centered(c, 500.0, 500.0));
            let q = if qi % 2 == 0 {
                RangeQuery::time_interval(region, 10.0, 50.0)
            } else {
                RangeQuery::moving(region, Point::new(rng.next() * 50.0, 0.0), 10.0, 50.0)
            };
            let mut got = t.range_query(&q).unwrap();
            let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} diverged");
        }
    }

    #[test]
    fn delete_all_objects() {
        let mut t = tree();
        let objs = random_objects(300, 0x31);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        for (i, o) in objs.iter().enumerate() {
            t.delete(o.id).unwrap();
            assert_eq!(t.len(), 300 - i - 1);
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap().expect("empty tree is valid");
        assert_eq!(t.height(), 0);
        // Everything gone.
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 1e5, 1e5)),
            0.0,
        );
        assert!(t.range_query(&q).unwrap().is_empty());
    }

    #[test]
    fn delete_unknown_errors() {
        let mut t = tree();
        assert!(matches!(t.delete(9), Err(IndexError::UnknownObject(9))));
    }

    #[test]
    fn update_moves_object() {
        let mut t = tree();
        for o in random_objects(200, 0x42) {
            t.insert(o).unwrap();
        }
        t.update(obj(5, 9_999.0, 9_999.0, 0.0, 0.0, 10.0)).unwrap();
        assert_eq!(t.len(), 200);
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(9_999.0, 9_999.0), 5.0)),
            10.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![5]);
    }

    #[test]
    fn mixed_workload_stays_consistent() {
        let mut t = tree();
        let mut live: std::collections::BTreeMap<u64, MovingObject> = Default::default();
        let mut rng = Rng(0xFEED);
        let mut next_id = 0u64;
        for step in 0..2000 {
            let r = rng.next();
            if r < 0.5 || live.is_empty() {
                let o = obj(
                    next_id,
                    rng.next() * 10_000.0,
                    rng.next() * 10_000.0,
                    rng.next() * 100.0 - 50.0,
                    rng.next() * 100.0 - 50.0,
                    (step / 100) as f64,
                );
                next_id += 1;
                t.insert(o).unwrap();
                live.insert(o.id, o);
            } else if r < 0.75 {
                let k = *live
                    .keys()
                    .nth((rng.next() * live.len() as f64) as usize)
                    .unwrap();
                t.delete(k).unwrap();
                live.remove(&k);
            } else {
                let k = *live
                    .keys()
                    .nth((rng.next() * live.len() as f64) as usize)
                    .unwrap();
                let o = obj(
                    k,
                    rng.next() * 10_000.0,
                    rng.next() * 10_000.0,
                    rng.next() * 100.0 - 50.0,
                    rng.next() * 100.0 - 50.0,
                    (step / 100) as f64,
                );
                t.update(o).unwrap();
                live.insert(k, o);
            }
            assert_eq!(t.len(), live.len());
            if step % 500 == 0 {
                t.check_invariants()
                    .unwrap()
                    .expect("invariants hold mid-fuzz");
            }
        }
        t.check_invariants()
            .unwrap()
            .expect("invariants hold at end");
        // Final consistency check against a scan.
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 3_000.0)),
            25.0,
        );
        let mut got = t.range_query(&q).unwrap();
        let mut want: Vec<u64> = live
            .values()
            .filter(|o| q.matches(o))
            .map(|o| o.id)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn io_stats_accumulate_and_reset() {
        let mut t = tree();
        for o in random_objects(200, 0x10) {
            t.insert(o).unwrap();
        }
        assert!(t.io_stats().logical_reads > 0);
        t.reset_io_stats();
        assert_eq!(t.io_stats(), IoStats::zero());
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 2_000.0)),
            0.0,
        );
        t.range_query(&q).unwrap();
        assert!(t.io_stats().logical_reads > 0);
    }

    #[test]
    fn two_trees_share_pool_without_stat_crosstalk() {
        let pool = small_pool();
        let mut a = TprTree::new(Arc::clone(&pool), TprConfig::default());
        let mut b = TprTree::new(Arc::clone(&pool), TprConfig::default());
        for o in random_objects(100, 0x1) {
            a.insert(o).unwrap();
        }
        let a_io = a.io_stats();
        assert!(a_io.logical_reads > 0);
        assert_eq!(b.io_stats(), IoStats::zero());
        for o in random_objects(100, 0x2) {
            b.insert(o).unwrap();
        }
        // a unchanged while b worked.
        assert_eq!(a.io_stats(), a_io);
    }

    #[test]
    fn classic_variant_works_too() {
        let mut t = TprTree::new(
            small_pool(),
            TprConfig {
                variant: TprVariant::Classic,
                ..TprConfig::default()
            },
        );
        let objs = random_objects(300, 0x66);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 2_000.0)),
            30.0,
        );
        let mut got = t.range_query(&q).unwrap();
        let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn visit_leaf_tpbrs_covers_objects() {
        let mut t = tree();
        let objs = random_objects(150, 0x8);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut count = 0;
        let mut total_entries_bound = 0.0;
        t.visit_leaf_tpbrs(|tp| {
            count += 1;
            total_entries_bound += tp.rect_at(0.0).area();
        })
        .unwrap();
        assert!(count >= 150 / 10, "expected several leaves, got {count}");
        assert!(total_entries_bound >= 0.0);
    }
}
