//! The B+-tree read path, generic over its page source.
//!
//! `ReadView` (crate-private) bundles a root handle (root page + height) with any
//! [`PageRead`] implementor and runs the zero-copy descent, lookup,
//! and range-scan machinery against it. The live [`BPlusTree`] wraps
//! its buffer pool in a view for every read; [`BPlusTreeSnapshot`]
//! wraps a [`PageSnapshot`], giving lock-free point-in-time reads that
//! need no coordination with writers mutating the live tree.
//!
//! [`BPlusTree`]: crate::BPlusTree

use vp_storage::{PageId, PageRead, PageSnapshot, StorageResult};

use crate::node::{InternalView, Key128, LeafView, Value};

/// Read-only tree operations over any page source: the live pool or a
/// committed snapshot. Semantics (and code) are identical either way —
/// only where the bytes come from differs.
pub(crate) struct ReadView<'a, P: PageRead> {
    pub pages: &'a P,
    pub root: PageId,
    pub height: u8,
}

impl<'a, P: PageRead> ReadView<'a, P> {
    /// Walks from the root to the leaf owning `key` via zero-copy
    /// [`InternalView`] binary searches.
    pub fn descend_to_leaf(&self, key: Key128) -> StorageResult<PageId> {
        let mut pid = self.root;
        for _ in 1..self.height {
            pid = self.pages.read_page(pid, |buf| -> StorageResult<PageId> {
                let v = InternalView::parse(buf)?;
                Ok(v.child_at(v.child_for(key)))
            })??;
        }
        Ok(pid)
    }

    /// Returns the value stored for `key`, if any. Zero-copy: the
    /// descent and the leaf probe never decode a node.
    pub fn get(&self, key: Key128) -> StorageResult<Option<Value>> {
        let leaf = self.descend_to_leaf(key)?;
        self.pages.read_page(leaf, |buf| -> StorageResult<_> {
            let v = LeafView::parse(buf)?;
            Ok(v.search(key).ok().map(|i| *v.value_at(i)))
        })?
    }

    /// Visits every `(key, value)` with `lo <= key <= hi` in key
    /// order. Returns the number of entries visited.
    pub fn range_scan(
        &self,
        lo: Key128,
        hi: Key128,
        mut f: impl FnMut(Key128, &Value),
    ) -> StorageResult<usize> {
        if hi < lo {
            return Ok(0);
        }
        let mut pid = self.descend_to_leaf(lo)?;
        let mut count = 0usize;
        loop {
            let next = self
                .pages
                .read_page(pid, |buf| -> StorageResult<Option<PageId>> {
                    let v = LeafView::parse(buf)?;
                    for i in v.lower_bound(lo)..v.count() {
                        let k = v.key_at(i);
                        if k > hi {
                            return Ok(None);
                        }
                        f(k, v.value_at(i));
                        count += 1;
                    }
                    Ok(Some(v.next()).filter(|n| n.is_valid()))
                })??;
            match next {
                Some(n) => pid = n,
                None => return Ok(count),
            }
        }
    }

    /// Answers many `[lo, hi]` key ranges in one shared sweep of the
    /// leaf chain; see [`crate::BPlusTree::range_scan_batch`] for the
    /// full contract (this is that code, generic over the page
    /// source).
    pub fn range_scan_batch(
        &self,
        ranges: &[(Key128, Key128)],
        mut f: impl FnMut(usize, Key128, &Value),
    ) -> StorageResult<usize> {
        /// What the per-leaf visit tells the sweep loop to do next.
        enum Step {
            /// All ranges exhausted (or the chain ended).
            Done,
            /// Keep walking the chain to this sibling.
            Follow(PageId),
            /// Nothing active and the next pending `lo` lies beyond
            /// this leaf's keys: try a fresh root descent to skip the
            /// gap (the sibling is the fallback when the descent
            /// lands back on the same leaf — `lo` can sit between the
            /// leaf's last key and its separator).
            Redescend(PageId),
        }

        // Process ranges in ascending-lo order without reordering
        // the caller's indices.
        let mut order: Vec<usize> = (0..ranges.len())
            .filter(|&r| ranges[r].0 <= ranges[r].1)
            .collect();
        order.sort_by_key(|&r| ranges[r]);
        let mut next = 0usize; // next entry of `order` to activate
        let mut active: Vec<usize> = Vec::new();
        let mut count = 0usize;
        if order.is_empty() {
            return Ok(0);
        }
        let mut pid = self.descend_to_leaf(ranges[order[0]].0)?;
        loop {
            let step = self.pages.read_page(pid, |buf| -> StorageResult<Step> {
                let v = LeafView::parse(buf)?;
                let mut slot = if active.is_empty() {
                    v.lower_bound(ranges[order[next]].0)
                } else {
                    0
                };
                'slots: while slot < v.count() {
                    let k = v.key_at(slot);
                    while next < order.len() && ranges[order[next]].0 <= k {
                        active.push(order[next]);
                        next += 1;
                    }
                    active.retain(|&r| ranges[r].1 >= k);
                    if active.is_empty() {
                        // Jump to the next pending range — within
                        // this leaf when possible.
                        let Some(&r) = order.get(next) else {
                            return Ok(Step::Done);
                        };
                        let jump = v.lower_bound(ranges[r].0);
                        debug_assert!(jump > slot, "pending lo is past k");
                        slot = jump;
                        if slot >= v.count() {
                            break 'slots;
                        }
                        continue;
                    }
                    let value = v.value_at(slot);
                    for &r in &active {
                        f(r, k, value);
                    }
                    count += active.len();
                    slot += 1;
                }
                let sibling = v.next();
                if !sibling.is_valid() || (active.is_empty() && next >= order.len()) {
                    return Ok(Step::Done);
                }
                if active.is_empty() {
                    // Don't chain through an uncovered gap.
                    return Ok(Step::Redescend(sibling));
                }
                Ok(Step::Follow(sibling))
            })??;
            match step {
                Step::Done => return Ok(count),
                Step::Follow(sibling) => pid = sibling,
                Step::Redescend(sibling) => {
                    let target = self.descend_to_leaf(ranges[order[next]].0)?;
                    pid = if target == pid { sibling } else { target };
                }
            }
        }
    }
}

/// A point-in-time, read-only handle on a [`crate::BPlusTree`]: the
/// root handle as of one committed epoch plus a [`PageSnapshot`]
/// serving that epoch's pages. Queries run against it with no
/// coordination with — and no visibility into — writers mutating the
/// live tree. Safe to share across reader threads.
pub struct BPlusTreeSnapshot {
    pages: PageSnapshot,
    root: PageId,
    height: u8,
    len: usize,
}

impl BPlusTreeSnapshot {
    pub(crate) fn new(pages: PageSnapshot, root: PageId, height: u8, len: usize) -> Self {
        BPlusTreeSnapshot {
            pages,
            root,
            height,
            len,
        }
    }

    /// The committed pool epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.pages.epoch()
    }

    /// Number of keys stored (as of the snapshot).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored (as of the snapshot).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn view(&self) -> ReadView<'_, PageSnapshot> {
        ReadView {
            pages: &self.pages,
            root: self.root,
            height: self.height,
        }
    }

    /// Returns the value stored for `key` as of the snapshot, if any.
    pub fn get(&self, key: Key128) -> StorageResult<Option<Value>> {
        self.view().get(key)
    }

    /// Visits every `(key, value)` with `lo <= key <= hi` in key
    /// order, as of the snapshot. Returns the number visited.
    pub fn range_scan(
        &self,
        lo: Key128,
        hi: Key128,
        f: impl FnMut(Key128, &Value),
    ) -> StorageResult<usize> {
        self.view().range_scan(lo, hi, f)
    }

    /// Answers many key ranges in one shared leaf-chain sweep, as of
    /// the snapshot; contract as [`crate::BPlusTree::range_scan_batch`].
    pub fn range_scan_batch(
        &self,
        ranges: &[(Key128, Key128)],
        f: impl FnMut(usize, Key128, &Value),
    ) -> StorageResult<usize> {
        self.view().range_scan_batch(ranges, f)
    }
}
