//! # vp-bptree — a paged B+-tree
//!
//! The disk-resident B+-tree underneath the Bx-tree (`vp-bx`). Keys are
//! 128-bit composites ([`Key128`]) — the Bx-tree packs
//! `(time-bucket ‖ space-filling-curve value, object id)` into them so
//! that objects sharing a grid cell coexist without duplicate-key
//! machinery. Values are fixed-size byte records ([`VALUE_LEN`] bytes),
//! large enough for the Bx-tree's `(position, velocity, ref time)`
//! payload.
//!
//! Features: recursive insert with node splits, full deletion with
//! sibling borrowing and merging, point lookups, and ordered range
//! scans over the leaf chain. All node accesses go through the shared
//! `vp-storage` buffer pool and are attributed to the tree's own I/O
//! counters, matching the accounting discipline of the other indexes.
//!
//! The hot path never decodes a node: point ops and scans run over
//! zero-copy page views ([`node::LeafView`], [`node::InternalView`]
//! and their `Mut` variants), and two batched entry points —
//! [`BPlusTree::bulk_load`] and [`BPlusTree::apply_batch`] — amortize
//! descents and page writes across sorted runs of keys.

pub mod node;
pub mod tree;
pub mod view;

pub use node::{InternalView, InternalViewMut, Key128, LeafView, LeafViewMut, Value, VALUE_LEN};
pub use tree::{BPlusTree, BatchOp, BatchOutcome};
pub use view::BPlusTreeSnapshot;
