//! The paged B+-tree.

use std::cell::Cell;
use std::sync::Arc;

use vp_storage::{BufferPool, IoStats, PageId, StorageError, StorageResult};

use crate::node::{BLayout, BNode, Key128, Value};

/// A disk-paged B+-tree with 128-bit keys and fixed-size values.
///
/// Like every index in this workspace it shares a buffer pool and
/// tracks its own attributable I/O via pool-stat deltas.
pub struct BPlusTree {
    pool: Arc<BufferPool>,
    layout: BLayout,
    root: PageId,
    /// Levels in the tree; the root is at `height - 1`, leaves at 0.
    height: u8,
    len: usize,
    own: Cell<IoStats>,
}

enum InsOutcome {
    Fit,
    Split { sep: Key128, right: PageId },
}

impl BPlusTree {
    /// Creates an empty tree (a single empty leaf root).
    pub fn new(pool: Arc<BufferPool>) -> StorageResult<BPlusTree> {
        let layout = BLayout::for_page_size(pool.page_size());
        let root = pool.new_page()?;
        let tree = BPlusTree {
            pool,
            layout,
            root,
            height: 1,
            len: 0,
            own: Cell::new(IoStats::zero()),
        };
        tree.write_node(tree.root, &BNode::empty_leaf())?;
        Ok(tree)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// I/O attributable to this tree.
    pub fn io_stats(&self) -> IoStats {
        self.own.get()
    }

    /// Resets the attributable I/O counters.
    pub fn reset_io_stats(&self) {
        self.own.set(IoStats::zero());
    }

    // ----- page helpers -------------------------------------------------

    fn read_node(&self, pid: PageId) -> StorageResult<BNode> {
        self.pool.with_page(pid, BNode::decode)?
    }

    fn write_node(&self, pid: PageId, node: &BNode) -> StorageResult<()> {
        self.pool.with_page_mut(pid, |buf| node.encode(buf))?
    }

    fn alloc_node(&self, node: &BNode) -> StorageResult<PageId> {
        let pid = self.pool.new_page()?;
        self.write_node(pid, node)?;
        Ok(pid)
    }

    fn track<R>(&self, f: impl FnOnce(&Self) -> StorageResult<R>) -> StorageResult<R> {
        let before = self.pool.stats();
        let out = f(self);
        let delta = self.pool.stats().delta(&before);
        self.own.set(self.own.get() + delta);
        out
    }

    fn track_mut<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> StorageResult<R>,
    ) -> StorageResult<R> {
        let before = self.pool.stats();
        let out = f(self);
        let delta = self.pool.stats().delta(&before);
        self.own.set(self.own.get() + delta);
        out
    }

    // ----- lookup -------------------------------------------------------

    /// Returns the value stored for `key`, if any.
    pub fn get(&self, key: Key128) -> StorageResult<Option<Value>> {
        self.track(|t| {
            let mut pid = t.root;
            loop {
                match t.read_node(pid)? {
                    BNode::Leaf { keys, values, .. } => {
                        return Ok(keys
                            .binary_search(&key)
                            .ok()
                            .map(|i| values[i]));
                    }
                    BNode::Internal { keys, children, .. } => {
                        let idx = keys.partition_point(|k| *k <= key);
                        pid = children[idx];
                    }
                }
            }
        })
    }

    // ----- insert -------------------------------------------------------

    /// Inserts `key -> value`. Returns `true` when the key was new,
    /// `false` when an existing value was overwritten.
    pub fn insert(&mut self, key: Key128, value: Value) -> StorageResult<bool> {
        self.track_mut(|t| {
            let (new, outcome) = t.insert_rec(t.root, key, value)?;
            if let InsOutcome::Split { sep, right } = outcome {
                let new_root = BNode::Internal {
                    level: t.height,
                    keys: vec![sep],
                    children: vec![t.root, right],
                };
                t.root = t.alloc_node(&new_root)?;
                t.height += 1;
            }
            if new {
                t.len += 1;
            }
            Ok(new)
        })
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        key: Key128,
        value: Value,
    ) -> StorageResult<(bool, InsOutcome)> {
        match self.read_node(pid)? {
            BNode::Leaf {
                next,
                mut keys,
                mut values,
            } => {
                let new = match keys.binary_search(&key) {
                    Ok(i) => {
                        values[i] = value;
                        false
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        true
                    }
                };
                if keys.len() <= self.layout.max_leaf {
                    self.write_node(pid, &BNode::Leaf { next, keys, values })?;
                    return Ok((new, InsOutcome::Fit));
                }
                // Split the leaf in half; the separator is the first key
                // of the right node.
                let h = keys.len() / 2;
                let right_keys = keys.split_off(h);
                let right_values = values.split_off(h);
                let sep = right_keys[0];
                let right = BNode::Leaf {
                    next,
                    keys: right_keys,
                    values: right_values,
                };
                let right_pid = self.alloc_node(&right)?;
                self.write_node(
                    pid,
                    &BNode::Leaf {
                        next: right_pid,
                        keys,
                        values,
                    },
                )?;
                Ok((
                    new,
                    InsOutcome::Split {
                        sep,
                        right: right_pid,
                    },
                ))
            }
            BNode::Internal {
                level,
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| *k <= key);
                let (new, outcome) = self.insert_rec(children[idx], key, value)?;
                if let InsOutcome::Split { sep, right } = outcome {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                if keys.len() <= self.layout.max_internal {
                    self.write_node(
                        pid,
                        &BNode::Internal {
                            level,
                            keys,
                            children,
                        },
                    )?;
                    return Ok((new, InsOutcome::Fit));
                }
                // Split the internal node: the middle key moves up.
                let m = keys.len() / 2;
                let sep_up = keys[m];
                let right_keys = keys.split_off(m + 1);
                keys.pop(); // drop sep_up from the left node
                let right_children = children.split_off(m + 1);
                let right = BNode::Internal {
                    level,
                    keys: right_keys,
                    children: right_children,
                };
                let right_pid = self.alloc_node(&right)?;
                self.write_node(
                    pid,
                    &BNode::Internal {
                        level,
                        keys,
                        children,
                    },
                )?;
                Ok((
                    new,
                    InsOutcome::Split {
                        sep: sep_up,
                        right: right_pid,
                    },
                ))
            }
        }
    }

    // ----- delete -------------------------------------------------------

    /// Deletes `key`. Returns `true` when it was present.
    pub fn delete(&mut self, key: Key128) -> StorageResult<bool> {
        self.track_mut(|t| {
            let (found, _underflow) = t.delete_rec(t.root, key)?;
            if found {
                t.len -= 1;
            }
            // Collapse a root that lost all separators.
            loop {
                match t.read_node(t.root)? {
                    BNode::Internal { keys, children, .. } if keys.is_empty() => {
                        let old = t.root;
                        t.root = children[0];
                        t.height -= 1;
                        t.pool.free_page(old)?;
                    }
                    _ => break,
                }
            }
            Ok(found)
        })
    }

    fn delete_rec(&mut self, pid: PageId, key: Key128) -> StorageResult<(bool, bool)> {
        match self.read_node(pid)? {
            BNode::Leaf {
                next,
                mut keys,
                mut values,
            } => {
                let Ok(i) = keys.binary_search(&key) else {
                    return Ok((false, false));
                };
                keys.remove(i);
                values.remove(i);
                let underflow = pid != self.root && keys.len() < self.layout.min_leaf;
                self.write_node(pid, &BNode::Leaf { next, keys, values })?;
                Ok((true, underflow))
            }
            BNode::Internal {
                level,
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| *k <= key);
                let (found, child_underflow) = self.delete_rec(children[idx], key)?;
                if !found {
                    return Ok((false, false));
                }
                if child_underflow {
                    self.rebalance_child(&mut keys, &mut children, idx)?;
                }
                let underflow = pid != self.root && keys.len() < self.layout.min_internal;
                self.write_node(
                    pid,
                    &BNode::Internal {
                        level,
                        keys,
                        children,
                    },
                )?;
                Ok((true, underflow))
            }
        }
    }

    /// Restores the minimum occupancy of `children[idx]` by borrowing
    /// from a sibling or merging with one, adjusting the separators.
    fn rebalance_child(
        &mut self,
        keys: &mut Vec<Key128>,
        children: &mut Vec<PageId>,
        idx: usize,
    ) -> StorageResult<()> {
        let child = self.read_node(children[idx])?;
        // Try the left sibling first, then the right.
        if idx > 0 {
            let left = self.read_node(children[idx - 1])?;
            if self.can_lend(&left) {
                self.borrow_from_left(keys, children, idx, left, child)?;
                return Ok(());
            }
        }
        if idx + 1 < children.len() {
            let right = self.read_node(children[idx + 1])?;
            if self.can_lend(&right) {
                self.borrow_from_right(keys, children, idx, child, right)?;
                return Ok(());
            }
        }
        // Merge with a sibling (prefer left).
        if idx > 0 {
            let left = self.read_node(children[idx - 1])?;
            self.merge(keys, children, idx - 1, left, child)
        } else {
            let right = self.read_node(children[idx + 1])?;
            self.merge(keys, children, idx, child, right)
        }
    }

    fn can_lend(&self, node: &BNode) -> bool {
        match node {
            BNode::Leaf { keys, .. } => keys.len() > self.layout.min_leaf,
            BNode::Internal { keys, .. } => keys.len() > self.layout.min_internal,
        }
    }

    fn borrow_from_left(
        &mut self,
        keys: &mut [Key128],
        children: &[PageId],
        idx: usize,
        left: BNode,
        child: BNode,
    ) -> StorageResult<()> {
        match (left, child) {
            (
                BNode::Leaf {
                    next: lnext,
                    keys: mut lk,
                    values: mut lv,
                },
                BNode::Leaf {
                    next: cnext,
                    keys: mut ck,
                    values: mut cv,
                },
            ) => {
                let k = lk.pop().expect("lender is non-empty");
                let v = lv.pop().expect("lender is non-empty");
                ck.insert(0, k);
                cv.insert(0, v);
                keys[idx - 1] = ck[0];
                self.write_node(
                    children[idx - 1],
                    &BNode::Leaf {
                        next: lnext,
                        keys: lk,
                        values: lv,
                    },
                )?;
                self.write_node(
                    children[idx],
                    &BNode::Leaf {
                        next: cnext,
                        keys: ck,
                        values: cv,
                    },
                )
            }
            (
                BNode::Internal {
                    level,
                    keys: mut lk,
                    children: mut lc,
                },
                BNode::Internal {
                    keys: mut ck,
                    children: mut cc,
                    ..
                },
            ) => {
                // Rotate through the parent separator.
                ck.insert(0, keys[idx - 1]);
                keys[idx - 1] = lk.pop().expect("lender is non-empty");
                cc.insert(0, lc.pop().expect("lender has children"));
                self.write_node(
                    children[idx - 1],
                    &BNode::Internal {
                        level,
                        keys: lk,
                        children: lc,
                    },
                )?;
                self.write_node(
                    children[idx],
                    &BNode::Internal {
                        level,
                        keys: ck,
                        children: cc,
                    },
                )
            }
            _ => Err(StorageError::Corrupt(
                "sibling level mismatch during borrow".into(),
            )),
        }
    }

    fn borrow_from_right(
        &mut self,
        keys: &mut [Key128],
        children: &[PageId],
        idx: usize,
        child: BNode,
        right: BNode,
    ) -> StorageResult<()> {
        match (child, right) {
            (
                BNode::Leaf {
                    next: cnext,
                    keys: mut ck,
                    values: mut cv,
                },
                BNode::Leaf {
                    next: rnext,
                    keys: mut rk,
                    values: mut rv,
                },
            ) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                keys[idx] = rk[0];
                self.write_node(
                    children[idx],
                    &BNode::Leaf {
                        next: cnext,
                        keys: ck,
                        values: cv,
                    },
                )?;
                self.write_node(
                    children[idx + 1],
                    &BNode::Leaf {
                        next: rnext,
                        keys: rk,
                        values: rv,
                    },
                )
            }
            (
                BNode::Internal {
                    level,
                    keys: mut ck,
                    children: mut cc,
                },
                BNode::Internal {
                    keys: mut rk,
                    children: mut rc,
                    ..
                },
            ) => {
                ck.push(keys[idx]);
                keys[idx] = rk.remove(0);
                cc.push(rc.remove(0));
                self.write_node(
                    children[idx],
                    &BNode::Internal {
                        level,
                        keys: ck,
                        children: cc,
                    },
                )?;
                self.write_node(
                    children[idx + 1],
                    &BNode::Internal {
                        level,
                        keys: rk,
                        children: rc,
                    },
                )
            }
            _ => Err(StorageError::Corrupt(
                "sibling level mismatch during borrow".into(),
            )),
        }
    }

    /// Merges `children[at + 1]` into `children[at]`, dropping the
    /// separator `keys[at]`.
    fn merge(
        &mut self,
        keys: &mut Vec<Key128>,
        children: &mut Vec<PageId>,
        at: usize,
        left: BNode,
        right: BNode,
    ) -> StorageResult<()> {
        match (left, right) {
            (
                BNode::Leaf {
                    keys: mut lk,
                    values: mut lv,
                    ..
                },
                BNode::Leaf {
                    next: rnext,
                    keys: rk,
                    values: rv,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
                self.write_node(
                    children[at],
                    &BNode::Leaf {
                        next: rnext,
                        keys: lk,
                        values: lv,
                    },
                )?;
            }
            (
                BNode::Internal {
                    level,
                    keys: mut lk,
                    children: mut lc,
                },
                BNode::Internal {
                    keys: rk,
                    children: rc,
                    ..
                },
            ) => {
                lk.push(keys[at]);
                lk.extend(rk);
                lc.extend(rc);
                self.write_node(
                    children[at],
                    &BNode::Internal {
                        level,
                        keys: lk,
                        children: lc,
                    },
                )?;
            }
            _ => {
                return Err(StorageError::Corrupt(
                    "sibling level mismatch during merge".into(),
                ))
            }
        }
        self.pool.free_page(children[at + 1])?;
        keys.remove(at);
        children.remove(at + 1);
        Ok(())
    }

    /// Exhaustively validates the B+-tree's structural invariants;
    /// returns a human-readable violation description on failure.
    /// Intended for tests and debugging (visits every page).
    ///
    /// Checked invariants:
    /// * keys strictly ordered within nodes and across the leaf chain;
    /// * every subtree's keys respect the parent separator bounds;
    /// * occupancy limits for non-root nodes;
    /// * uniform leaf depth;
    /// * leaf chain visits exactly the tree's key count in order.
    pub fn check_invariants(&self) -> StorageResult<Result<(), String>> {
        // Recursive structural walk with key-range bounds.
        fn walk(
            t: &BPlusTree,
            pid: PageId,
            depth: u8,
            lo: Option<Key128>,
            hi: Option<Key128>,
            leaf_depth: &mut Option<u8>,
            count: &mut usize,
        ) -> StorageResult<Result<(), String>> {
            let node = t.read_node(pid)?;
            let is_root = pid == t.root;
            match node {
                BNode::Leaf { keys, values, .. } => {
                    if keys.len() != values.len() {
                        return Ok(Err(format!("leaf {pid}: key/value arity mismatch")));
                    }
                    if !is_root && keys.len() < t.layout.min_leaf {
                        return Ok(Err(format!("leaf {pid} underfull: {}", keys.len())));
                    }
                    if keys.len() > t.layout.max_leaf {
                        return Ok(Err(format!("leaf {pid} overfull: {}", keys.len())));
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) if *d != depth => {
                            return Ok(Err(format!(
                                "leaf {pid} at depth {depth}, expected {d}"
                            )))
                        }
                        _ => {}
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Ok(Err(format!("leaf {pid}: keys out of order")));
                        }
                    }
                    if let Some(lo) = lo {
                        if keys.first().is_some_and(|k| *k < lo) {
                            return Ok(Err(format!("leaf {pid}: key below separator")));
                        }
                    }
                    if let Some(hi) = hi {
                        if keys.last().is_some_and(|k| *k >= hi) {
                            return Ok(Err(format!("leaf {pid}: key above separator")));
                        }
                    }
                    *count += keys.len();
                }
                BNode::Internal { keys, children, .. } => {
                    if children.len() != keys.len() + 1 {
                        return Ok(Err(format!("internal {pid}: arity mismatch")));
                    }
                    if !is_root && keys.len() < t.layout.min_internal {
                        return Ok(Err(format!("internal {pid} underfull")));
                    }
                    if keys.len() > t.layout.max_internal {
                        return Ok(Err(format!("internal {pid} overfull")));
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Ok(Err(format!("internal {pid}: separators out of order")));
                        }
                    }
                    for (i, &child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                        match walk(t, child, depth + 1, clo, chi, leaf_depth, count)? {
                            Ok(()) => {}
                            Err(e) => return Ok(Err(e)),
                        }
                    }
                }
            }
            Ok(Ok(()))
        }

        let mut leaf_depth = None;
        let mut count = 0usize;
        match walk(self, self.root, 0, None, None, &mut leaf_depth, &mut count)? {
            Ok(()) => {}
            Err(e) => return Ok(Err(e)),
        }
        if count != self.len {
            return Ok(Err(format!(
                "structural count {count} != len {}",
                self.len
            )));
        }
        // Leaf chain: ordered, complete.
        let mut chained = 0usize;
        let mut prev: Option<Key128> = None;
        let n = self.range_scan(Key128::MIN, Key128::MAX, |k, _| {
            if let Some(p) = prev {
                debug_assert!(p < k);
            }
            prev = Some(k);
            chained += 1;
        })?;
        if n != self.len {
            return Ok(Err(format!("leaf chain visits {n}, len {}", self.len)));
        }
        Ok(Ok(()))
    }

    // ----- scans ----------------------------------------------------------

    /// Visits every `(key, value)` with `lo <= key <= hi` in key order.
    /// Returns the number of entries visited.
    pub fn range_scan(
        &self,
        lo: Key128,
        hi: Key128,
        mut f: impl FnMut(Key128, &Value),
    ) -> StorageResult<usize> {
        self.track(|t| {
            if hi < lo {
                return Ok(0);
            }
            // Descend to the leaf that would contain `lo`.
            let mut pid = t.root;
            while let BNode::Internal { keys, children, .. } = t.read_node(pid)? {
                let idx = keys.partition_point(|k| *k <= lo);
                pid = children[idx];
            }
            let mut count = 0usize;
            loop {
                let BNode::Leaf { next, keys, values } = t.read_node(pid)? else {
                    return Err(StorageError::Corrupt("leaf chain hit internal node".into()));
                };
                let start = keys.partition_point(|k| *k < lo);
                for i in start..keys.len() {
                    if keys[i] > hi {
                        return Ok(count);
                    }
                    f(keys[i], &values[i]);
                    count += 1;
                }
                if !next.is_valid() {
                    return Ok(count);
                }
                pid = next;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vp_storage::DiskManager;

    fn pool(page: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(page),
            64,
        ))
    }

    fn val(n: u64) -> Value {
        let mut v = [0u8; crate::VALUE_LEN];
        v[..8].copy_from_slice(&n.to_le_bytes());
        v
    }

    fn key(n: u64) -> Key128 {
        Key128::new(n / 7, n)
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        assert!(t.is_empty());
        for i in 0..10u64 {
            assert!(t.insert(key(i), val(i)).unwrap());
        }
        assert_eq!(t.len(), 10);
        for i in 0..10u64 {
            assert_eq!(t.get(key(i)).unwrap(), Some(val(i)));
        }
        assert_eq!(t.get(key(99)).unwrap(), None);
    }

    #[test]
    fn overwrite_returns_false() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        assert!(t.insert(key(1), val(1)).unwrap());
        assert!(!t.insert(key(1), val(2)).unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(key(1)).unwrap(), Some(val(2)));
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let n = 2000u64;
        for i in 0..n {
            t.insert(key(i), val(i)).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.height() >= 3, "tree should be deep, got {}", t.height());
        for i in (0..n).step_by(37) {
            assert_eq!(t.get(key(i)).unwrap(), Some(val(i)));
        }
    }

    #[test]
    fn range_scan_matches_btreemap() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0xCAFE);
        for _ in 0..1500 {
            let k = rng.next() % 10_000;
            t.insert(key(k), val(k)).unwrap();
            reference.insert(key(k), val(k));
        }
        for _ in 0..50 {
            let a = rng.next() % 10_000;
            let b = rng.next() % 10_000;
            let (lo, hi) = (key(a.min(b)), key(a.max(b)));
            let mut got = Vec::new();
            t.range_scan(lo, hi, |k, v| got.push((k, *v))).unwrap();
            let want: Vec<(Key128, Value)> =
                reference.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn full_range_scan_is_ordered() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut rng = Rng(0x5150);
        for _ in 0..800 {
            let k = rng.next() % 100_000;
            t.insert(key(k), val(k)).unwrap();
        }
        let mut prev: Option<Key128> = None;
        let n = t
            .range_scan(Key128::MIN, Key128::MAX, |k, _| {
                if let Some(p) = prev {
                    assert!(p < k, "scan out of order");
                }
                prev = Some(k);
            })
            .unwrap();
        assert_eq!(n, t.len());
    }

    #[test]
    fn delete_random_matches_btreemap() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0xBEEF);
        for _ in 0..1200 {
            let k = rng.next() % 3_000;
            t.insert(key(k), val(k)).unwrap();
            reference.insert(key(k), val(k));
        }
        // Delete half at random.
        let all: Vec<u64> = (0..3_000).collect();
        for &k in all.iter().filter(|k| *k % 2 == 0) {
            let got = t.delete(key(k)).unwrap();
            let want = reference.remove(&key(k)).is_some();
            assert_eq!(got, want, "delete {k}");
        }
        assert_eq!(t.len(), reference.len());
        for (&k, v) in &reference {
            assert_eq!(t.get(k).unwrap().as_ref(), Some(v));
        }
        // Scan still consistent.
        let mut got = Vec::new();
        t.range_scan(Key128::MIN, Key128::MAX, |k, v| got.push((k, *v)))
            .unwrap();
        let want: Vec<(Key128, Value)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_everything_then_reuse() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        for i in 0..500u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        for i in 0..500u64 {
            assert!(t.delete(key(i)).unwrap());
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree should collapse to a single leaf");
        t.check_invariants().unwrap().expect("empty tree is valid");
        assert!(!t.delete(key(0)).unwrap());
        // Reusable after emptying.
        for i in 0..100u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn mixed_operations_fuzz() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0x1DEA);
        for step in 0..5000 {
            let k = rng.next() % 2_000;
            match rng.next() % 3 {
                0 => {
                    let got = t.insert(key(k), val(step)).unwrap();
                    let want = reference.insert(key(k), val(step)).is_none();
                    assert_eq!(got, want);
                }
                1 => {
                    let got = t.delete(key(k)).unwrap();
                    let want = reference.remove(&key(k)).is_some();
                    assert_eq!(got, want);
                }
                _ => {
                    assert_eq!(
                        t.get(key(k)).unwrap(),
                        reference.get(&key(k)).copied(),
                        "get {k} at step {step}"
                    );
                }
            }
            assert_eq!(t.len(), reference.len());
            if step % 500 == 0 {
                t.check_invariants().unwrap().expect("invariants hold mid-fuzz");
            }
        }
        t.check_invariants().unwrap().expect("invariants hold at end");
    }

    #[test]
    fn io_stats_attributed() {
        let mut t = BPlusTree::new(pool(4096)).unwrap();
        t.reset_io_stats();
        for i in 0..200u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        assert!(t.io_stats().logical_reads > 0);
        t.reset_io_stats();
        assert_eq!(t.io_stats(), IoStats::zero());
    }

    #[test]
    fn empty_scan_ranges() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        t.insert(key(5), val(5)).unwrap();
        let n = t
            .range_scan(key(10), key(2), |_, _| panic!("nothing in range"))
            .unwrap();
        assert_eq!(n, 0);
        let n = t.range_scan(key(6), key(9), |_, _| {}).unwrap();
        assert_eq!(n, 0);
    }
}
