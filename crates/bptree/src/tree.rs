//! The paged B+-tree.
//!
//! ## Hot path: zero-copy page operations
//!
//! Point lookups, fitting inserts, non-underflowing deletes, range
//! scans, and [`BPlusTree::apply_batch`] all operate **in place on the
//! encoded pages** through the [`crate::node`] views: descent binary
//! searches `InternalView`s, and leaf edits are memmoves inside a
//! [`LeafViewMut`]. No `Vec` materialization, no whole-page re-encode.
//! Only structural surgery — splits, merges, sibling borrowing — falls
//! back to the decoded [`BNode`] machinery, which is the rare case by
//! design (a fraction `1/fanout` of operations).
//!
//! ## Batched maintenance
//!
//! Moving-object workloads hit the tree with sorted runs of co-located
//! keys (delete-old/insert-new pairs from one tick). Two entry points
//! exploit that:
//!
//! * [`BPlusTree::bulk_load`] builds a tree from a sorted stream,
//!   packing leaves left-to-right and stacking internal levels without
//!   any per-key root descent.
//! * [`BPlusTree::apply_batch`] applies a sorted op run with one
//!   descent *per leaf* instead of per key, and one page write per
//!   touched leaf.

use std::sync::Arc;

use vp_storage::{AtomicIoStats, BufferPool, IoStats, PageId, StorageError, StorageResult};

use crate::node::{BLayout, BNode, Key128, LeafViewMut, Value};
use crate::view::{BPlusTreeSnapshot, ReadView};

/// A disk-paged B+-tree with 128-bit keys and fixed-size values.
///
/// Like every index in this workspace it shares a buffer pool and
/// tracks its own attributable I/O via thread-local stat deltas.
pub struct BPlusTree {
    pool: Arc<BufferPool>,
    layout: BLayout,
    root: PageId,
    /// Levels in the tree; the root is at `height - 1`, leaves at 0.
    height: u8,
    len: usize,
    /// I/O attributable to this tree, tracked as thread-local
    /// ([`vp_storage::thread_io`]) deltas around each operation —
    /// exact even when other trees hammer the same pool from other
    /// threads, since each operation runs on exactly one thread.
    /// Atomic so a shared handle stays `Sync`.
    own: AtomicIoStats,
}

enum InsOutcome {
    Fit,
    Split { sep: Key128, right: PageId },
}

/// One operation of a sorted batch handed to [`BPlusTree::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert the value, or overwrite the existing one (upsert).
    Put(Value),
    /// Remove the key if present.
    Delete,
}

/// Tallies of what [`BPlusTree::apply_batch`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Keys newly inserted by `Put`.
    pub inserted: usize,
    /// Keys whose existing value a `Put` overwrote.
    pub replaced: usize,
    /// Keys removed by `Delete`.
    pub deleted: usize,
    /// `Delete`s whose key was absent.
    pub missing: usize,
}

impl BPlusTree {
    /// Creates an empty tree (a single empty leaf root).
    pub fn new(pool: Arc<BufferPool>) -> StorageResult<BPlusTree> {
        let layout = BLayout::for_page_size(pool.page_size());
        let root = pool.new_page()?;
        let tree = BPlusTree {
            pool,
            layout,
            root,
            height: 1,
            len: 0,
            own: AtomicIoStats::zero(),
        };
        tree.write_node(tree.root, &BNode::empty_leaf())?;
        Ok(tree)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// I/O attributable to this tree.
    pub fn io_stats(&self) -> IoStats {
        self.own.snapshot()
    }

    /// Resets the attributable I/O counters.
    pub fn reset_io_stats(&self) {
        self.own.reset();
    }

    /// Forces every page of this tree to a durable, self-consistent
    /// on-disk state: flushes the shared pool's dirty shards and syncs
    /// the disk ([`BufferPool::checkpoint`]). Note the pool is shared,
    /// so this checkpoints co-resident trees too — exactly what the VP
    /// manager's checkpoint wants.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.pool.checkpoint()
    }

    // ----- page helpers -------------------------------------------------

    fn read_node(&self, pid: PageId) -> StorageResult<BNode> {
        self.pool.with_page(pid, BNode::decode)?
    }

    fn write_node(&self, pid: PageId, node: &BNode) -> StorageResult<()> {
        self.pool.with_page_mut(pid, |buf| node.encode(buf))?
    }

    fn alloc_node(&self, node: &BNode) -> StorageResult<PageId> {
        let pid = self.pool.new_page()?;
        self.write_node(pid, node)?;
        Ok(pid)
    }

    fn track<R>(&self, f: impl FnOnce(&Self) -> StorageResult<R>) -> StorageResult<R> {
        let before = vp_storage::thread_io::snapshot();
        let out = f(self);
        self.own
            .add(vp_storage::thread_io::snapshot().delta(&before));
        out
    }

    fn track_mut<R>(&mut self, f: impl FnOnce(&mut Self) -> StorageResult<R>) -> StorageResult<R> {
        let before = vp_storage::thread_io::snapshot();
        let out = f(self);
        self.own
            .add(vp_storage::thread_io::snapshot().delta(&before));
        out
    }

    // ----- descent ------------------------------------------------------

    /// The tree's read machinery bound to the live pool (see
    /// [`ReadView`] — snapshots bind the same code to a
    /// [`vp_storage::PageSnapshot`]).
    fn view(&self) -> ReadView<'_, BufferPool> {
        ReadView {
            pages: &*self.pool,
            root: self.root,
            height: self.height,
        }
    }

    /// Walks from the root to the leaf owning `key` via zero-copy
    /// `InternalView` binary searches.
    fn descend_to_leaf(&self, key: Key128) -> StorageResult<PageId> {
        self.view().descend_to_leaf(key)
    }

    // ----- lookup -------------------------------------------------------

    /// Returns the value stored for `key`, if any. Zero-copy: the
    /// descent and the leaf probe never decode a node.
    pub fn get(&self, key: Key128) -> StorageResult<Option<Value>> {
        self.track(|t| t.view().get(key))
    }

    // ----- snapshots ----------------------------------------------------

    /// Takes a lock-free point-in-time read handle on the tree,
    /// switching the shared pool into versioned mode on first use.
    ///
    /// Publishes any still-uncommitted writes as a fresh committed
    /// epoch first (the caller holds `&self`, so no write is in
    /// flight), then pins that epoch. The snapshot serves
    /// [`BPlusTreeSnapshot::get`] / range scans against the pinned
    /// state no matter how the live tree is mutated — or committed —
    /// afterwards.
    pub fn snapshot(&self) -> BPlusTreeSnapshot {
        self.pool.enable_versioning();
        self.pool.commit_epoch();
        BPlusTreeSnapshot::new(self.pool.page_snapshot(), self.root, self.height, self.len)
    }

    /// Publishes everything written so far as the next committed pool
    /// epoch, making it visible to snapshots taken from now on and
    /// letting the pool reclaim versions only departed readers pinned.
    /// No-op until the pool is switched into versioned mode by the
    /// first [`BPlusTree::snapshot`] call.
    pub fn publish_epoch(&self) {
        if self.pool.is_versioned() {
            self.pool.commit_epoch();
        }
    }

    // ----- insert -------------------------------------------------------

    /// Inserts `key -> value`. Returns `true` when the key was new,
    /// `false` when an existing value was overwritten.
    ///
    /// Fast path: when the target leaf has room, the entry is
    /// memmove-inserted (or the value overwritten) in place via
    /// [`LeafViewMut`] — one page write, no node decode. A full leaf
    /// falls back to the decoded split machinery.
    pub fn insert(&mut self, key: Key128, value: Value) -> StorageResult<bool> {
        self.track_mut(|t| t.insert_untracked(key, value))
    }

    fn insert_untracked(&mut self, key: Key128, value: Value) -> StorageResult<bool> {
        let leaf = self.descend_to_leaf(key)?;
        let max_leaf = self.layout.max_leaf;
        let fast = self
            .pool
            .with_page_probe_mut(leaf, |buf| -> (StorageResult<_>, bool) {
                let mut v = match LeafViewMut::parse(buf) {
                    Ok(v) => v,
                    Err(e) => return (Err(e), false),
                };
                match v.search(key) {
                    Ok(i) => {
                        v.set_value_at(i, &value);
                        (Ok(Some(false)), true)
                    }
                    Err(i) if v.count() < max_leaf => {
                        v.insert_at(i, key, &value);
                        (Ok(Some(true)), true)
                    }
                    Err(_) => (Ok(None), false), // full: needs a split
                }
            })??;
        let new = match fast {
            Some(new) => new,
            None => self.insert_slow(key, value)?,
        };
        if new {
            self.len += 1;
        }
        Ok(new)
    }

    /// The split-capable insert path (decoded nodes, root growth).
    fn insert_slow(&mut self, key: Key128, value: Value) -> StorageResult<bool> {
        let (new, outcome) = self.insert_rec(self.root, key, value)?;
        if let InsOutcome::Split { sep, right } = outcome {
            let new_root = BNode::Internal {
                level: self.height,
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.root = self.alloc_node(&new_root)?;
            self.height += 1;
        }
        Ok(new)
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        key: Key128,
        value: Value,
    ) -> StorageResult<(bool, InsOutcome)> {
        match self.read_node(pid)? {
            BNode::Leaf {
                next,
                mut keys,
                mut values,
            } => {
                let new = match keys.binary_search(&key) {
                    Ok(i) => {
                        values[i] = value;
                        false
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        true
                    }
                };
                if keys.len() <= self.layout.max_leaf {
                    self.write_node(pid, &BNode::Leaf { next, keys, values })?;
                    return Ok((new, InsOutcome::Fit));
                }
                // Split the leaf in half; the separator is the first key
                // of the right node.
                let h = keys.len() / 2;
                let right_keys = keys.split_off(h);
                let right_values = values.split_off(h);
                let sep = right_keys[0];
                let right = BNode::Leaf {
                    next,
                    keys: right_keys,
                    values: right_values,
                };
                let right_pid = self.alloc_node(&right)?;
                self.write_node(
                    pid,
                    &BNode::Leaf {
                        next: right_pid,
                        keys,
                        values,
                    },
                )?;
                Ok((
                    new,
                    InsOutcome::Split {
                        sep,
                        right: right_pid,
                    },
                ))
            }
            BNode::Internal {
                level,
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| *k <= key);
                let (new, outcome) = self.insert_rec(children[idx], key, value)?;
                if let InsOutcome::Split { sep, right } = outcome {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                if keys.len() <= self.layout.max_internal {
                    self.write_node(
                        pid,
                        &BNode::Internal {
                            level,
                            keys,
                            children,
                        },
                    )?;
                    return Ok((new, InsOutcome::Fit));
                }
                // Split the internal node: the middle key moves up.
                let m = keys.len() / 2;
                let sep_up = keys[m];
                let right_keys = keys.split_off(m + 1);
                keys.pop(); // drop sep_up from the left node
                let right_children = children.split_off(m + 1);
                let right = BNode::Internal {
                    level,
                    keys: right_keys,
                    children: right_children,
                };
                let right_pid = self.alloc_node(&right)?;
                self.write_node(
                    pid,
                    &BNode::Internal {
                        level,
                        keys,
                        children,
                    },
                )?;
                Ok((
                    new,
                    InsOutcome::Split {
                        sep: sep_up,
                        right: right_pid,
                    },
                ))
            }
        }
    }

    // ----- delete -------------------------------------------------------

    /// Deletes `key`. Returns `true` when it was present.
    ///
    /// Fast path: when the target leaf stays at or above minimum
    /// occupancy, the entry is memmove-removed in place via
    /// [`LeafViewMut`]. Underflow falls back to the decoded
    /// borrow/merge machinery.
    pub fn delete(&mut self, key: Key128) -> StorageResult<bool> {
        self.track_mut(|t| t.delete_untracked(key))
    }

    fn delete_untracked(&mut self, key: Key128) -> StorageResult<bool> {
        let leaf = self.descend_to_leaf(key)?;
        let min_leaf = self.layout.min_leaf;
        let is_root = leaf == self.root;
        let fast = self
            .pool
            .with_page_probe_mut(leaf, |buf| -> (StorageResult<_>, bool) {
                let mut v = match LeafViewMut::parse(buf) {
                    Ok(v) => v,
                    Err(e) => return (Err(e), false),
                };
                match v.search(key) {
                    Err(_) => (Ok(Some(false)), false),
                    Ok(i) if is_root || v.count() > min_leaf => {
                        v.remove_at(i);
                        (Ok(Some(true)), true)
                    }
                    Ok(_) => (Ok(None), false), // would underflow: needs rebalancing
                }
            })??;
        let found = match fast {
            Some(found) => found,
            None => self.delete_slow(key)?,
        };
        if found {
            self.len -= 1;
        }
        Ok(found)
    }

    /// The rebalance-capable delete path (decoded nodes, root collapse).
    fn delete_slow(&mut self, key: Key128) -> StorageResult<bool> {
        let (found, _underflow) = self.delete_rec(self.root, key)?;
        // Collapse a root that lost all separators.
        loop {
            match self.read_node(self.root)? {
                BNode::Internal { keys, children, .. } if keys.is_empty() => {
                    let old = self.root;
                    self.root = children[0];
                    self.height -= 1;
                    self.pool.free_page(old)?;
                }
                _ => break,
            }
        }
        Ok(found)
    }

    fn delete_rec(&mut self, pid: PageId, key: Key128) -> StorageResult<(bool, bool)> {
        match self.read_node(pid)? {
            BNode::Leaf {
                next,
                mut keys,
                mut values,
            } => {
                let Ok(i) = keys.binary_search(&key) else {
                    return Ok((false, false));
                };
                keys.remove(i);
                values.remove(i);
                let underflow = pid != self.root && keys.len() < self.layout.min_leaf;
                self.write_node(pid, &BNode::Leaf { next, keys, values })?;
                Ok((true, underflow))
            }
            BNode::Internal {
                level,
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| *k <= key);
                let (found, child_underflow) = self.delete_rec(children[idx], key)?;
                if !found {
                    return Ok((false, false));
                }
                if child_underflow {
                    self.rebalance_child(&mut keys, &mut children, idx)?;
                }
                let underflow = pid != self.root && keys.len() < self.layout.min_internal;
                self.write_node(
                    pid,
                    &BNode::Internal {
                        level,
                        keys,
                        children,
                    },
                )?;
                Ok((true, underflow))
            }
        }
    }

    /// Restores the minimum occupancy of `children[idx]` by borrowing
    /// from a sibling or merging with one, adjusting the separators.
    fn rebalance_child(
        &mut self,
        keys: &mut Vec<Key128>,
        children: &mut Vec<PageId>,
        idx: usize,
    ) -> StorageResult<()> {
        let child = self.read_node(children[idx])?;
        // Try the left sibling first, then the right.
        if idx > 0 {
            let left = self.read_node(children[idx - 1])?;
            if self.can_lend(&left) {
                self.borrow_from_left(keys, children, idx, left, child)?;
                return Ok(());
            }
        }
        if idx + 1 < children.len() {
            let right = self.read_node(children[idx + 1])?;
            if self.can_lend(&right) {
                self.borrow_from_right(keys, children, idx, child, right)?;
                return Ok(());
            }
        }
        // Merge with a sibling (prefer left).
        if idx > 0 {
            let left = self.read_node(children[idx - 1])?;
            self.merge(keys, children, idx - 1, left, child)
        } else {
            let right = self.read_node(children[idx + 1])?;
            self.merge(keys, children, idx, child, right)
        }
    }

    fn can_lend(&self, node: &BNode) -> bool {
        match node {
            BNode::Leaf { keys, .. } => keys.len() > self.layout.min_leaf,
            BNode::Internal { keys, .. } => keys.len() > self.layout.min_internal,
        }
    }

    fn borrow_from_left(
        &mut self,
        keys: &mut [Key128],
        children: &[PageId],
        idx: usize,
        left: BNode,
        child: BNode,
    ) -> StorageResult<()> {
        match (left, child) {
            (
                BNode::Leaf {
                    next: lnext,
                    keys: mut lk,
                    values: mut lv,
                },
                BNode::Leaf {
                    next: cnext,
                    keys: mut ck,
                    values: mut cv,
                },
            ) => {
                let k = lk.pop().expect("lender is non-empty");
                let v = lv.pop().expect("lender is non-empty");
                ck.insert(0, k);
                cv.insert(0, v);
                keys[idx - 1] = ck[0];
                self.write_node(
                    children[idx - 1],
                    &BNode::Leaf {
                        next: lnext,
                        keys: lk,
                        values: lv,
                    },
                )?;
                self.write_node(
                    children[idx],
                    &BNode::Leaf {
                        next: cnext,
                        keys: ck,
                        values: cv,
                    },
                )
            }
            (
                BNode::Internal {
                    level,
                    keys: mut lk,
                    children: mut lc,
                },
                BNode::Internal {
                    keys: mut ck,
                    children: mut cc,
                    ..
                },
            ) => {
                // Rotate through the parent separator.
                ck.insert(0, keys[idx - 1]);
                keys[idx - 1] = lk.pop().expect("lender is non-empty");
                cc.insert(0, lc.pop().expect("lender has children"));
                self.write_node(
                    children[idx - 1],
                    &BNode::Internal {
                        level,
                        keys: lk,
                        children: lc,
                    },
                )?;
                self.write_node(
                    children[idx],
                    &BNode::Internal {
                        level,
                        keys: ck,
                        children: cc,
                    },
                )
            }
            _ => Err(StorageError::Corrupt(
                "sibling level mismatch during borrow".into(),
            )),
        }
    }

    fn borrow_from_right(
        &mut self,
        keys: &mut [Key128],
        children: &[PageId],
        idx: usize,
        child: BNode,
        right: BNode,
    ) -> StorageResult<()> {
        match (child, right) {
            (
                BNode::Leaf {
                    next: cnext,
                    keys: mut ck,
                    values: mut cv,
                },
                BNode::Leaf {
                    next: rnext,
                    keys: mut rk,
                    values: mut rv,
                },
            ) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                keys[idx] = rk[0];
                self.write_node(
                    children[idx],
                    &BNode::Leaf {
                        next: cnext,
                        keys: ck,
                        values: cv,
                    },
                )?;
                self.write_node(
                    children[idx + 1],
                    &BNode::Leaf {
                        next: rnext,
                        keys: rk,
                        values: rv,
                    },
                )
            }
            (
                BNode::Internal {
                    level,
                    keys: mut ck,
                    children: mut cc,
                },
                BNode::Internal {
                    keys: mut rk,
                    children: mut rc,
                    ..
                },
            ) => {
                ck.push(keys[idx]);
                keys[idx] = rk.remove(0);
                cc.push(rc.remove(0));
                self.write_node(
                    children[idx],
                    &BNode::Internal {
                        level,
                        keys: ck,
                        children: cc,
                    },
                )?;
                self.write_node(
                    children[idx + 1],
                    &BNode::Internal {
                        level,
                        keys: rk,
                        children: rc,
                    },
                )
            }
            _ => Err(StorageError::Corrupt(
                "sibling level mismatch during borrow".into(),
            )),
        }
    }

    /// Merges `children[at + 1]` into `children[at]`, dropping the
    /// separator `keys[at]`.
    fn merge(
        &mut self,
        keys: &mut Vec<Key128>,
        children: &mut Vec<PageId>,
        at: usize,
        left: BNode,
        right: BNode,
    ) -> StorageResult<()> {
        match (left, right) {
            (
                BNode::Leaf {
                    keys: mut lk,
                    values: mut lv,
                    ..
                },
                BNode::Leaf {
                    next: rnext,
                    keys: rk,
                    values: rv,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
                self.write_node(
                    children[at],
                    &BNode::Leaf {
                        next: rnext,
                        keys: lk,
                        values: lv,
                    },
                )?;
            }
            (
                BNode::Internal {
                    level,
                    keys: mut lk,
                    children: mut lc,
                },
                BNode::Internal {
                    keys: rk,
                    children: rc,
                    ..
                },
            ) => {
                lk.push(keys[at]);
                lk.extend(rk);
                lc.extend(rc);
                self.write_node(
                    children[at],
                    &BNode::Internal {
                        level,
                        keys: lk,
                        children: lc,
                    },
                )?;
            }
            _ => {
                return Err(StorageError::Corrupt(
                    "sibling level mismatch during merge".into(),
                ))
            }
        }
        self.pool.free_page(children[at + 1])?;
        keys.remove(at);
        children.remove(at + 1);
        Ok(())
    }

    /// Exhaustively validates the B+-tree's structural invariants;
    /// returns a human-readable violation description on failure.
    /// Intended for tests and debugging (visits every page).
    ///
    /// Checked invariants:
    /// * keys strictly ordered within nodes and across the leaf chain;
    /// * every subtree's keys respect the parent separator bounds;
    /// * occupancy limits for non-root nodes;
    /// * uniform leaf depth;
    /// * leaf chain visits exactly the tree's key count in order.
    pub fn check_invariants(&self) -> StorageResult<Result<(), String>> {
        // Recursive structural walk with key-range bounds.
        fn walk(
            t: &BPlusTree,
            pid: PageId,
            depth: u8,
            lo: Option<Key128>,
            hi: Option<Key128>,
            leaf_depth: &mut Option<u8>,
            count: &mut usize,
        ) -> StorageResult<Result<(), String>> {
            let node = t.read_node(pid)?;
            let is_root = pid == t.root;
            match node {
                BNode::Leaf { keys, values, .. } => {
                    if keys.len() != values.len() {
                        return Ok(Err(format!("leaf {pid}: key/value arity mismatch")));
                    }
                    if !is_root && keys.len() < t.layout.min_leaf {
                        return Ok(Err(format!("leaf {pid} underfull: {}", keys.len())));
                    }
                    if keys.len() > t.layout.max_leaf {
                        return Ok(Err(format!("leaf {pid} overfull: {}", keys.len())));
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) if *d != depth => {
                            return Ok(Err(format!("leaf {pid} at depth {depth}, expected {d}")))
                        }
                        _ => {}
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Ok(Err(format!("leaf {pid}: keys out of order")));
                        }
                    }
                    if let Some(lo) = lo {
                        if keys.first().is_some_and(|k| *k < lo) {
                            return Ok(Err(format!("leaf {pid}: key below separator")));
                        }
                    }
                    if let Some(hi) = hi {
                        if keys.last().is_some_and(|k| *k >= hi) {
                            return Ok(Err(format!("leaf {pid}: key above separator")));
                        }
                    }
                    *count += keys.len();
                }
                BNode::Internal { keys, children, .. } => {
                    if children.len() != keys.len() + 1 {
                        return Ok(Err(format!("internal {pid}: arity mismatch")));
                    }
                    if !is_root && keys.len() < t.layout.min_internal {
                        return Ok(Err(format!("internal {pid} underfull")));
                    }
                    if keys.len() > t.layout.max_internal {
                        return Ok(Err(format!("internal {pid} overfull")));
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Ok(Err(format!("internal {pid}: separators out of order")));
                        }
                    }
                    for (i, &child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                        match walk(t, child, depth + 1, clo, chi, leaf_depth, count)? {
                            Ok(()) => {}
                            Err(e) => return Ok(Err(e)),
                        }
                    }
                }
            }
            Ok(Ok(()))
        }

        let mut leaf_depth = None;
        let mut count = 0usize;
        match walk(self, self.root, 0, None, None, &mut leaf_depth, &mut count)? {
            Ok(()) => {}
            Err(e) => return Ok(Err(e)),
        }
        if count != self.len {
            return Ok(Err(format!("structural count {count} != len {}", self.len)));
        }
        // Leaf chain: ordered, complete.
        let mut chained = 0usize;
        let mut prev: Option<Key128> = None;
        let n = self.range_scan(Key128::MIN, Key128::MAX, |k, _| {
            if let Some(p) = prev {
                debug_assert!(p < k);
            }
            prev = Some(k);
            chained += 1;
        })?;
        if n != self.len {
            return Ok(Err(format!("leaf chain visits {n}, len {}", self.len)));
        }
        Ok(Ok(()))
    }

    // ----- scans ----------------------------------------------------------

    /// Visits every `(key, value)` with `lo <= key <= hi` in key order.
    /// Returns the number of entries visited.
    ///
    /// Zero-copy: values are handed to `f` as borrows into the page
    /// buffer, and entries outside the range are never touched — the
    /// scan binary-searches the start slot and stops at the first key
    /// past `hi` without materializing the rest of the leaf.
    pub fn range_scan(
        &self,
        lo: Key128,
        hi: Key128,
        f: impl FnMut(Key128, &Value),
    ) -> StorageResult<usize> {
        self.track(|t| t.view().range_scan(lo, hi, f))
    }

    /// Answers many `[lo, hi]` key ranges in **one shared sweep**:
    /// the ranges are ordered by `lo`, and the leaf chain is walked
    /// left to right with the set of currently *active* ranges — every
    /// touched leaf page is fetched and parsed exactly once for all
    /// ranges overlapping it, instead of once per range as a loop of
    /// [`BPlusTree::range_scan`] calls would. Gaps no active range
    /// covers are skipped by a fresh root descent rather than chained
    /// through.
    ///
    /// `f` is invoked as `f(range_index, key, value)` for every entry
    /// of every range, in ascending key order per range. An entry in
    /// the overlap of several ranges is reported once per range, as
    /// consecutive calls with the same key; their relative range
    /// order is deterministic but unspecified. Empty ranges
    /// (`hi < lo`) report nothing. Returns the total number of `f`
    /// invocations.
    pub fn range_scan_batch(
        &self,
        ranges: &[(Key128, Key128)],
        f: impl FnMut(usize, Key128, &Value),
    ) -> StorageResult<usize> {
        self.track(|t| t.view().range_scan_batch(ranges, f))
    }

    // ----- bulk loading ---------------------------------------------------

    /// Builds a tree from an iterator of **strictly ascending** keyed
    /// entries, without any per-key root descent: leaves are packed
    /// left-to-right at maximum fanout, then internal levels are
    /// stacked on top until a single root remains. The tail of each
    /// level is split evenly so every non-root node meets minimum
    /// occupancy.
    pub fn bulk_load<I>(pool: Arc<BufferPool>, items: I) -> StorageResult<BPlusTree>
    where
        I: IntoIterator<Item = (Key128, Value)>,
    {
        let layout = BLayout::for_page_size(pool.page_size());
        let before = vp_storage::thread_io::snapshot();

        let items: Vec<(Key128, Value)> = items.into_iter().collect();
        for w in items.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(StorageError::Corrupt(
                    "bulk_load input keys not strictly ascending".into(),
                ));
            }
        }
        let len = items.len();
        if len == 0 {
            return BPlusTree::new(pool);
        }

        // Pack leaves. `chunk_sizes` keeps every chunk within
        // [min, max] except a lone root.
        let leaf_sizes = chunk_sizes(len, layout.min_leaf, layout.max_leaf);
        let leaf_pids: Vec<PageId> = (0..leaf_sizes.len())
            .map(|_| pool.new_page())
            .collect::<StorageResult<_>>()?;
        let mut level: Vec<(Key128, PageId)> = Vec::with_capacity(leaf_sizes.len());
        let mut cursor = items.into_iter();
        for (i, &size) in leaf_sizes.iter().enumerate() {
            let chunk: Vec<(Key128, Value)> = cursor.by_ref().take(size).collect();
            let min_key = chunk[0].0;
            let node = BNode::Leaf {
                next: leaf_pids.get(i + 1).copied().unwrap_or(PageId::INVALID),
                keys: chunk.iter().map(|(k, _)| *k).collect(),
                values: chunk.iter().map(|(_, v)| *v).collect(),
            };
            pool.with_page_mut(leaf_pids[i], |buf| node.encode(buf))??;
            level.push((min_key, leaf_pids[i]));
        }

        // Stack internal levels until one node remains.
        let nodes = level
            .into_iter()
            .map(|(k, p)| (Some(k), p))
            .collect::<Vec<_>>();
        let (root, height) = stack_internal_levels(&pool, &layout, nodes, 1)?;

        let own = AtomicIoStats::zero();
        own.add(vp_storage::thread_io::snapshot().delta(&before));
        Ok(BPlusTree {
            root,
            pool,
            layout,
            height,
            len,
            own,
        })
    }

    // ----- batched updates ------------------------------------------------

    /// Applies a batch of operations whose keys are **strictly
    /// ascending** in one recursive tree walk: ops are partitioned
    /// among children at each internal node, every touched leaf
    /// absorbs its whole run in a single page write (in place when the
    /// result fits, multi-way split when it overflows), and occupancy
    /// repairs happen once per parent — merging or redistributing
    /// drained siblings — instead of once per key. Compared to a loop
    /// of single ops this saves one root descent per key and the
    /// per-key split/rebalance churn of co-located runs.
    pub fn apply_batch(&mut self, ops: &[(Key128, BatchOp)]) -> StorageResult<BatchOutcome> {
        if ops.is_empty() {
            return Ok(BatchOutcome::default());
        }
        for w in ops.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(StorageError::Corrupt(
                    "apply_batch op keys not strictly ascending".into(),
                ));
            }
        }
        self.track_mut(|t| {
            let mut out = BatchOutcome::default();
            let effect = t.apply_rec(t.root, true, ops, &mut out)?;
            t.len = t.len + out.inserted - out.deleted;
            if let ApplyEffect::Splits(splits) = effect {
                t.grow_root(splits)?;
            }
            // Collapse a root that lost all separators (possible after
            // bulk deletion merged everything into one child).
            loop {
                match t.read_node(t.root)? {
                    BNode::Internal { keys, children, .. } if keys.is_empty() => {
                        let old = t.root;
                        t.root = children[0];
                        t.height -= 1;
                        t.pool.free_page(old)?;
                    }
                    _ => break,
                }
            }
            Ok(out)
        })
    }

    /// Applies `ops` (all belonging to `pid`'s key range) to the
    /// subtree under `pid`, reporting the structural effect the parent
    /// must absorb.
    fn apply_rec(
        &mut self,
        pid: PageId,
        is_root: bool,
        ops: &[(Key128, BatchOp)],
        out: &mut BatchOutcome,
    ) -> StorageResult<ApplyEffect> {
        debug_assert!(!ops.is_empty());
        let leaf = self.pool.with_page(pid, crate::node::is_leaf_page)??;
        if leaf {
            self.apply_leaf(pid, is_root, ops, out)
        } else {
            self.apply_internal(pid, is_root, ops, out)
        }
    }

    /// Leaf case: try the whole run in place through [`LeafViewMut`];
    /// only an overflow or (non-root) underflow falls back to one
    /// decode covering the rest of the run.
    fn apply_leaf(
        &mut self,
        pid: PageId,
        is_root: bool,
        ops: &[(Key128, BatchOp)],
        out: &mut BatchOutcome,
    ) -> StorageResult<ApplyEffect> {
        let max_leaf = self.layout.max_leaf;
        let min_leaf = self.layout.min_leaf;
        let applied =
            self.pool
                .with_page_probe_mut(pid, |buf| -> (StorageResult<usize>, bool) {
                    let mut v = match LeafViewMut::parse(buf) {
                        Ok(v) => v,
                        Err(e) => return (Err(e), false),
                    };
                    let mut modified = false;
                    let mut j = 0usize;
                    while j < ops.len() {
                        let (k, op) = ops[j];
                        match op {
                            BatchOp::Put(val) => match v.search(k) {
                                Ok(s) => {
                                    v.set_value_at(s, &val);
                                    out.replaced += 1;
                                    modified = true;
                                }
                                Err(s) if v.count() < max_leaf => {
                                    v.insert_at(s, k, &val);
                                    out.inserted += 1;
                                    modified = true;
                                }
                                Err(_) => break, // overflow: decode path
                            },
                            BatchOp::Delete => match v.search(k) {
                                Ok(s) if is_root || v.count() > min_leaf => {
                                    v.remove_at(s);
                                    out.deleted += 1;
                                    modified = true;
                                }
                                Ok(_) => break, // underflow: decode path
                                Err(_) => out.missing += 1,
                            },
                        }
                        j += 1;
                    }
                    (Ok(j), modified)
                })??;
        if applied == ops.len() {
            return Ok(ApplyEffect::Done);
        }

        // Structural case: decode once, absorb the rest of the run.
        let BNode::Leaf {
            next,
            mut keys,
            mut values,
        } = self.read_node(pid)?
        else {
            return Err(StorageError::Corrupt(
                "leaf became internal mid-batch".into(),
            ));
        };
        for &(k, op) in &ops[applied..] {
            match op {
                BatchOp::Put(val) => match keys.binary_search(&k) {
                    Ok(s) => {
                        values[s] = val;
                        out.replaced += 1;
                    }
                    Err(s) => {
                        keys.insert(s, k);
                        values.insert(s, val);
                        out.inserted += 1;
                    }
                },
                BatchOp::Delete => match keys.binary_search(&k) {
                    Ok(s) => {
                        keys.remove(s);
                        values.remove(s);
                        out.deleted += 1;
                    }
                    Err(_) => out.missing += 1,
                },
            }
        }

        if keys.len() > max_leaf {
            // Multi-way split: repack into [min, max]-sized leaves.
            let sizes = chunk_sizes(keys.len(), min_leaf, max_leaf);
            let extra_pids: Vec<PageId> = (1..sizes.len())
                .map(|_| self.pool.new_page())
                .collect::<StorageResult<_>>()?;
            let mut splits = Vec::with_capacity(extra_pids.len());
            let mut keys = keys.into_iter();
            let mut values = values.into_iter();
            for (gi, &size) in sizes.iter().enumerate() {
                let node_keys: Vec<Key128> = keys.by_ref().take(size).collect();
                let node_values: Vec<Value> = values.by_ref().take(size).collect();
                let node_pid = if gi == 0 { pid } else { extra_pids[gi - 1] };
                let node_next = extra_pids.get(gi).copied().unwrap_or(next);
                if gi > 0 {
                    splits.push((node_keys[0], node_pid));
                }
                self.write_node(
                    node_pid,
                    &BNode::Leaf {
                        next: node_next,
                        keys: node_keys,
                        values: node_values,
                    },
                )?;
            }
            return Ok(ApplyEffect::Splits(splits));
        }

        let underflow = !is_root && keys.len() < min_leaf;
        self.write_node(pid, &BNode::Leaf { next, keys, values })?;
        Ok(if underflow {
            ApplyEffect::Underflow
        } else {
            ApplyEffect::Done
        })
    }

    /// Internal case: partition `ops` among the children, recurse, and
    /// absorb the children's structural effects. The node itself is
    /// only rewritten when some child changed shape.
    fn apply_internal(
        &mut self,
        pid: PageId,
        is_root: bool,
        ops: &[(Key128, BatchOp)],
        out: &mut BatchOutcome,
    ) -> StorageResult<ApplyEffect> {
        let BNode::Internal {
            level,
            mut keys,
            mut children,
        } = self.read_node(pid)?
        else {
            return Err(StorageError::Corrupt(
                "internal became leaf mid-batch".into(),
            ));
        };

        // ops[start_of[i]..start_of[i + 1]) belongs to children[i].
        let mut start_of = Vec::with_capacity(children.len() + 1);
        start_of.push(0usize);
        for sep in &keys {
            let prev = *start_of.last().expect("non-empty");
            start_of.push(prev + ops[prev..].partition_point(|(k, _)| *k < *sep));
        }
        start_of.push(ops.len());

        let mut effects: Vec<(usize, ApplyEffect)> = Vec::new();
        for i in 0..children.len() {
            let range = &ops[start_of[i]..start_of[i + 1]];
            if range.is_empty() {
                continue;
            }
            let effect = self.apply_rec(children[i], false, range, out)?;
            if !matches!(effect, ApplyEffect::Done) {
                effects.push((i, effect));
            }
        }
        if effects.is_empty() {
            return Ok(ApplyEffect::Done); // no separator moved: node untouched
        }

        // Splice child splits in right-to-left so indices stay valid;
        // remember underflowed children by page id (repairs below may
        // shift or even merge them away).
        let mut underflowed: Vec<PageId> = Vec::new();
        for (i, effect) in effects.into_iter().rev() {
            match effect {
                ApplyEffect::Done => {}
                ApplyEffect::Underflow => underflowed.push(children[i]),
                ApplyEffect::Splits(splits) => {
                    let (seps, pids): (Vec<Key128>, Vec<PageId>) = splits.into_iter().unzip();
                    keys.splice(i..i, seps);
                    children.splice(i + 1..i + 1, pids);
                }
            }
        }
        for upid in underflowed {
            let Some(idx) = children.iter().position(|c| *c == upid) else {
                continue; // merged away by an earlier repair
            };
            self.repair_child(&mut keys, &mut children, idx)?;
        }

        if keys.len() > self.layout.max_internal {
            return Ok(ApplyEffect::Splits(
                self.split_internal_multiway(pid, level, keys, children)?,
            ));
        }
        let underflow = !is_root && keys.len() < self.layout.min_internal;
        self.write_node(
            pid,
            &BNode::Internal {
                level,
                keys,
                children,
            },
        )?;
        Ok(if underflow {
            ApplyEffect::Underflow
        } else {
            ApplyEffect::Done
        })
    }

    /// Restores `children[idx]` to minimum occupancy after a bulk
    /// drain, which may have left it far below minimum (even empty):
    /// repeatedly merge it into a sibling when the pair fits one page,
    /// or redistribute evenly when it does not.
    fn repair_child(
        &mut self,
        keys: &mut Vec<Key128>,
        children: &mut Vec<PageId>,
        mut idx: usize,
    ) -> StorageResult<()> {
        loop {
            if children.len() == 1 {
                return Ok(()); // lone child: parent underflow handles it
            }
            let node = self.read_node(children[idx])?;
            let deficient = match &node {
                BNode::Leaf { keys, .. } => keys.len() < self.layout.min_leaf,
                BNode::Internal { keys, .. } => keys.len() < self.layout.min_internal,
            };
            if !deficient {
                return Ok(());
            }
            // Pair with the left sibling when one exists.
            let at = if idx > 0 { idx - 1 } else { idx };
            let left = self.read_node(children[at])?;
            let right = self.read_node(children[at + 1])?;
            match (left, right) {
                (
                    BNode::Leaf {
                        next: _,
                        keys: mut lk,
                        values: mut lv,
                    },
                    BNode::Leaf {
                        next: rnext,
                        keys: rk,
                        values: rv,
                    },
                ) => {
                    lk.extend(rk);
                    lv.extend(rv);
                    if lk.len() <= self.layout.max_leaf {
                        self.write_node(
                            children[at],
                            &BNode::Leaf {
                                next: rnext,
                                keys: lk,
                                values: lv,
                            },
                        )?;
                        self.pool.free_page(children[at + 1])?;
                        keys.remove(at);
                        children.remove(at + 1);
                        idx = at;
                    } else {
                        let h = lk.len() - lk.len() / 2;
                        let rk2 = lk.split_off(h);
                        let rv2 = lv.split_off(h);
                        keys[at] = rk2[0];
                        self.write_node(
                            children[at + 1],
                            &BNode::Leaf {
                                next: rnext,
                                keys: rk2,
                                values: rv2,
                            },
                        )?;
                        self.write_node(
                            children[at],
                            &BNode::Leaf {
                                next: children[at + 1],
                                keys: lk,
                                values: lv,
                            },
                        )?;
                        return Ok(());
                    }
                }
                (
                    BNode::Internal {
                        level,
                        keys: mut lk,
                        children: mut lc,
                    },
                    BNode::Internal {
                        keys: rk,
                        children: rc,
                        ..
                    },
                ) => {
                    // Combine through the parent separator.
                    lk.push(keys[at]);
                    lk.extend(rk);
                    lc.extend(rc);
                    if lc.len() <= self.layout.max_internal + 1 {
                        self.write_node(
                            children[at],
                            &BNode::Internal {
                                level,
                                keys: lk,
                                children: lc,
                            },
                        )?;
                        self.pool.free_page(children[at + 1])?;
                        keys.remove(at);
                        children.remove(at + 1);
                        idx = at;
                    } else {
                        let m = lc.len() / 2; // left child count
                        let rc2 = lc.split_off(m);
                        let rk2 = lk.split_off(m);
                        let sep_up = lk.pop().expect("split leaves a separator");
                        keys[at] = sep_up;
                        self.write_node(
                            children[at],
                            &BNode::Internal {
                                level,
                                keys: lk,
                                children: lc,
                            },
                        )?;
                        self.write_node(
                            children[at + 1],
                            &BNode::Internal {
                                level,
                                keys: rk2,
                                children: rc2,
                            },
                        )?;
                        return Ok(());
                    }
                }
                _ => {
                    return Err(StorageError::Corrupt(
                        "sibling level mismatch during batch repair".into(),
                    ))
                }
            }
        }
    }

    /// Splits an overfull internal node into `[min, max]`-sized pieces,
    /// reusing `pid` for the leftmost; returns the promoted separators
    /// and new page ids for the parent to splice in.
    fn split_internal_multiway(
        &mut self,
        pid: PageId,
        level: u8,
        keys: Vec<Key128>,
        children: Vec<PageId>,
    ) -> StorageResult<Vec<(Key128, PageId)>> {
        let sizes = chunk_sizes(
            children.len(),
            self.layout.min_internal + 1,
            self.layout.max_internal + 1,
        );
        let mut splits = Vec::with_capacity(sizes.len() - 1);
        let mut cpos = 0usize;
        for (gi, &size) in sizes.iter().enumerate() {
            let node_children = children[cpos..cpos + size].to_vec();
            let node_keys = keys[cpos..cpos + size - 1].to_vec();
            let node = BNode::Internal {
                level,
                keys: node_keys,
                children: node_children,
            };
            if gi == 0 {
                self.write_node(pid, &node)?;
            } else {
                let sep = keys[cpos - 1]; // promoted between the groups
                let new_pid = self.alloc_node(&node)?;
                splits.push((sep, new_pid));
            }
            cpos += size;
        }
        Ok(splits)
    }

    /// Grows the root after a batched split: stacks internal levels on
    /// top of the old root until one node holds everything.
    fn grow_root(&mut self, splits: Vec<(Key128, PageId)>) -> StorageResult<()> {
        let nodes: Vec<(Option<Key128>, PageId)> = std::iter::once((None, self.root))
            .chain(splits.into_iter().map(|(k, p)| (Some(k), p)))
            .collect();
        let (root, height) = stack_internal_levels(&self.pool, &self.layout, nodes, self.height)?;
        self.root = root;
        self.height = height;
        Ok(())
    }
}

/// Stacks internal levels over `nodes` — `(subtree min key, page)`
/// pairs, where only the globally leftmost subtree may carry `None` —
/// until a single node remains. `next_level` is the level number of
/// the first layer built; returns the final root and the resulting
/// tree height. Shared by [`BPlusTree::bulk_load`] and the post-batch
/// root growth.
fn stack_internal_levels(
    pool: &BufferPool,
    layout: &BLayout,
    mut nodes: Vec<(Option<Key128>, PageId)>,
    mut next_level: u8,
) -> StorageResult<(PageId, u8)> {
    while nodes.len() > 1 {
        let sizes = chunk_sizes(
            nodes.len(),
            layout.min_internal + 1,
            layout.max_internal + 1,
        );
        let mut parent = Vec::with_capacity(sizes.len());
        let mut it = nodes.into_iter();
        for size in sizes {
            let group: Vec<(Option<Key128>, PageId)> = it.by_ref().take(size).collect();
            let node = BNode::Internal {
                level: next_level,
                keys: group[1..]
                    .iter()
                    .map(|(k, _)| k.expect("only the leftmost node lacks a separator"))
                    .collect(),
                children: group.iter().map(|(_, p)| *p).collect(),
            };
            let pid = pool.new_page()?;
            pool.with_page_mut(pid, |buf| node.encode(buf))??;
            parent.push((group[0].0, pid));
        }
        nodes = parent;
        next_level += 1;
    }
    Ok((nodes[0].1, next_level))
}

/// Structural effect a subtree reports to its parent after a batch.
enum ApplyEffect {
    /// Absorbed in place; no separator changes needed.
    Done,
    /// Split into additional right siblings `(separator, page)`.
    Splits(Vec<(Key128, PageId)>),
    /// Dropped below minimum occupancy; parent must repair.
    Underflow,
}

/// Splits `n` items into chunk sizes within `[min, max]`, filling at
/// `max` and evening out the tail (a single chunk may undercut `min`
/// only when `n < min` — the lone-root case).
fn chunk_sizes(n: usize, min: usize, max: usize) -> Vec<usize> {
    debug_assert!(min >= 1 && min <= max);
    let mut sizes = Vec::with_capacity(n / max + 2);
    let mut rem = n;
    while rem > max + min {
        sizes.push(max);
        rem -= max;
    }
    if rem > max {
        // Two final chunks, split evenly: both land in [min, max].
        sizes.push(rem - rem / 2);
        sizes.push(rem / 2);
    } else if rem > 0 {
        sizes.push(rem);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vp_storage::DiskManager;

    fn pool(page: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(page),
            64,
        ))
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BPlusTree>();
        assert_send_sync::<crate::BPlusTreeSnapshot>();
    }

    #[test]
    fn snapshot_isolated_from_later_writes() {
        let mut t = BPlusTree::new(pool(256)).unwrap();
        for i in 0..300u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        let snap = t.snapshot();
        // Mutate heavily after the snapshot: overwrites, deletes, and
        // enough inserts to split leaves and grow the tree.
        for i in 0..100u64 {
            t.delete(key(i)).unwrap();
        }
        for i in 300..900u64 {
            t.insert(key(i), val(i + 1)).unwrap();
        }
        // The snapshot still answers exactly as of its epoch.
        assert_eq!(snap.len(), 300);
        for i in 0..300u64 {
            assert_eq!(snap.get(key(i)).unwrap(), Some(val(i)), "key {i}");
        }
        assert_eq!(snap.get(key(500)).unwrap(), None);
        let mut seen = 0usize;
        snap.range_scan(Key128::MIN, Key128::MAX, |k, v| {
            let n = u64::from_le_bytes(v[..8].try_into().unwrap());
            assert_eq!(k, key(n));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 300);
        // The live tree sees the new state.
        assert_eq!(t.get(key(0)).unwrap(), None);
        assert_eq!(t.get(key(500)).unwrap(), Some(val(501)));
        // A fresh snapshot sees it too, and the two coexist.
        let snap2 = t.snapshot();
        assert_eq!(snap2.get(key(0)).unwrap(), None);
        assert_eq!(snap2.get(key(500)).unwrap(), Some(val(501)));
        assert_eq!(snap.get(key(0)).unwrap(), Some(val(0)));
    }

    #[test]
    fn snapshot_readable_while_writer_thread_mutates() {
        let mut t = BPlusTree::new(pool(256)).unwrap();
        for i in 0..400u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        let snap = t.snapshot();
        std::thread::scope(|s| {
            let reader = s.spawn(move || {
                for _ in 0..20 {
                    for i in (0..400u64).step_by(7) {
                        assert_eq!(snap.get(key(i)).unwrap(), Some(val(i)));
                    }
                    let mut n = 0;
                    snap.range_scan(key(0), key(399), |_, _| n += 1).unwrap();
                    assert_eq!(n, 400);
                }
            });
            for i in 400..1200u64 {
                t.insert(key(i), val(i)).unwrap();
            }
            for i in (0..400u64).step_by(2) {
                t.delete(key(i)).unwrap();
            }
            reader.join().unwrap();
        });
        assert_eq!(t.len(), 1000);
    }

    fn val(n: u64) -> Value {
        let mut v = [0u8; crate::VALUE_LEN];
        v[..8].copy_from_slice(&n.to_le_bytes());
        v
    }

    fn key(n: u64) -> Key128 {
        Key128::new(n / 7, n)
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        assert!(t.is_empty());
        for i in 0..10u64 {
            assert!(t.insert(key(i), val(i)).unwrap());
        }
        assert_eq!(t.len(), 10);
        for i in 0..10u64 {
            assert_eq!(t.get(key(i)).unwrap(), Some(val(i)));
        }
        assert_eq!(t.get(key(99)).unwrap(), None);
    }

    #[test]
    fn overwrite_returns_false() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        assert!(t.insert(key(1), val(1)).unwrap());
        assert!(!t.insert(key(1), val(2)).unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(key(1)).unwrap(), Some(val(2)));
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let n = 2000u64;
        for i in 0..n {
            t.insert(key(i), val(i)).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.height() >= 3, "tree should be deep, got {}", t.height());
        for i in (0..n).step_by(37) {
            assert_eq!(t.get(key(i)).unwrap(), Some(val(i)));
        }
    }

    #[test]
    fn range_scan_matches_btreemap() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0xCAFE);
        for _ in 0..1500 {
            let k = rng.next() % 10_000;
            t.insert(key(k), val(k)).unwrap();
            reference.insert(key(k), val(k));
        }
        for _ in 0..50 {
            let a = rng.next() % 10_000;
            let b = rng.next() % 10_000;
            let (lo, hi) = (key(a.min(b)), key(a.max(b)));
            let mut got = Vec::new();
            t.range_scan(lo, hi, |k, v| got.push((k, *v))).unwrap();
            let want: Vec<(Key128, Value)> =
                reference.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn full_range_scan_is_ordered() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut rng = Rng(0x5150);
        for _ in 0..800 {
            let k = rng.next() % 100_000;
            t.insert(key(k), val(k)).unwrap();
        }
        let mut prev: Option<Key128> = None;
        let n = t
            .range_scan(Key128::MIN, Key128::MAX, |k, _| {
                if let Some(p) = prev {
                    assert!(p < k, "scan out of order");
                }
                prev = Some(k);
            })
            .unwrap();
        assert_eq!(n, t.len());
    }

    #[test]
    fn delete_random_matches_btreemap() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0xBEEF);
        for _ in 0..1200 {
            let k = rng.next() % 3_000;
            t.insert(key(k), val(k)).unwrap();
            reference.insert(key(k), val(k));
        }
        // Delete half at random.
        let all: Vec<u64> = (0..3_000).collect();
        for &k in all.iter().filter(|k| *k % 2 == 0) {
            let got = t.delete(key(k)).unwrap();
            let want = reference.remove(&key(k)).is_some();
            assert_eq!(got, want, "delete {k}");
        }
        assert_eq!(t.len(), reference.len());
        for (&k, v) in &reference {
            assert_eq!(t.get(k).unwrap().as_ref(), Some(v));
        }
        // Scan still consistent.
        let mut got = Vec::new();
        t.range_scan(Key128::MIN, Key128::MAX, |k, v| got.push((k, *v)))
            .unwrap();
        let want: Vec<(Key128, Value)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_everything_then_reuse() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        for i in 0..500u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        for i in 0..500u64 {
            assert!(t.delete(key(i)).unwrap());
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree should collapse to a single leaf");
        t.check_invariants().unwrap().expect("empty tree is valid");
        assert!(!t.delete(key(0)).unwrap());
        // Reusable after emptying.
        for i in 0..100u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn mixed_operations_fuzz() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0x1DEA);
        for step in 0..5000 {
            let k = rng.next() % 2_000;
            match rng.next() % 3 {
                0 => {
                    let got = t.insert(key(k), val(step)).unwrap();
                    let want = reference.insert(key(k), val(step)).is_none();
                    assert_eq!(got, want);
                }
                1 => {
                    let got = t.delete(key(k)).unwrap();
                    let want = reference.remove(&key(k)).is_some();
                    assert_eq!(got, want);
                }
                _ => {
                    assert_eq!(
                        t.get(key(k)).unwrap(),
                        reference.get(&key(k)).copied(),
                        "get {k} at step {step}"
                    );
                }
            }
            assert_eq!(t.len(), reference.len());
            if step % 500 == 0 {
                t.check_invariants()
                    .unwrap()
                    .expect("invariants hold mid-fuzz");
            }
        }
        t.check_invariants()
            .unwrap()
            .expect("invariants hold at end");
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        for n in 1..500usize {
            let (min, max) = (3, 7);
            let sizes = chunk_sizes(n, min, max);
            assert_eq!(sizes.iter().sum::<usize>(), n, "n={n}");
            if sizes.len() == 1 {
                assert!(sizes[0] <= max);
            } else {
                assert!(
                    sizes.iter().all(|&s| (min..=max).contains(&s)),
                    "n={n}: {sizes:?}"
                );
            }
        }
    }

    #[test]
    fn bulk_load_matches_incremental() {
        for n in [0usize, 1, 7, 72, 73, 500, 2000] {
            let items: Vec<(Key128, Value)> = (0..n as u64).map(|i| (key(i * 3), val(i))).collect();
            let bulk = BPlusTree::bulk_load(pool(512), items.clone()).unwrap();
            let mut incr = BPlusTree::new(pool(512)).unwrap();
            for &(k, v) in &items {
                incr.insert(k, v).unwrap();
            }
            assert_eq!(bulk.len(), n, "n={n}");
            bulk.check_invariants()
                .unwrap()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            let mut a = Vec::new();
            bulk.range_scan(Key128::MIN, Key128::MAX, |k, v| a.push((k, *v)))
                .unwrap();
            let mut b = Vec::new();
            incr.range_scan(Key128::MIN, Key128::MAX, |k, v| b.push((k, *v)))
                .unwrap();
            assert_eq!(a, b, "n={n}");
            // Bulk loading packs leaves full, so it can never be taller.
            assert!(bulk.height() <= incr.height(), "n={n}");
        }
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let items = vec![(key(5), val(5)), (key(3), val(3))];
        assert!(BPlusTree::bulk_load(pool(512), items).is_err());
        let dup = vec![(key(5), val(5)), (key(5), val(6))];
        assert!(BPlusTree::bulk_load(pool(512), dup).is_err());
    }

    #[test]
    fn bulk_loaded_tree_supports_all_ops() {
        let items: Vec<(Key128, Value)> = (0..1000u64).map(|i| (key(i * 2), val(i))).collect();
        let mut t = BPlusTree::bulk_load(pool(512), items).unwrap();
        assert_eq!(t.get(key(500 * 2)).unwrap(), Some(val(500)));
        assert_eq!(t.get(key(501)).unwrap(), None);
        assert!(t.insert(key(501), val(9)).unwrap());
        assert!(t.delete(key(0)).unwrap());
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap().expect("still valid");
    }

    #[test]
    fn apply_batch_matches_single_ops() {
        let mut batched = BPlusTree::new(pool(512)).unwrap();
        let mut single = BPlusTree::new(pool(512)).unwrap();
        let mut reference = BTreeMap::new();
        let mut rng = Rng(0xABCD);
        for _round in 0..30 {
            // A sorted run of mixed upserts and deletes.
            let mut ops: Vec<(Key128, BatchOp)> = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            for _ in 0..120 {
                let k = rng.next() % 4_000;
                if !seen.insert(k) {
                    continue;
                }
                let op = if rng.next().is_multiple_of(3) {
                    BatchOp::Delete
                } else {
                    BatchOp::Put(val(k))
                };
                ops.push((key(k), op));
            }
            ops.sort_unstable_by_key(|(k, _)| *k);

            let out = batched.apply_batch(&ops).unwrap();
            let mut expect = BatchOutcome::default();
            for &(k, op) in &ops {
                match op {
                    BatchOp::Put(v) => {
                        if single.insert(k, v).unwrap() {
                            expect.inserted += 1;
                            reference.insert(k, v);
                        } else {
                            expect.replaced += 1;
                            reference.insert(k, v);
                        }
                    }
                    BatchOp::Delete => {
                        if single.delete(k).unwrap() {
                            expect.deleted += 1;
                            reference.remove(&k);
                        } else {
                            expect.missing += 1;
                        }
                    }
                }
            }
            assert_eq!(out, expect);
            assert_eq!(batched.len(), single.len());
            assert_eq!(batched.len(), reference.len());
        }
        batched
            .check_invariants()
            .unwrap()
            .expect("batched tree valid");
        let mut a = Vec::new();
        batched
            .range_scan(Key128::MIN, Key128::MAX, |k, v| a.push((k, *v)))
            .unwrap();
        let want: Vec<(Key128, Value)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, want);
    }

    #[test]
    fn apply_batch_rejects_unsorted() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let ops = vec![(key(5), BatchOp::Delete), (key(3), BatchOp::Delete)];
        assert!(t.apply_batch(&ops).is_err());
    }

    #[test]
    fn apply_batch_writes_fewer_pages_than_single_ops() {
        // The attributable win: a sorted tick of co-located updates
        // touches each leaf once, so the batched path must dirty
        // strictly fewer pages than one-at-a-time delete/insert.
        let items: Vec<(Key128, Value)> = (0..5_000u64).map(|i| (key(i * 2), val(i))).collect();
        let mut batched = BPlusTree::bulk_load(pool(4096), items.clone()).unwrap();
        let mut single = BPlusTree::bulk_load(pool(4096), items).unwrap();

        // One "tick": every 5th object moves to a nearby key.
        let mut ops: Vec<(Key128, BatchOp)> = Vec::new();
        for i in (0..5_000u64).step_by(5) {
            ops.push((key(i * 2), BatchOp::Delete));
            ops.push((key(i * 2 + 1), BatchOp::Put(val(i))));
        }
        ops.sort_unstable_by_key(|(k, _)| *k);

        batched.reset_io_stats();
        batched.apply_batch(&ops).unwrap();
        let batch_writes = batched.io_stats().logical_writes;

        single.reset_io_stats();
        for &(k, op) in &ops {
            match op {
                BatchOp::Put(v) => {
                    single.insert(k, v).unwrap();
                }
                BatchOp::Delete => {
                    single.delete(k).unwrap();
                }
            }
        }
        let single_writes = single.io_stats().logical_writes;

        assert!(
            batch_writes < single_writes,
            "batched {batch_writes} page writes vs single-op {single_writes}"
        );
        assert_eq!(batched.len(), single.len());
    }

    #[test]
    fn io_stats_attributed() {
        let mut t = BPlusTree::new(pool(4096)).unwrap();
        t.reset_io_stats();
        for i in 0..200u64 {
            t.insert(key(i), val(i)).unwrap();
        }
        assert!(t.io_stats().logical_reads > 0);
        t.reset_io_stats();
        assert_eq!(t.io_stats(), IoStats::zero());
    }

    #[test]
    fn range_scan_batch_matches_looped_scans() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        let mut rng = Rng(0xBA7C4);
        for _ in 0..1_500 {
            let k = rng.next() % 20_000;
            t.insert(key(k), val(k)).unwrap();
        }
        // Random, heavily overlapping range batches.
        for round in 0..20 {
            let nranges = 1 + (round % 7);
            let ranges: Vec<(Key128, Key128)> = (0..nranges)
                .map(|_| {
                    let a = rng.next() % 20_000;
                    let b = a + rng.next() % 4_000;
                    (key(a), key(b))
                })
                .collect();
            let mut batched: Vec<Vec<(Key128, Value)>> = vec![Vec::new(); ranges.len()];
            t.range_scan_batch(&ranges, |r, k, v| batched[r].push((k, *v)))
                .unwrap();
            for (r, &(lo, hi)) in ranges.iter().enumerate() {
                let mut looped = Vec::new();
                t.range_scan(lo, hi, |k, v| looped.push((k, *v))).unwrap();
                assert_eq!(batched[r], looped, "round {round}, range {r}");
            }
        }
    }

    #[test]
    fn range_scan_batch_handles_edge_ranges() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        for i in 0..300u64 {
            t.insert(key(i * 2), val(i)).unwrap();
        }
        // Empty (hi < lo), duplicate, fully-covering, and disjoint
        // ranges in one batch.
        let ranges = vec![
            (key(100), key(50)),        // empty
            (Key128::MIN, Key128::MAX), // everything
            (key(40), key(80)),         // inner
            (key(40), key(80)),         // duplicate of the inner
            (key(10_000), key(20_000)), // beyond all keys
        ];
        let mut got: Vec<Vec<Key128>> = vec![Vec::new(); ranges.len()];
        let n = t
            .range_scan_batch(&ranges, |r, k, _| got[r].push(k))
            .unwrap();
        assert!(got[0].is_empty());
        assert_eq!(got[1].len(), 300);
        assert_eq!(got[2], got[3]);
        assert!(got[4].is_empty());
        assert_eq!(n, got.iter().map(Vec::len).sum::<usize>());
        // An empty batch is a no-op.
        assert_eq!(
            t.range_scan_batch(&[], |_, _, _| panic!("no ranges"))
                .unwrap(),
            0
        );
    }

    #[test]
    fn range_scan_batch_reads_fewer_pages_than_looped_scans() {
        // The attributable win of the shared sweep: N overlapping
        // ranges fetch each shared leaf once, not N times.
        let items: Vec<(Key128, Value)> = (0..5_000u64).map(|i| (key(i), val(i))).collect();
        let t = BPlusTree::bulk_load(pool(512), items).unwrap();
        let ranges: Vec<(Key128, Key128)> = (0..16u64)
            .map(|i| (key(1_000 + i * 10), key(3_000 + i * 10)))
            .collect();

        t.reset_io_stats();
        let batched_n = t.range_scan_batch(&ranges, |_, _, _| {}).unwrap();
        let batched_reads = t.io_stats().logical_reads;

        t.reset_io_stats();
        let mut looped_n = 0;
        for &(lo, hi) in &ranges {
            looped_n += t.range_scan(lo, hi, |_, _| {}).unwrap();
        }
        let looped_reads = t.io_stats().logical_reads;

        assert_eq!(batched_n, looped_n);
        assert!(
            batched_reads * 2 < looped_reads,
            "shared sweep should at least halve page reads: {batched_reads} vs {looped_reads}"
        );
    }

    #[test]
    fn empty_scan_ranges() {
        let mut t = BPlusTree::new(pool(512)).unwrap();
        t.insert(key(5), val(5)).unwrap();
        let n = t
            .range_scan(key(10), key(2), |_, _| panic!("nothing in range"))
            .unwrap();
        assert_eq!(n, 0);
        let n = t.range_scan(key(6), key(9), |_, _| {}).unwrap();
        assert_eq!(n, 0);
    }
}
