//! B+-tree node layout and page codec.
//!
//! ```text
//! header:        tag(u8) level(u8) count(u16) pad(u32)      = 8 bytes
//! leaf:          next_leaf(u64)                             = 8 bytes
//!                entries: key(16) value(VALUE_LEN)          = 56 bytes each
//! internal:      keys: count x 16 bytes
//!                children: (count + 1) x 8 bytes
//! ```

use vp_storage::codec::{PageReader, PageWriter};
use vp_storage::{PageId, StorageError, StorageResult};

/// Fixed value record length (fits the Bx-tree payload: object id is in
/// the key; x, y, vx, vy, ref_time are 5 × f64 = 40 bytes).
pub const VALUE_LEN: usize = 40;

/// A fixed-size value record.
pub type Value = [u8; VALUE_LEN];

const HEADER_LEN: usize = 8;
const KEY_LEN: usize = 16;
const LEAF_META: usize = 8; // next_leaf pointer
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// A 128-bit composite key ordered by `(hi, lo)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key128 {
    pub hi: u64,
    pub lo: u64,
}

impl Key128 {
    /// Creates a key from its components.
    #[inline]
    pub const fn new(hi: u64, lo: u64) -> Key128 {
        Key128 { hi, lo }
    }

    /// The smallest key.
    pub const MIN: Key128 = Key128 { hi: 0, lo: 0 };

    /// The largest key.
    pub const MAX: Key128 = Key128 {
        hi: u64::MAX,
        lo: u64::MAX,
    };
}

/// A decoded B+-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum BNode {
    Leaf {
        next: PageId,
        keys: Vec<Key128>,
        values: Vec<Value>,
    },
    Internal {
        level: u8,
        /// Separator keys; `children.len() == keys.len() + 1`. Subtree
        /// `children[i]` holds keys `< keys[i]`; `children[last]` holds
        /// the rest.
        keys: Vec<Key128>,
        children: Vec<PageId>,
    },
}

impl BNode {
    /// Creates an empty leaf with no successor.
    pub fn empty_leaf() -> BNode {
        BNode::Leaf {
            next: PageId::INVALID,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        match self {
            BNode::Leaf { keys, .. } => keys.len(),
            BNode::Internal { keys, .. } => keys.len(),
        }
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, BNode::Leaf { .. })
    }

    /// Serializes into a page buffer.
    pub fn encode(&self, buf: &mut [u8]) -> StorageResult<()> {
        let mut w = PageWriter::new(buf);
        match self {
            BNode::Leaf { next, keys, values } => {
                debug_assert_eq!(keys.len(), values.len());
                w.put_u8(TAG_LEAF)?;
                w.put_u8(0)?;
                w.put_u16(keys.len() as u16)?;
                w.put_u32(0)?;
                w.put_page_id(*next)?;
                for (k, v) in keys.iter().zip(values) {
                    w.put_u64(k.hi)?;
                    w.put_u64(k.lo)?;
                    w.put_bytes(v)?;
                }
            }
            BNode::Internal {
                level,
                keys,
                children,
            } => {
                debug_assert_eq!(children.len(), keys.len() + 1);
                w.put_u8(TAG_INTERNAL)?;
                w.put_u8(*level)?;
                w.put_u16(keys.len() as u16)?;
                w.put_u32(0)?;
                for k in keys {
                    w.put_u64(k.hi)?;
                    w.put_u64(k.lo)?;
                }
                for c in children {
                    w.put_page_id(*c)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes from a page buffer.
    pub fn decode(buf: &[u8]) -> StorageResult<BNode> {
        let mut r = PageReader::new(buf);
        let tag = r.get_u8()?;
        let level = r.get_u8()?;
        let count = r.get_u16()? as usize;
        let _pad = r.get_u32()?;
        match tag {
            TAG_LEAF => {
                let next = r.get_page_id()?;
                let mut keys = Vec::with_capacity(count);
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(Key128::new(r.get_u64()?, r.get_u64()?));
                    let mut v = [0u8; VALUE_LEN];
                    v.copy_from_slice(r.get_bytes(VALUE_LEN)?);
                    values.push(v);
                }
                Ok(BNode::Leaf { next, keys, values })
            }
            TAG_INTERNAL => {
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(Key128::new(r.get_u64()?, r.get_u64()?));
                }
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(r.get_page_id()?);
                }
                Ok(BNode::Internal {
                    level,
                    keys,
                    children,
                })
            }
            other => Err(StorageError::Corrupt(format!("unknown bnode tag {other}"))),
        }
    }
}

/// Fanout limits derived from the page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BLayout {
    /// Max key/value pairs per leaf.
    pub max_leaf: usize,
    /// Max separator keys per internal node (children = keys + 1).
    pub max_internal: usize,
    pub min_leaf: usize,
    pub min_internal: usize,
}

impl BLayout {
    /// Computes fanouts for a page size.
    pub fn for_page_size(page_size: usize) -> BLayout {
        let max_leaf = (page_size - HEADER_LEN - LEAF_META) / (KEY_LEN + VALUE_LEN);
        // keys * 16 + (keys + 1) * 8 <= page - header
        let max_internal = (page_size - HEADER_LEN - 8) / (KEY_LEN + 8);
        assert!(
            max_leaf >= 4 && max_internal >= 4,
            "page size {page_size} too small for a B+-tree node"
        );
        BLayout {
            max_leaf,
            max_internal,
            min_leaf: (max_leaf / 2).max(1),
            min_internal: (max_internal / 2).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(b: u8) -> Value {
        [b; VALUE_LEN]
    }

    #[test]
    fn key_ordering() {
        assert!(Key128::new(1, 0) < Key128::new(2, 0));
        assert!(Key128::new(1, 5) < Key128::new(1, 6));
        assert!(Key128::new(1, u64::MAX) < Key128::new(2, 0));
        assert!(Key128::MIN < Key128::MAX);
    }

    #[test]
    fn leaf_round_trip() {
        let node = BNode::Leaf {
            next: PageId(9),
            keys: (0..5).map(|i| Key128::new(i, i * 2)).collect(),
            values: (0..5).map(|i| val(i as u8)).collect(),
        };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        assert_eq!(BNode::decode(&buf).unwrap(), node);
    }

    #[test]
    fn internal_round_trip() {
        let node = BNode::Internal {
            level: 2,
            keys: (0..4).map(|i| Key128::new(i, 0)).collect(),
            children: (0..5).map(PageId).collect(),
        };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        assert_eq!(BNode::decode(&buf).unwrap(), node);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            BNode::decode(&[9u8; 64]),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn layout_4k() {
        let l = BLayout::for_page_size(4096);
        assert_eq!(l.max_leaf, (4096 - 16) / 56); // 72
        assert_eq!(l.max_internal, (4096 - 16) / 24); // 170
        assert!(l.min_leaf >= 1 && l.min_leaf <= l.max_leaf / 2);
    }

    #[test]
    fn full_nodes_fit_page() {
        let l = BLayout::for_page_size(4096);
        let leaf = BNode::Leaf {
            next: PageId::INVALID,
            keys: (0..l.max_leaf as u64).map(|i| Key128::new(i, 0)).collect(),
            values: (0..l.max_leaf).map(|i| val(i as u8)).collect(),
        };
        let mut buf = vec![0u8; 4096];
        leaf.encode(&mut buf).unwrap();

        let internal = BNode::Internal {
            level: 1,
            keys: (0..l.max_internal as u64).map(|i| Key128::new(i, 0)).collect(),
            children: (0..=l.max_internal as u64).map(PageId).collect(),
        };
        internal.encode(&mut buf).unwrap();
    }
}
