//! B+-tree node layout and page codec.
//!
//! ```text
//! header:        tag(u8) level(u8) count(u16) pad(u32)      = 8 bytes
//! leaf:          next_leaf(u64)                             = 8 bytes
//!                entries: key(16) value(VALUE_LEN)          = 56 bytes each
//! internal:      keys: count x 16 bytes
//!                children: (count + 1) x 8 bytes
//! ```
//!
//! Two access models share this layout:
//!
//! * [`BNode`] — a fully decoded node (`Vec<Key128>`, `Vec<Value>`,
//!   …). Used for structural surgery: splits, merges, sibling
//!   borrowing, and bulk construction, where whole-node rewrites are
//!   unavoidable anyway.
//! * [`LeafView`] / [`InternalView`] (and their `Mut` variants) —
//!   zero-copy typed views over the raw page buffer. These validate
//!   the header once, then do binary search, slot reads, and
//!   memmove-style insert/remove **in place**, so the hot path of a
//!   moving-object update (descend, overwrite/insert/delete one leaf
//!   entry) allocates nothing and touches only the bytes it must.
//!
//! Both models read and write the identical wire format; the views are
//! an optimization, not a second codec.

use vp_storage::codec::{slots, PageReader, PageWriter};
use vp_storage::{PageId, StorageError, StorageResult};

/// Fixed value record length (fits the Bx-tree payload: object id is in
/// the key; x, y, vx, vy, ref_time are 5 × f64 = 40 bytes).
pub const VALUE_LEN: usize = 40;

/// A fixed-size value record.
pub type Value = [u8; VALUE_LEN];

const HEADER_LEN: usize = 8;
const KEY_LEN: usize = 16;
const LEAF_META: usize = 8; // next_leaf pointer
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// A 128-bit composite key ordered by `(hi, lo)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key128 {
    pub hi: u64,
    pub lo: u64,
}

impl Key128 {
    /// Creates a key from its components.
    #[inline]
    pub const fn new(hi: u64, lo: u64) -> Key128 {
        Key128 { hi, lo }
    }

    /// The smallest key.
    pub const MIN: Key128 = Key128 { hi: 0, lo: 0 };

    /// The largest key.
    pub const MAX: Key128 = Key128 {
        hi: u64::MAX,
        lo: u64::MAX,
    };
}

/// A decoded B+-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum BNode {
    Leaf {
        next: PageId,
        keys: Vec<Key128>,
        values: Vec<Value>,
    },
    Internal {
        level: u8,
        /// Separator keys; `children.len() == keys.len() + 1`. Subtree
        /// `children[i]` holds keys `< keys[i]`; `children[last]` holds
        /// the rest.
        keys: Vec<Key128>,
        children: Vec<PageId>,
    },
}

impl BNode {
    /// Creates an empty leaf with no successor.
    pub fn empty_leaf() -> BNode {
        BNode::Leaf {
            next: PageId::INVALID,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        match self {
            BNode::Leaf { keys, .. } => keys.len(),
            BNode::Internal { keys, .. } => keys.len(),
        }
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, BNode::Leaf { .. })
    }

    /// Serializes into a page buffer.
    pub fn encode(&self, buf: &mut [u8]) -> StorageResult<()> {
        let mut w = PageWriter::new(buf);
        match self {
            BNode::Leaf { next, keys, values } => {
                debug_assert_eq!(keys.len(), values.len());
                w.put_u8(TAG_LEAF)?;
                w.put_u8(0)?;
                w.put_u16(keys.len() as u16)?;
                w.put_u32(0)?;
                w.put_page_id(*next)?;
                for (k, v) in keys.iter().zip(values) {
                    w.put_u64(k.hi)?;
                    w.put_u64(k.lo)?;
                    w.put_bytes(v)?;
                }
            }
            BNode::Internal {
                level,
                keys,
                children,
            } => {
                debug_assert_eq!(children.len(), keys.len() + 1);
                w.put_u8(TAG_INTERNAL)?;
                w.put_u8(*level)?;
                w.put_u16(keys.len() as u16)?;
                w.put_u32(0)?;
                for k in keys {
                    w.put_u64(k.hi)?;
                    w.put_u64(k.lo)?;
                }
                for c in children {
                    w.put_page_id(*c)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes from a page buffer.
    pub fn decode(buf: &[u8]) -> StorageResult<BNode> {
        let mut r = PageReader::new(buf);
        let tag = r.get_u8()?;
        let level = r.get_u8()?;
        let count = r.get_u16()? as usize;
        let _pad = r.get_u32()?;
        match tag {
            TAG_LEAF => {
                let next = r.get_page_id()?;
                let mut keys = Vec::with_capacity(count);
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(Key128::new(r.get_u64()?, r.get_u64()?));
                    let mut v = [0u8; VALUE_LEN];
                    v.copy_from_slice(r.get_bytes(VALUE_LEN)?);
                    values.push(v);
                }
                Ok(BNode::Leaf { next, keys, values })
            }
            TAG_INTERNAL => {
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(Key128::new(r.get_u64()?, r.get_u64()?));
                }
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(r.get_page_id()?);
                }
                Ok(BNode::Internal {
                    level,
                    keys,
                    children,
                })
            }
            other => Err(StorageError::Corrupt(format!("unknown bnode tag {other}"))),
        }
    }
}

/// Fanout limits derived from the page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BLayout {
    /// Max key/value pairs per leaf.
    pub max_leaf: usize,
    /// Max separator keys per internal node (children = keys + 1).
    pub max_internal: usize,
    pub min_leaf: usize,
    pub min_internal: usize,
}

impl BLayout {
    /// Computes fanouts for a page size.
    pub fn for_page_size(page_size: usize) -> BLayout {
        let max_leaf = (page_size - HEADER_LEN - LEAF_META) / (KEY_LEN + VALUE_LEN);
        // keys * 16 + (keys + 1) * 8 <= page - header
        let max_internal = (page_size - HEADER_LEN - 8) / (KEY_LEN + 8);
        assert!(
            max_leaf >= 4 && max_internal >= 4,
            "page size {page_size} too small for a B+-tree node"
        );
        BLayout {
            max_leaf,
            max_internal,
            min_leaf: (max_leaf / 2).max(1),
            min_internal: (max_internal / 2).max(1),
        }
    }
}

// ----- zero-copy page views ---------------------------------------------

const OFF_TAG: usize = 0;
const OFF_COUNT: usize = 2;
const OFF_NEXT: usize = HEADER_LEN;
const LEAF_ENTRIES: usize = HEADER_LEN + LEAF_META;
const ENTRY_LEN: usize = KEY_LEN + VALUE_LEN;
const INT_KEYS: usize = HEADER_LEN;

/// Reads a [`Key128`] at a byte offset.
#[inline(always)]
fn key_at_off(buf: &[u8], off: usize) -> Key128 {
    Key128::new(slots::get_u64(buf, off), slots::get_u64(buf, off + 8))
}

/// Writes a [`Key128`] at a byte offset.
#[inline(always)]
fn put_key_at_off(buf: &mut [u8], off: usize, key: Key128) {
    slots::put_u64(buf, off, key.hi);
    slots::put_u64(buf, off + 8, key.lo);
}

/// Peeks at a page's tag: `true` for a leaf, `false` for an internal
/// node, error for anything else. The cheap type test the descent loop
/// runs before constructing a typed view.
#[inline]
pub fn is_leaf_page(buf: &[u8]) -> StorageResult<bool> {
    match buf.first().copied() {
        Some(TAG_LEAF) => Ok(true),
        Some(TAG_INTERNAL) => Ok(false),
        other => Err(StorageError::Corrupt(format!(
            "unknown bnode tag {other:?}"
        ))),
    }
}

#[inline]
fn check_leaf_header(buf: &[u8]) -> StorageResult<usize> {
    if buf.len() < LEAF_ENTRIES || buf[OFF_TAG] != TAG_LEAF {
        return Err(StorageError::Corrupt("not a leaf page".into()));
    }
    let count = slots::get_u16(buf, OFF_COUNT) as usize;
    if LEAF_ENTRIES + count * ENTRY_LEN > buf.len() {
        return Err(StorageError::Corrupt(format!(
            "leaf count {count} exceeds page capacity"
        )));
    }
    Ok(count)
}

#[inline]
fn check_internal_header(buf: &[u8]) -> StorageResult<usize> {
    if buf.len() < HEADER_LEN || buf[OFF_TAG] != TAG_INTERNAL {
        return Err(StorageError::Corrupt("not an internal page".into()));
    }
    let count = slots::get_u16(buf, OFF_COUNT) as usize;
    if INT_KEYS + count * KEY_LEN + (count + 1) * 8 > buf.len() {
        return Err(StorageError::Corrupt(format!(
            "internal count {count} exceeds page capacity"
        )));
    }
    Ok(count)
}

/// A borrowed, read-only view of an encoded leaf page.
///
/// Header bounds are validated by [`LeafView::parse`]; afterwards all
/// slot accesses are in range by construction (indexes are still
/// bounds-checked by the slice layer, so a logic bug panics instead of
/// reading wild memory).
#[derive(Debug, Clone, Copy)]
pub struct LeafView<'a> {
    buf: &'a [u8],
    count: usize,
}

impl<'a> LeafView<'a> {
    /// Validates the header and constructs the view.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> StorageResult<LeafView<'a>> {
        let count = check_leaf_header(buf)?;
        Ok(LeafView { buf, count })
    }

    /// Number of entries stored.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The next-leaf pointer.
    #[inline]
    pub fn next(&self) -> PageId {
        slots::get_page_id(self.buf, OFF_NEXT)
    }

    /// The key of entry `i`.
    #[inline]
    pub fn key_at(&self, i: usize) -> Key128 {
        debug_assert!(i < self.count);
        key_at_off(self.buf, LEAF_ENTRIES + i * ENTRY_LEN)
    }

    /// Borrows the value bytes of entry `i` (no copy).
    #[inline]
    pub fn value_at(&self, i: usize) -> &'a Value {
        debug_assert!(i < self.count);
        slots::get_array::<VALUE_LEN>(self.buf, LEAF_ENTRIES + i * ENTRY_LEN + KEY_LEN)
    }

    /// Binary search for `key`: `Ok(slot)` when present, `Err(slot)`
    /// with the insertion position otherwise.
    #[inline]
    pub fn search(&self, key: Key128) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.key_at(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Index of the first entry with key `>= key` (for range scans).
    #[inline]
    pub fn lower_bound(&self, key: Key128) -> usize {
        match self.search(key) {
            Ok(i) | Err(i) => i,
        }
    }
}

/// A borrowed, mutable view of an encoded leaf page: in-place entry
/// insertion/removal (memmove of the entry tail) and value overwrite,
/// so a fitting update rewrites only the bytes that changed instead of
/// re-encoding the whole node.
#[derive(Debug)]
pub struct LeafViewMut<'a> {
    buf: &'a mut [u8],
    count: usize,
}

impl<'a> LeafViewMut<'a> {
    /// Validates the header and constructs the view.
    #[inline]
    pub fn parse(buf: &'a mut [u8]) -> StorageResult<LeafViewMut<'a>> {
        let count = check_leaf_header(buf)?;
        Ok(LeafViewMut { buf, count })
    }

    /// Read-only alias of this view.
    #[inline]
    pub fn as_view(&self) -> LeafView<'_> {
        LeafView {
            buf: self.buf,
            count: self.count,
        }
    }

    /// Number of entries stored.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The key of entry `i`.
    #[inline]
    pub fn key_at(&self, i: usize) -> Key128 {
        self.as_view().key_at(i)
    }

    /// Binary search (see [`LeafView::search`]).
    #[inline]
    pub fn search(&self, key: Key128) -> Result<usize, usize> {
        self.as_view().search(key)
    }

    /// Entries this page can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        (self.buf.len() - LEAF_ENTRIES) / ENTRY_LEN
    }

    /// Sets the next-leaf pointer.
    #[inline]
    pub fn set_next(&mut self, next: PageId) {
        slots::put_page_id(self.buf, OFF_NEXT, next);
    }

    /// Overwrites the value of entry `i` in place.
    #[inline]
    pub fn set_value_at(&mut self, i: usize, value: &Value) {
        debug_assert!(i < self.count);
        slots::put_array(self.buf, LEAF_ENTRIES + i * ENTRY_LEN + KEY_LEN, value);
    }

    /// Inserts `key -> value` at slot `i`, shifting later entries right
    /// by one stride. The caller must have room (`count < capacity`).
    pub fn insert_at(&mut self, i: usize, key: Key128, value: &Value) {
        assert!(i <= self.count, "insert slot out of range");
        assert!(self.count < self.capacity(), "leaf page full");
        let start = LEAF_ENTRIES + i * ENTRY_LEN;
        let end = LEAF_ENTRIES + self.count * ENTRY_LEN;
        self.buf.copy_within(start..end, start + ENTRY_LEN);
        put_key_at_off(self.buf, start, key);
        slots::put_array(self.buf, start + KEY_LEN, value);
        self.count += 1;
        slots::put_u16(self.buf, OFF_COUNT, self.count as u16);
    }

    /// Removes entry `i`, shifting later entries left by one stride.
    pub fn remove_at(&mut self, i: usize) {
        assert!(i < self.count, "remove slot out of range");
        let start = LEAF_ENTRIES + (i + 1) * ENTRY_LEN;
        let end = LEAF_ENTRIES + self.count * ENTRY_LEN;
        self.buf.copy_within(start..end, start - ENTRY_LEN);
        self.count -= 1;
        slots::put_u16(self.buf, OFF_COUNT, self.count as u16);
    }
}

/// A borrowed, read-only view of an encoded internal page: binary
/// search over the separator keys and child-slot reads, used by the
/// descent loop without decoding the node.
#[derive(Debug, Clone, Copy)]
pub struct InternalView<'a> {
    buf: &'a [u8],
    count: usize,
}

impl<'a> InternalView<'a> {
    /// Validates the header and constructs the view.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> StorageResult<InternalView<'a>> {
        let count = check_internal_header(buf)?;
        Ok(InternalView { buf, count })
    }

    /// Number of separator keys (children = count + 1).
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The node's level (leaves are level 0).
    #[inline]
    pub fn level(&self) -> u8 {
        self.buf[1]
    }

    /// Separator key `i`.
    #[inline]
    pub fn key_at(&self, i: usize) -> Key128 {
        debug_assert!(i < self.count);
        key_at_off(self.buf, INT_KEYS + i * KEY_LEN)
    }

    /// Child pointer `i` (`0..=count`).
    #[inline]
    pub fn child_at(&self, i: usize) -> PageId {
        debug_assert!(i <= self.count);
        slots::get_page_id(self.buf, INT_KEYS + self.count * KEY_LEN + i * 8)
    }

    /// The child slot to descend into for `key`: the first slot whose
    /// separator exceeds `key` (binary search; separators bound their
    /// right subtree from below).
    #[inline]
    pub fn child_for(&self, key: Key128) -> usize {
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// A borrowed, mutable view of an encoded internal page.
///
/// Structure-changing edits (inserting a separator after a child
/// split) move the children array and are left to the [`BNode`] path;
/// this view covers the in-place cases — replacing a separator key or
/// repointing a child — which need no layout shift.
#[derive(Debug)]
pub struct InternalViewMut<'a> {
    buf: &'a mut [u8],
    count: usize,
}

impl<'a> InternalViewMut<'a> {
    /// Validates the header and constructs the view.
    #[inline]
    pub fn parse(buf: &'a mut [u8]) -> StorageResult<InternalViewMut<'a>> {
        let count = check_internal_header(buf)?;
        Ok(InternalViewMut { buf, count })
    }

    /// Read-only alias of this view.
    #[inline]
    pub fn as_view(&self) -> InternalView<'_> {
        InternalView {
            buf: self.buf,
            count: self.count,
        }
    }

    /// Number of separator keys.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Replaces separator key `i` in place.
    #[inline]
    pub fn set_key_at(&mut self, i: usize, key: Key128) {
        assert!(i < self.count, "separator slot out of range");
        put_key_at_off(self.buf, INT_KEYS + i * KEY_LEN, key);
    }

    /// Repoints child slot `i` in place.
    #[inline]
    pub fn set_child_at(&mut self, i: usize, child: PageId) {
        assert!(i <= self.count, "child slot out of range");
        slots::put_page_id(self.buf, INT_KEYS + self.count * KEY_LEN + i * 8, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(b: u8) -> Value {
        [b; VALUE_LEN]
    }

    #[test]
    fn key_ordering() {
        assert!(Key128::new(1, 0) < Key128::new(2, 0));
        assert!(Key128::new(1, 5) < Key128::new(1, 6));
        assert!(Key128::new(1, u64::MAX) < Key128::new(2, 0));
        assert!(Key128::MIN < Key128::MAX);
    }

    #[test]
    fn leaf_round_trip() {
        let node = BNode::Leaf {
            next: PageId(9),
            keys: (0..5).map(|i| Key128::new(i, i * 2)).collect(),
            values: (0..5).map(|i| val(i as u8)).collect(),
        };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        assert_eq!(BNode::decode(&buf).unwrap(), node);
    }

    #[test]
    fn internal_round_trip() {
        let node = BNode::Internal {
            level: 2,
            keys: (0..4).map(|i| Key128::new(i, 0)).collect(),
            children: (0..5).map(PageId).collect(),
        };
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf).unwrap();
        assert_eq!(BNode::decode(&buf).unwrap(), node);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            BNode::decode(&[9u8; 64]),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn layout_4k() {
        let l = BLayout::for_page_size(4096);
        assert_eq!(l.max_leaf, (4096 - 16) / 56); // 72
        assert_eq!(l.max_internal, (4096 - 16) / 24); // 170
        assert!(l.min_leaf >= 1 && l.min_leaf <= l.max_leaf / 2);
    }

    #[test]
    fn leaf_view_reads_encoded_node() {
        let node = BNode::Leaf {
            next: PageId(9),
            keys: (0..5).map(|i| Key128::new(i, i * 2)).collect(),
            values: (0..5).map(|i| val(i as u8)).collect(),
        };
        let mut buf = vec![0u8; 512];
        node.encode(&mut buf).unwrap();

        assert!(is_leaf_page(&buf).unwrap());
        let v = LeafView::parse(&buf).unwrap();
        assert_eq!(v.count(), 5);
        assert_eq!(v.next(), PageId(9));
        for i in 0..5u64 {
            assert_eq!(v.key_at(i as usize), Key128::new(i, i * 2));
            assert_eq!(v.value_at(i as usize), &val(i as u8));
        }
        assert_eq!(v.search(Key128::new(3, 6)), Ok(3));
        assert_eq!(v.search(Key128::new(3, 5)), Err(3));
        assert_eq!(v.lower_bound(Key128::new(2, 4)), 2);
        assert_eq!(v.lower_bound(Key128::MAX), 5);
    }

    #[test]
    fn leaf_view_mut_matches_decode_after_edits() {
        let node = BNode::Leaf {
            next: PageId::INVALID,
            keys: vec![Key128::new(1, 0), Key128::new(3, 0), Key128::new(5, 0)],
            values: vec![val(1), val(3), val(5)],
        };
        let mut buf = vec![0u8; 512];
        node.encode(&mut buf).unwrap();

        let mut m = LeafViewMut::parse(&mut buf).unwrap();
        // Insert in the middle, at the front, at the back.
        m.insert_at(1, Key128::new(2, 0), &val(2));
        m.insert_at(0, Key128::new(0, 0), &val(0));
        m.insert_at(5, Key128::new(6, 0), &val(6));
        m.set_value_at(2, &val(99));
        m.set_next(PageId(4));
        m.remove_at(4); // drop key (5,0)

        let decoded = BNode::decode(&buf).unwrap();
        assert_eq!(
            decoded,
            BNode::Leaf {
                next: PageId(4),
                keys: [0u64, 1, 2, 3, 6]
                    .iter()
                    .map(|&h| Key128::new(h, 0))
                    .collect(),
                values: vec![val(0), val(1), val(99), val(3), val(6)],
            }
        );
    }

    #[test]
    fn leaf_view_mut_fill_then_drain() {
        let layout = BLayout::for_page_size(512);
        let mut buf = vec![0u8; 512];
        BNode::empty_leaf().encode(&mut buf).unwrap();
        let mut m = LeafViewMut::parse(&mut buf).unwrap();
        assert_eq!(m.capacity(), layout.max_leaf);
        for i in 0..layout.max_leaf as u64 {
            let slot = m.search(Key128::new(0, i)).unwrap_err();
            m.insert_at(slot, Key128::new(0, i), &val(i as u8));
        }
        assert_eq!(m.count(), layout.max_leaf);
        for _ in 0..layout.max_leaf {
            m.remove_at(0);
        }
        assert_eq!(m.count(), 0);
        assert_eq!(BNode::decode(&buf).unwrap(), BNode::empty_leaf());
    }

    #[test]
    fn internal_view_reads_and_routes() {
        let node = BNode::Internal {
            level: 2,
            keys: (1..=4).map(|i| Key128::new(i * 10, 0)).collect(),
            children: (0..5).map(PageId).collect(),
        };
        let mut buf = vec![0u8; 512];
        node.encode(&mut buf).unwrap();

        assert!(!is_leaf_page(&buf).unwrap());
        let v = InternalView::parse(&buf).unwrap();
        assert_eq!(v.count(), 4);
        assert_eq!(v.level(), 2);
        assert_eq!(v.key_at(0), Key128::new(10, 0));
        assert_eq!(v.child_at(4), PageId(4));
        // Routing mirrors partition_point(|k| k <= key).
        assert_eq!(v.child_for(Key128::new(5, 0)), 0);
        assert_eq!(v.child_for(Key128::new(10, 0)), 1, "separator goes right");
        assert_eq!(v.child_for(Key128::new(35, 0)), 3);
        assert_eq!(v.child_for(Key128::MAX), 4);
    }

    #[test]
    fn internal_view_mut_in_place_edits() {
        let node = BNode::Internal {
            level: 1,
            keys: vec![Key128::new(10, 0), Key128::new(20, 0)],
            children: vec![PageId(1), PageId(2), PageId(3)],
        };
        let mut buf = vec![0u8; 512];
        node.encode(&mut buf).unwrap();
        let mut m = InternalViewMut::parse(&mut buf).unwrap();
        m.set_key_at(1, Key128::new(25, 0));
        m.set_child_at(0, PageId(7));
        assert_eq!(m.as_view().key_at(1), Key128::new(25, 0));
        assert_eq!(
            BNode::decode(&buf).unwrap(),
            BNode::Internal {
                level: 1,
                keys: vec![Key128::new(10, 0), Key128::new(25, 0)],
                children: vec![PageId(7), PageId(2), PageId(3)],
            }
        );
    }

    #[test]
    fn views_reject_wrong_tags_and_garbage() {
        let mut buf = vec![0u8; 128];
        BNode::empty_leaf().encode(&mut buf).unwrap();
        assert!(InternalView::parse(&buf).is_err());
        assert!(LeafView::parse(&buf).is_ok());

        let internal = BNode::Internal {
            level: 1,
            keys: vec![Key128::new(1, 0)],
            children: vec![PageId(1), PageId(2)],
        };
        internal.encode(&mut buf).unwrap();
        assert!(LeafView::parse(&buf).is_err());
        assert!(InternalView::parse(&buf).is_ok());

        assert!(is_leaf_page(&[9u8; 16]).is_err());
        // A count that cannot fit the page is corrupt, not a panic.
        let mut bad = vec![0u8; 64];
        BNode::empty_leaf().encode(&mut bad).unwrap();
        bad[OFF_COUNT] = 200;
        assert!(LeafView::parse(&bad).is_err());
    }

    #[test]
    fn full_nodes_fit_page() {
        let l = BLayout::for_page_size(4096);
        let leaf = BNode::Leaf {
            next: PageId::INVALID,
            keys: (0..l.max_leaf as u64).map(|i| Key128::new(i, 0)).collect(),
            values: (0..l.max_leaf).map(|i| val(i as u8)).collect(),
        };
        let mut buf = vec![0u8; 4096];
        leaf.encode(&mut buf).unwrap();

        let internal = BNode::Internal {
            level: 1,
            keys: (0..l.max_internal as u64)
                .map(|i| Key128::new(i, 0))
                .collect(),
            children: (0..=l.max_internal as u64).map(PageId).collect(),
        };
        internal.encode(&mut buf).unwrap();
    }
}
