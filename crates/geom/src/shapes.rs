//! Query shapes: circles and moving rectangles.
//!
//! The paper's default workload is the *circular time slice range query*
//! (Section 6); rectangular and moving range queries are also supported.
//! These shapes carry the exact-geometry predicates used in the final
//! filtering step of Algorithm 3 (line 8), after the index has been
//! probed with a bounding MBR.

use crate::point::{Point, Vec2};
use crate::rect::Rect;

/// A circle — the range of a circular range query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. Debug-asserts a non-negative radius.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative radius {radius}");
        Circle { center, radius }
    }

    /// True when `p` lies inside or on the circle.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// True when the circle and rectangle share at least one point.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        !r.is_empty() && r.min_dist_to_point(self.center) <= self.radius
    }

    /// The axis-aligned bounding box of the circle.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::centered(self.center, self.radius, self.radius)
    }
}

/// A moving circle: the range of a *moving* circular range query whose
/// center translates linearly with time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingCircle {
    pub circle: Circle,
    pub velocity: Vec2,
    /// Time at which `circle.center` holds.
    pub ref_time: f64,
}

impl MovingCircle {
    /// Creates a moving circle.
    #[inline]
    pub fn new(circle: Circle, velocity: Vec2, ref_time: f64) -> Self {
        MovingCircle {
            circle,
            velocity,
            ref_time,
        }
    }

    /// The circle at absolute time `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Circle {
        Circle::new(
            self.circle.center.advance(self.velocity, t - self.ref_time),
            self.circle.radius,
        )
    }

    /// True when the moving circle contains the moving point
    /// `(pos, vel, pos_ref_time)` at time `t`.
    pub fn contains_moving_point_at(&self, pos: Point, vel: Vec2, pos_ref: f64, t: f64) -> bool {
        self.at(t).contains_point(pos.advance(vel, t - pos_ref))
    }

    /// Whether the moving circle ever contains the moving point during
    /// `[t1, t2]`. The squared distance between the two centers is a
    /// quadratic in `t`; we test its minimum over the interval against
    /// the squared radius.
    pub fn contains_moving_point_during(
        &self,
        pos: Point,
        vel: Vec2,
        pos_ref: f64,
        t1: f64,
        t2: f64,
    ) -> bool {
        if t2 < t1 {
            return false;
        }
        // Relative displacement d(t) = (p0 + v_p (t - pos_ref)) - (c0 + v_c (t - ref_time))
        //                           = base + dv * t
        let base = Point::new(
            pos.x - vel.x * pos_ref - (self.circle.center.x - self.velocity.x * self.ref_time),
            pos.y - vel.y * pos_ref - (self.circle.center.y - self.velocity.y * self.ref_time),
        );
        let dv = vel - self.velocity;
        let r2 = self.circle.radius * self.circle.radius;
        let dist2 = |t: f64| {
            let d = base + dv * t;
            d.norm_sq()
        };
        // Quadratic a t^2 + b t + c with a = |dv|^2 >= 0; minimum at
        // t* = -b / (2a) when a > 0.
        let a = dv.norm_sq();
        if a <= 1e-18 {
            return dist2(t1) <= r2;
        }
        let b = 2.0 * base.dot(dv);
        let tstar = (-b / (2.0 * a)).clamp(t1, t2);
        dist2(tstar) <= r2 || dist2(t1) <= r2 || dist2(t2) <= r2
    }
}

/// A moving rectangle: the range of a moving rectangular query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingRect {
    pub rect: Rect,
    pub velocity: Vec2,
    /// Time at which `rect` holds.
    pub ref_time: f64,
}

impl MovingRect {
    /// Creates a moving rectangle.
    #[inline]
    pub fn new(rect: Rect, velocity: Vec2, ref_time: f64) -> Self {
        MovingRect {
            rect,
            velocity,
            ref_time,
        }
    }

    /// A stationary rectangle as a degenerate moving rectangle.
    #[inline]
    pub fn stationary(rect: Rect, ref_time: f64) -> Self {
        MovingRect::new(rect, Point::ZERO, ref_time)
    }

    /// The rectangle at absolute time `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Rect {
        let dt = t - self.ref_time;
        let d = self.velocity * dt;
        Rect {
            lo: self.rect.lo + d,
            hi: self.rect.hi + d,
        }
    }

    /// True when the moving rectangle contains the moving point at `t`.
    pub fn contains_moving_point_at(&self, pos: Point, vel: Vec2, pos_ref: f64, t: f64) -> bool {
        self.at(t).contains_point(pos.advance(vel, t - pos_ref))
    }

    /// Whether the moving rectangle ever contains the moving point over
    /// `[t1, t2]`. Per-axis the containment constraints are linear in
    /// `t`, so the feasible set is an interval.
    pub fn contains_moving_point_during(
        &self,
        pos: Point,
        vel: Vec2,
        pos_ref: f64,
        t1: f64,
        t2: f64,
    ) -> bool {
        if t2 < t1 {
            return false;
        }
        let mut lo = t1;
        let mut hi = t2;
        // Point coordinate: p0 + vp (t - pos_ref); rect faces: f0 + vq (t - ref).
        let mut constrain = |p0: f64, vp: f64, f0: f64, vq: f64, point_below: bool| -> bool {
            // point_below: p(t) >= f(t)  <=>  (f - p)(t) <= 0.
            let (c, m) = if point_below {
                ((f0 - vq * self.ref_time) - (p0 - vp * pos_ref), vq - vp)
            } else {
                ((p0 - vp * pos_ref) - (f0 - vq * self.ref_time), vp - vq)
            };
            const EPS: f64 = 1e-12;
            if m.abs() <= EPS {
                c <= EPS
            } else if m > 0.0 {
                hi = hi.min(-c / m);
                true
            } else {
                lo = lo.max(-c / m);
                true
            }
        };
        let ok = constrain(pos.x, vel.x, self.rect.lo.x, self.velocity.x, true)
            && constrain(pos.x, vel.x, self.rect.hi.x, self.velocity.x, false)
            && constrain(pos.y, vel.y, self.rect.lo.y, self.velocity.y, true)
            && constrain(pos.y, vel.y, self.rect.hi.y, self.velocity.y, false);
        ok && hi >= lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_point_and_rect() {
        let c = Circle::new(Point::new(0.0, 0.0), 5.0);
        assert!(c.contains_point(Point::new(3.0, 4.0)));
        assert!(!c.contains_point(Point::new(3.1, 4.0)));
        assert!(c.intersects_rect(&Rect::from_bounds(4.0, 0.0, 10.0, 1.0)));
        assert!(!c.intersects_rect(&Rect::from_bounds(4.0, 4.0, 10.0, 10.0)));
        assert_eq!(c.bounding_rect(), Rect::from_bounds(-5.0, -5.0, 5.0, 5.0));
    }

    #[test]
    fn circle_rect_corner_case() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Corner at distance sqrt(2)*0.8 < 1: intersects.
        assert!(c.intersects_rect(&Rect::from_bounds(0.56, 0.56, 2.0, 2.0)));
        // Corner at distance sqrt(2)*0.8 > 1 when corner = (0.8, 0.8).
        assert!(!c.intersects_rect(&Rect::from_bounds(0.8, 0.8, 2.0, 2.0)));
    }

    #[test]
    fn moving_circle_timeslice() {
        let mc = MovingCircle::new(
            Circle::new(Point::new(0.0, 0.0), 1.0),
            Point::new(1.0, 0.0),
            0.0,
        );
        assert_eq!(mc.at(3.0).center, Point::new(3.0, 0.0));
        // Stationary point at (5, 0): circle reaches it at t in [4, 6].
        let p = Point::new(5.0, 0.0);
        assert!(!mc.contains_moving_point_at(p, Point::ZERO, 0.0, 3.0));
        assert!(mc.contains_moving_point_at(p, Point::ZERO, 0.0, 5.0));
        assert!(mc.contains_moving_point_during(p, Point::ZERO, 0.0, 0.0, 10.0));
        assert!(!mc.contains_moving_point_during(p, Point::ZERO, 0.0, 0.0, 3.5));
    }

    #[test]
    fn moving_circle_closest_approach_inside_interval() {
        // Point crosses near the circle: closest approach at t=5 with
        // distance 0.5 < radius 1.
        let mc = MovingCircle::new(Circle::new(Point::new(0.0, 0.5), 1.0), Point::ZERO, 0.0);
        let pos = Point::new(-5.0, 0.0);
        let vel = Point::new(1.0, 0.0);
        assert!(mc.contains_moving_point_during(pos, vel, 0.0, 0.0, 10.0));
        // Outside the pass window nothing matches.
        assert!(!mc.contains_moving_point_during(pos, vel, 0.0, 0.0, 3.0));
    }

    #[test]
    fn moving_rect_timeslice_and_interval() {
        let mr = MovingRect::new(
            Rect::from_bounds(0.0, 0.0, 2.0, 2.0),
            Point::new(1.0, 0.0),
            0.0,
        );
        assert_eq!(mr.at(2.0), Rect::from_bounds(2.0, 0.0, 4.0, 2.0));
        let p = Point::new(6.0, 1.0);
        // Rect reaches x=6 at t=4 (leading face), leaves at t=6 (trailing).
        assert!(mr.contains_moving_point_at(p, Point::ZERO, 0.0, 5.0));
        assert!(!mr.contains_moving_point_at(p, Point::ZERO, 0.0, 3.0));
        assert!(mr.contains_moving_point_during(p, Point::ZERO, 0.0, 0.0, 10.0));
        assert!(!mr.contains_moving_point_during(p, Point::ZERO, 0.0, 0.0, 3.9));
    }

    #[test]
    fn moving_rect_point_moving_away_never_contained() {
        let mr = MovingRect::stationary(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), 0.0);
        // Point starts right of the rect moving further right.
        assert!(!mr.contains_moving_point_during(
            Point::new(2.0, 0.5),
            Point::new(1.0, 0.0),
            0.0,
            0.0,
            100.0
        ));
    }

    #[test]
    fn moving_rect_point_with_nonzero_ref_times() {
        let mr = MovingRect::new(
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Point::new(0.0, 0.0),
            5.0,
        );
        // Point anchored at t=10 at x=3 moving left at 1: at t=12 it is at
        // x=1 -> inside.
        let pos = Point::new(3.0, 0.5);
        let vel = Point::new(-1.0, 0.0);
        assert!(mr.contains_moving_point_at(pos, vel, 10.0, 12.0));
        assert!(!mr.contains_moving_point_at(pos, vel, 10.0, 10.0));
        assert!(mr.contains_moving_point_during(pos, vel, 10.0, 10.0, 20.0));
    }
}
