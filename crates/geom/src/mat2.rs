//! Symmetric 2×2 matrices and their eigen decomposition.
//!
//! The velocity analyzer runs PCA over 2-D velocity points, which for
//! two dimensions reduces to the closed-form eigen decomposition of the
//! 2×2 covariance matrix implemented here — no linear-algebra dependency
//! is needed.

use crate::point::{Point, Vec2};

/// A symmetric 2×2 matrix `[[a, b], [b, c]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

/// Result of an eigen decomposition: eigenvalues in descending order
/// with their (unit) eigenvectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eigen {
    /// Largest eigenvalue.
    pub l1: f64,
    /// Smallest eigenvalue.
    pub l2: f64,
    /// Unit eigenvector for `l1` — the 1st principal component when the
    /// matrix is a covariance matrix.
    pub v1: Vec2,
    /// Unit eigenvector for `l2`, orthogonal to `v1`.
    pub v2: Vec2,
}

impl Mat2 {
    /// Creates a symmetric matrix from its three independent entries.
    #[inline]
    pub fn symmetric(a: f64, b: f64, c: f64) -> Self {
        Mat2 { a, b, c }
    }

    /// The covariance matrix of a set of 2-D points (population
    /// covariance, i.e. normalized by `n`). Returns the zero matrix for
    /// an empty slice.
    pub fn covariance(points: &[Point]) -> Mat2 {
        let n = points.len();
        if n == 0 {
            return Mat2::symmetric(0.0, 0.0, 0.0);
        }
        let inv = 1.0 / n as f64;
        let mut mean = Point::ZERO;
        for p in points {
            mean += *p;
        }
        mean = mean * inv;
        let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
        for p in points {
            let d = *p - mean;
            sxx += d.x * d.x;
            sxy += d.x * d.y;
            syy += d.y * d.y;
        }
        Mat2::symmetric(sxx * inv, sxy * inv, syy * inv)
    }

    /// Second moment about the origin (no mean subtraction). The
    /// velocity analyzer uses this variant when fitting an *axis through
    /// the origin* of velocity space: a DVA is a direction, so points at
    /// `v` and `-v` (traffic flowing both ways along a road) must
    /// reinforce rather than cancel.
    pub fn second_moment_origin(points: &[Point]) -> Mat2 {
        let n = points.len();
        if n == 0 {
            return Mat2::symmetric(0.0, 0.0, 0.0);
        }
        let inv = 1.0 / n as f64;
        let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
        for p in points {
            sxx += p.x * p.x;
            sxy += p.x * p.y;
            syy += p.y * p.y;
        }
        Mat2::symmetric(sxx * inv, sxy * inv, syy * inv)
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        Point::new(self.a * v.x + self.b * v.y, self.b * v.x + self.c * v.y)
    }

    /// Trace.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.a + self.c
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.a * self.c - self.b * self.b
    }

    /// Closed-form eigen decomposition of the symmetric matrix.
    ///
    /// For the (degenerate) isotropic case — e.g. the covariance of a
    /// perfectly uniform velocity distribution — any direction is an
    /// eigenvector; the x-axis is returned by convention.
    pub fn eigen(&self) -> Eigen {
        let half_tr = self.trace() * 0.5;
        // Discriminant of the characteristic polynomial; always >= 0 for
        // symmetric matrices (clamped against rounding).
        let disc = (half_tr * half_tr - self.det()).max(0.0).sqrt();
        let l1 = half_tr + disc;
        let l2 = half_tr - disc;
        let v1 = if self.b.abs() > 1e-12 {
            Point::new(l1 - self.c, self.b)
                .normalized()
                .unwrap_or(Point::new(1.0, 0.0))
        } else if self.a >= self.c {
            Point::new(1.0, 0.0)
        } else {
            Point::new(0.0, 1.0)
        };
        // v2 is the orthogonal complement.
        let v2 = Point::new(-v1.y, v1.x);
        Eigen { l1, l2, v1, v2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn eigen_diagonal() {
        let e = Mat2::symmetric(4.0, 0.0, 1.0).eigen();
        assert!(approx_eq(e.l1, 4.0));
        assert!(approx_eq(e.l2, 1.0));
        assert!(approx_eq(e.v1.x.abs(), 1.0));
        assert!(approx_eq(e.v2.y.abs(), 1.0));
    }

    #[test]
    fn eigen_diagonal_swapped() {
        let e = Mat2::symmetric(1.0, 0.0, 9.0).eigen();
        assert!(approx_eq(e.l1, 9.0));
        assert!(approx_eq(e.v1.y.abs(), 1.0));
    }

    #[test]
    fn eigen_off_diagonal() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1) and (1,-1).
        let m = Mat2::symmetric(2.0, 1.0, 2.0);
        let e = m.eigen();
        assert!(approx_eq(e.l1, 3.0));
        assert!(approx_eq(e.l2, 1.0));
        assert!(approx_eq(e.v1.x.abs(), e.v1.y.abs()));
        // Verify the eigen equations M v = λ v.
        let mv1 = m.mul_vec(e.v1);
        assert!(approx_eq(mv1.x, e.l1 * e.v1.x));
        assert!(approx_eq(mv1.y, e.l1 * e.v1.y));
        let mv2 = m.mul_vec(e.v2);
        assert!(approx_eq(mv2.x, e.l2 * e.v2.x));
        assert!(approx_eq(mv2.y, e.l2 * e.v2.y));
    }

    #[test]
    fn eigen_isotropic_degenerate() {
        let e = Mat2::symmetric(2.0, 0.0, 2.0).eigen();
        assert!(approx_eq(e.l1, 2.0));
        assert!(approx_eq(e.l2, 2.0));
        assert!(approx_eq(e.v1.norm(), 1.0));
    }

    #[test]
    fn covariance_of_line() {
        // Points on the line y = x have their 1st PC along (1,1).
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, i as f64)).collect();
        let e = Mat2::covariance(&pts).eigen();
        assert!(approx_eq(e.l2, 0.0));
        assert!(approx_eq(e.v1.x.abs(), e.v1.y.abs()));
    }

    #[test]
    fn covariance_empty_and_single() {
        assert_eq!(Mat2::covariance(&[]), Mat2::symmetric(0.0, 0.0, 0.0));
        let c = Mat2::covariance(&[Point::new(3.0, 4.0)]);
        assert!(approx_eq(c.a, 0.0));
        assert!(approx_eq(c.c, 0.0));
    }

    #[test]
    fn second_moment_handles_bidirectional_traffic() {
        // Velocities +v and -v along the x-axis: mean-centered covariance
        // and origin moment agree here, but a *single* direction with all
        // traffic one way must still produce the axis through the origin.
        let pts = vec![
            Point::new(10.0, 0.1),
            Point::new(-10.0, -0.1),
            Point::new(9.0, -0.1),
            Point::new(-9.0, 0.1),
        ];
        let e = Mat2::second_moment_origin(&pts).eigen();
        assert!(e.v1.x.abs() > 0.99, "1st PC should align with x-axis");
    }

    #[test]
    fn trace_det() {
        let m = Mat2::symmetric(2.0, 1.0, 3.0);
        assert!(approx_eq(m.trace(), 5.0));
        assert!(approx_eq(m.det(), 5.0));
    }
}
