//! Time-parameterized bounding rectangles (TPBRs).
//!
//! A [`Tpbr`] is the geometry of a TPR/TPR\*-tree node: an MBR anchored
//! at a reference time plus a [`Vbr`] giving the velocity of each face.
//! The rectangle covered at time `t >= ref_time` is the MBR with each
//! face moved by its velocity times the elapsed time.
//!
//! This module also implements the analytic pieces of the Tao et al.
//! cost model used throughout the paper:
//!
//! * [`Tpbr::sweep_volume`] — the volume of the region swept by the
//!   (possibly shrinking) rectangle over a time interval, i.e.
//!   `∫ area(t) dt`, with extents clamped at zero. Equation (1) of the
//!   paper sums this quantity over all nodes to estimate query cost.
//! * [`Tpbr::transformed_wrt`] — the transformed node `N'` of a node
//!   w.r.t. a moving query `Q` (Section 3.1, Figure 3): the MBR is
//!   inflated by half the query extent per axis and the VBR becomes the
//!   relative velocity bound.
//! * [`Tpbr::intersection_interval`] — the exact time interval during
//!   which two moving rectangles intersect, used by interval and moving
//!   range queries.

use crate::point::{Point, Vec2};
use crate::rect::Rect;
use crate::vbr::Vbr;

/// A time-parameterized bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tpbr {
    /// Bounds at `ref_time`.
    pub rect: Rect,
    /// Face velocities.
    pub vbr: Vbr,
    /// Reference time at which `rect` holds.
    pub ref_time: f64,
}

impl Tpbr {
    /// Creates a TPBR from its parts.
    #[inline]
    pub fn new(rect: Rect, vbr: Vbr, ref_time: f64) -> Self {
        Tpbr {
            rect,
            vbr,
            ref_time,
        }
    }

    /// The TPBR of a single moving point.
    #[inline]
    pub fn from_moving_point(pos: Point, vel: Vec2, ref_time: f64) -> Self {
        Tpbr {
            rect: Rect::from_point(pos),
            vbr: Vbr::from_velocity(vel),
            ref_time,
        }
    }

    /// The identity for [`Tpbr::union`].
    #[inline]
    pub fn empty(ref_time: f64) -> Self {
        Tpbr {
            rect: Rect::EMPTY,
            vbr: Vbr::EMPTY,
            ref_time,
        }
    }

    /// True when this TPBR bounds nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rect.is_empty()
    }

    /// The (conservative) rectangle covered at absolute time `t`.
    ///
    /// For `t >= ref_time` faces move with their VBR velocities. Extents
    /// are clamped at zero: a transformed TPBR (relative to a query) may
    /// legitimately shrink through zero, at which point it covers a
    /// degenerate rectangle at the collapse point.
    pub fn rect_at(&self, t: f64) -> Rect {
        let dt = t - self.ref_time;
        let mut lo = Point::new(
            self.rect.lo.x + self.vbr.lo.x * dt,
            self.rect.lo.y + self.vbr.lo.y * dt,
        );
        let mut hi = Point::new(
            self.rect.hi.x + self.vbr.hi.x * dt,
            self.rect.hi.y + self.vbr.hi.y * dt,
        );
        if lo.x > hi.x {
            let m = (lo.x + hi.x) * 0.5;
            lo.x = m;
            hi.x = m;
        }
        if lo.y > hi.y {
            let m = (lo.y + hi.y) * 0.5;
            lo.y = m;
            hi.y = m;
        }
        Rect { lo, hi }
    }

    /// Re-anchors the TPBR at a later reference time. The set of points
    /// covered at any `t >= new_ref` is unchanged (faces keep moving with
    /// the same velocities).
    pub fn rebase(&self, new_ref: f64) -> Tpbr {
        Tpbr {
            rect: self.rect_at(new_ref),
            vbr: self.vbr,
            ref_time: new_ref,
        }
    }

    /// The tightest TPBR (anchored at `self.ref_time`) covering both
    /// operands at all times `t >= ref_time`.
    ///
    /// Both operands are first rebased to a common reference time; the
    /// MBRs and VBRs are then unioned independently, which is exactly the
    /// TPR-tree bounding rule.
    pub fn union(&self, other: &Tpbr) -> Tpbr {
        if self.is_empty() {
            let mut o = *other;
            if !crate::approx_eq(o.ref_time, self.ref_time) && !o.is_empty() {
                o = o.rebase(self.ref_time.max(o.ref_time));
            }
            return o;
        }
        if other.is_empty() {
            return *self;
        }
        let t0 = self.ref_time.max(other.ref_time);
        let a = self.rebase(t0);
        let b = other.rebase(t0);
        Tpbr {
            rect: a.rect.union(&b.rect),
            vbr: a.vbr.union(&b.vbr),
            ref_time: t0,
        }
    }

    /// Grows the TPBR in place to cover a moving point given at
    /// `self.ref_time`.
    pub fn expand_to_moving_point(&mut self, pos: Point, vel: Vec2) {
        self.rect.expand_to_point(pos);
        self.vbr.expand_to_velocity(vel);
    }

    /// Extent along x at time `t` (clamped at zero).
    #[inline]
    pub fn extent_x_at(&self, t: f64) -> f64 {
        let dt = t - self.ref_time;
        (self.rect.width() + self.vbr.growth_x() * dt).max(0.0)
    }

    /// Extent along y at time `t` (clamped at zero).
    #[inline]
    pub fn extent_y_at(&self, t: f64) -> f64 {
        let dt = t - self.ref_time;
        (self.rect.height() + self.vbr.growth_y() * dt).max(0.0)
    }

    /// Area at time `t`.
    #[inline]
    pub fn area_at(&self, t: f64) -> f64 {
        self.extent_x_at(t) * self.extent_y_at(t)
    }

    /// The transformed node `N'` w.r.t. a moving query `q` (Section 3.1):
    /// the MBR is inflated by `|QRi|/2` per axis and the VBR becomes
    /// `<NVi- - QVi+, NVi+ - QVi->`. Testing whether `N` intersects `Q`
    /// over a time interval is equivalent to testing whether `N'`
    /// contains the (moving) center of `Q`.
    pub fn transformed_wrt(&self, q: &Tpbr) -> Tpbr {
        let base = self.rebase(self.ref_time.max(q.ref_time));
        let qr = q.rect_at(base.ref_time);
        Tpbr {
            rect: base.rect.inflate(qr.width() * 0.5, qr.height() * 0.5),
            vbr: base.vbr.transform_wrt(&q.vbr),
            ref_time: base.ref_time,
        }
    }

    /// `∫_{t1}^{t2} area(t) dt` — the sweep volume of the rectangle over
    /// an absolute time interval, with per-axis extents clamped at zero.
    ///
    /// Summed over all tree nodes (after transforming w.r.t. the query)
    /// this is the expected number of node accesses of Equation (1); the
    /// TPR\*-tree insertion algorithm minimizes increases of this
    /// quantity over the tree horizon.
    pub fn sweep_volume(&self, t1: f64, t2: f64) -> f64 {
        if self.is_empty() || t2 <= t1 {
            return 0.0;
        }
        // Work in local time s = t - ref_time.
        let s1 = t1 - self.ref_time;
        let s2 = t2 - self.ref_time;
        let ex0 = self.rect.width();
        let ey0 = self.rect.height();
        let rx = self.vbr.growth_x();
        let ry = self.vbr.growth_y();
        // Positivity windows of each (linear) extent.
        let (ax, bx) = positive_window(ex0, rx, s1, s2);
        let (ay, by) = positive_window(ey0, ry, s1, s2);
        let a = ax.max(ay);
        let b = bx.min(by);
        if b <= a {
            return 0.0;
        }
        // ∫ (ex0 + rx s)(ey0 + ry s) ds over [a, b].
        let c0 = ex0 * ey0;
        let c1 = ex0 * ry + ey0 * rx;
        let c2 = rx * ry;
        let f = |s: f64| c0 * s + c1 * s * s / 2.0 + c2 * s * s * s / 3.0;
        f(b) - f(a)
    }

    /// True when the TPBR covers point `p` at time `t`.
    #[inline]
    pub fn contains_point_at(&self, p: Point, t: f64) -> bool {
        self.rect_at(t).contains_point(p)
    }

    /// True when this TPBR intersects `other` at time `t`.
    #[inline]
    pub fn intersects_at(&self, other: &Tpbr, t: f64) -> bool {
        self.rect_at(t).intersects(&other.rect_at(t))
    }

    /// The sub-interval of `[t1, t2]` during which the two moving
    /// rectangles intersect, or `None` when they never do.
    ///
    /// Each face-ordering constraint (`lo_a(t) <= hi_b(t)` etc.) is
    /// linear in `t`, so the answer is the intersection of four
    /// half-lines with `[t1, t2]`.
    pub fn intersection_interval(&self, other: &Tpbr, t1: f64, t2: f64) -> Option<(f64, f64)> {
        if self.is_empty() || other.is_empty() || t2 < t1 {
            return None;
        }
        let mut lo = t1;
        let mut hi = t2;
        // lo_a(t) <= hi_b(t): (a.lo + a.vlo (t - ra)) - (b.hi + b.vhi (t - rb)) <= 0
        let mut apply = |pa: f64, va: f64, ra: f64, pb: f64, vb: f64, rb: f64| -> bool {
            // g(t) = (pa - va*ra) - (pb - vb*rb) + (va - vb) t <= 0
            let c = (pa - va * ra) - (pb - vb * rb);
            let m = va - vb;
            constrain_le_zero(c, m, &mut lo, &mut hi)
        };
        let (a, b) = (self, other);
        let ok = apply(
            a.rect.lo.x,
            a.vbr.lo.x,
            a.ref_time,
            b.rect.hi.x,
            b.vbr.hi.x,
            b.ref_time,
        ) && apply(
            b.rect.lo.x,
            b.vbr.lo.x,
            b.ref_time,
            a.rect.hi.x,
            a.vbr.hi.x,
            a.ref_time,
        ) && apply(
            a.rect.lo.y,
            a.vbr.lo.y,
            a.ref_time,
            b.rect.hi.y,
            b.vbr.hi.y,
            b.ref_time,
        ) && apply(
            b.rect.lo.y,
            b.vbr.lo.y,
            b.ref_time,
            a.rect.hi.y,
            a.vbr.hi.y,
            a.ref_time,
        );
        if ok && hi >= lo {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Convenience: true when the two moving rectangles intersect at any
    /// point of `[t1, t2]`.
    #[inline]
    pub fn intersects_during(&self, other: &Tpbr, t1: f64, t2: f64) -> bool {
        self.intersection_interval(other, t1, t2).is_some()
    }
}

/// Clips `[lo, hi]` to `{t : c + m t <= 0}`. Returns `false` when the
/// constraint is globally infeasible.
#[inline]
fn constrain_le_zero(c: f64, m: f64, lo: &mut f64, hi: &mut f64) -> bool {
    const EPS: f64 = 1e-12;
    if m.abs() <= EPS {
        // Constant constraint.
        c <= EPS
    } else if m > 0.0 {
        // t <= -c/m
        *hi = hi.min(-c / m);
        true
    } else {
        // t >= -c/m
        *lo = lo.max(-c / m);
        true
    }
}

/// The sub-interval of `[s1, s2]` where the linear extent `e0 + r s` is
/// positive. Returns an empty interval `(s2, s2)` when never positive.
#[inline]
fn positive_window(e0: f64, r: f64, s1: f64, s2: f64) -> (f64, f64) {
    const EPS: f64 = 1e-12;
    if r.abs() <= EPS {
        if e0 > 0.0 {
            (s1, s2)
        } else {
            (s2, s2)
        }
    } else if r > 0.0 {
        // Positive for s > -e0/r.
        ((-e0 / r).max(s1), s2)
    } else {
        // Positive for s < -e0/r.
        (s1, (-e0 / r).min(s2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn tp(x0: f64, y0: f64, x1: f64, y1: f64, vbr: Vbr, t: f64) -> Tpbr {
        Tpbr::new(Rect::from_bounds(x0, y0, x1, y1), vbr, t)
    }

    #[test]
    fn rect_at_grows_with_vbr() {
        let n = tp(
            0.0,
            0.0,
            2.0,
            2.0,
            Vbr::new(Point::new(-1.0, -2.0), Point::new(1.0, 0.0)),
            0.0,
        );
        let r = n.rect_at(2.0);
        assert_eq!(r, Rect::from_bounds(-2.0, -4.0, 4.0, 2.0));
    }

    #[test]
    fn rect_at_collapses_when_shrinking() {
        // Faces approach each other at rate 2 from extent 2: collapse at t=1.
        let n = tp(
            0.0,
            0.0,
            2.0,
            2.0,
            Vbr::new(Point::new(1.0, 0.0), Point::new(-1.0, 0.0)),
            0.0,
        );
        let r = n.rect_at(3.0);
        assert!(approx_eq(r.width(), 0.0));
        assert!(approx_eq(r.height(), 2.0));
    }

    #[test]
    fn rebase_preserves_future_rects() {
        let n = tp(
            0.0,
            0.0,
            2.0,
            2.0,
            Vbr::new(Point::new(-1.0, 0.5), Point::new(2.0, 1.0)),
            1.0,
        );
        let rb = n.rebase(3.0);
        for t in [3.0, 4.5, 10.0] {
            assert_eq!(n.rect_at(t), rb.rect_at(t));
        }
    }

    #[test]
    fn union_covers_both() {
        let a = Tpbr::from_moving_point(Point::new(0.0, 0.0), Point::new(1.0, 0.0), 0.0);
        let b = Tpbr::from_moving_point(Point::new(4.0, 4.0), Point::new(-1.0, -1.0), 0.0);
        let u = a.union(&b);
        for t in [0.0, 1.0, 2.0, 5.0] {
            assert!(u
                .rect_at(t)
                .contains_point(Point::new(0.0, 0.0).advance(Point::new(1.0, 0.0), t)));
            assert!(u
                .rect_at(t)
                .contains_point(Point::new(4.0, 4.0).advance(Point::new(-1.0, -1.0), t)));
        }
    }

    #[test]
    fn union_with_empty() {
        let a = Tpbr::from_moving_point(Point::new(1.0, 1.0), Point::new(0.0, 0.0), 0.0);
        let e = Tpbr::empty(0.0);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
    }

    #[test]
    fn sweep_volume_static_rect() {
        // Static 2x3 rect over 5 time units: volume = 30.
        let n = tp(0.0, 0.0, 2.0, 3.0, Vbr::ZERO, 0.0);
        assert!(approx_eq(n.sweep_volume(0.0, 5.0), 30.0));
    }

    #[test]
    fn sweep_volume_matches_paper_equation_4() {
        // Equation (4): a d x d node growing at speed v on all faces has
        // volume d^2 th + 2 d v th^2 + (4/3) v^2 th^3.
        let d = 2.0;
        let v = 0.5;
        let th = 3.0;
        let n = tp(
            0.0,
            0.0,
            d,
            d,
            Vbr::new(Point::new(-v, -v), Point::new(v, v)),
            0.0,
        );
        let expect = d * d * th + 2.0 * d * v * th * th + 4.0 / 3.0 * v * v * th * th * th;
        assert!(approx_eq(n.sweep_volume(0.0, th), expect));
    }

    #[test]
    fn sweep_volume_clamps_collapsed_axis() {
        // Extent 2 shrinking at rate 2 per axis: positive only until t=1.
        let n = tp(
            0.0,
            0.0,
            2.0,
            2.0,
            Vbr::new(Point::new(1.0, 1.0), Point::new(-1.0, -1.0)),
            0.0,
        );
        // ∫_0^1 (2-2t)^2 dt = 4/3, and nothing afterwards.
        assert!(approx_eq(n.sweep_volume(0.0, 5.0), 4.0 / 3.0));
    }

    #[test]
    fn sweep_volume_with_offset_interval() {
        let n = tp(
            0.0,
            0.0,
            1.0,
            1.0,
            Vbr::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            0.0,
        );
        // area(t) = (1 + t) * 1 ; ∫_1^3 = [t + t^2/2] = (3+4.5)-(1+0.5) = 6.
        assert!(approx_eq(n.sweep_volume(1.0, 3.0), 6.0));
    }

    #[test]
    fn transformed_wrt_inflates_and_relativizes() {
        let n = tp(2.0, 2.0, 4.0, 4.0, Vbr::ZERO, 0.0);
        let q = Tpbr::new(
            Rect::from_bounds(0.0, 0.0, 2.0, 1.0),
            Vbr::from_velocity(Point::new(1.0, 0.0)),
            0.0,
        );
        let t = n.transformed_wrt(&q);
        assert_eq!(t.rect, Rect::from_bounds(1.0, 1.5, 5.0, 4.5));
        // Node static, query moving +1 in x: relative velocity -1 on both faces.
        assert_eq!(t.vbr.lo, Point::new(-1.0, 0.0));
        assert_eq!(t.vbr.hi, Point::new(-1.0, 0.0));
    }

    #[test]
    fn transformed_node_equivalence_with_direct_intersection() {
        // N intersects Q at time t iff N' contains Q's center at t.
        let n = tp(
            0.0,
            0.0,
            2.0,
            2.0,
            Vbr::new(Point::new(0.2, -0.1), Point::new(0.5, 0.3)),
            0.0,
        );
        let q = Tpbr::new(
            Rect::from_bounds(5.0, 1.0, 7.0, 2.0),
            Vbr::from_velocity(Point::new(-1.0, 0.0)),
            0.0,
        );
        let np = n.transformed_wrt(&q);
        // In the transformed view the query collapses to its *static*
        // center point: N' absorbs the query's motion in its VBR.
        let qc0 = q.rect.center();
        for i in 0..60 {
            let t = i as f64 * 0.25;
            let direct = n.intersects_at(&q, t);
            let via_transform = np.contains_point_at(qc0, t);
            assert_eq!(direct, via_transform, "mismatch at t={t}");
        }
    }

    #[test]
    fn intersection_interval_head_on() {
        // Unit squares approaching along x: gap 3 closes at rate 1.
        let a = tp(
            0.0,
            0.0,
            1.0,
            1.0,
            Vbr::from_velocity(Point::new(1.0, 0.0)),
            0.0,
        );
        let b = tp(4.0, 0.0, 5.0, 1.0, Vbr::ZERO, 0.0);
        // Leading face reaches b at t=3; trailing face exits at t=5.
        let (lo, hi) = a.intersection_interval(&b, 0.0, 100.0).unwrap();
        assert!(approx_eq(lo, 3.0));
        assert!(approx_eq(hi, 5.0));
        // Constrained window that ends before contact:
        assert!(a.intersection_interval(&b, 0.0, 2.5).is_none());
    }

    #[test]
    fn intersection_interval_flyby() {
        // b passes over a: contact while x-overlap holds.
        let a = tp(0.0, 0.0, 1.0, 1.0, Vbr::ZERO, 0.0);
        let b = tp(
            2.0,
            0.0,
            3.0,
            1.0,
            Vbr::from_velocity(Point::new(-1.0, 0.0)),
            0.0,
        );
        // b.lo(t) = 2 - t <= 1 from t=1; b.hi(t) = 3 - t >= 0 until t=3.
        let (lo, hi) = a.intersection_interval(&b, 0.0, 10.0).unwrap();
        assert!(approx_eq(lo, 1.0));
        assert!(approx_eq(hi, 3.0));
    }

    #[test]
    fn intersection_interval_differing_ref_times() {
        let a = tp(0.0, 0.0, 1.0, 1.0, Vbr::ZERO, 0.0);
        // Same geometry as the flyby test but b anchored at t=2 (already
        // advanced to x in [0,1] at its own reference time).
        let b = tp(
            0.0,
            0.0,
            1.0,
            1.0,
            Vbr::from_velocity(Point::new(-1.0, 0.0)),
            2.0,
        );
        let (lo, hi) = a.intersection_interval(&b, 0.0, 10.0).unwrap();
        // b's faces at time t are [(0 - (t-2)), (1 - (t-2))]; overlap with
        // [0,1] holds while t-2 in [-1, 1] i.e. t in [1, 3].
        assert!(approx_eq(lo, 1.0));
        assert!(approx_eq(hi, 3.0));
    }

    #[test]
    fn never_intersecting_parallel_motion() {
        let a = tp(
            0.0,
            0.0,
            1.0,
            1.0,
            Vbr::from_velocity(Point::new(1.0, 0.0)),
            0.0,
        );
        let b = tp(
            0.0,
            3.0,
            1.0,
            4.0,
            Vbr::from_velocity(Point::new(1.0, 0.0)),
            0.0,
        );
        assert!(a.intersection_interval(&b, 0.0, 1000.0).is_none());
    }

    #[test]
    fn expand_to_moving_point() {
        let mut n = Tpbr::from_moving_point(Point::new(1.0, 1.0), Point::new(0.0, 1.0), 0.0);
        n.expand_to_moving_point(Point::new(3.0, 0.0), Point::new(-1.0, 2.0));
        assert_eq!(n.rect, Rect::from_bounds(1.0, 0.0, 3.0, 1.0));
        assert_eq!(n.vbr.lo, Point::new(-1.0, 1.0));
        assert_eq!(n.vbr.hi, Point::new(0.0, 2.0));
    }
}
