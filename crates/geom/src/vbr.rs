//! Velocity bounding rectangles (VBRs).

use crate::point::Vec2;

/// A velocity bounding rectangle: per-axis minimum and maximum
/// velocities of the objects grouped under a TPR-tree node.
///
/// `lo.x` (`NV 1-` in the paper's notation) is the speed at which the
/// node's lower x-face moves, `hi.x` (`NV 1+`) the upper x-face, and
/// likewise for y. A negative `lo` component means the lower face is
/// moving towards the negative axis direction, i.e. the node is growing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vbr {
    pub lo: Vec2,
    pub hi: Vec2,
}

impl Vbr {
    /// The VBR of a stationary object: all faces at rest.
    pub const ZERO: Vbr = Vbr {
        lo: Vec2 { x: 0.0, y: 0.0 },
        hi: Vec2 { x: 0.0, y: 0.0 },
    };

    /// The identity for [`Vbr::union`]: every face velocity dominated by
    /// any real velocity.
    pub const EMPTY: Vbr = Vbr {
        lo: Vec2 {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        hi: Vec2 {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a VBR from face velocities.
    #[inline]
    pub fn new(lo: Vec2, hi: Vec2) -> Self {
        Vbr { lo, hi }
    }

    /// The VBR of a single object moving with velocity `v`: all four
    /// faces move with the object.
    #[inline]
    pub fn from_velocity(v: Vec2) -> Self {
        Vbr { lo: v, hi: v }
    }

    /// True when this is the [`Vbr::EMPTY`] identity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// The tightest VBR dominating both operands: lower faces take the
    /// minimum (fastest leftward/downward) velocity, upper faces the
    /// maximum.
    #[inline]
    pub fn union(&self, other: &Vbr) -> Vbr {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Vbr {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Expands the VBR to dominate a point velocity.
    #[inline]
    pub fn expand_to_velocity(&mut self, v: Vec2) {
        *self = self.union(&Vbr::from_velocity(v));
    }

    /// Rate of extent growth along x: `hi.x - lo.x`. Non-negative for
    /// any VBR produced by unions of object velocities, but transformed
    /// VBRs (relative to a query, Section 3.1) may shrink.
    #[inline]
    pub fn growth_x(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Rate of extent growth along y.
    #[inline]
    pub fn growth_y(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// The transformed VBR of a node w.r.t. a moving query `q` (Tao et
    /// al. cost model): `<NV i- - QV i+, NV i+ - QV i->`.
    #[inline]
    pub fn transform_wrt(&self, q: &Vbr) -> Vbr {
        Vbr {
            lo: Vec2::new(self.lo.x - q.hi.x, self.lo.y - q.hi.y),
            hi: Vec2::new(self.hi.x - q.lo.x, self.hi.y - q.lo.y),
        }
    }

    /// Largest absolute face speed, any axis (used for diagnostics and
    /// expansion-rate figures).
    #[inline]
    pub fn max_abs_speed(&self) -> f64 {
        self.lo
            .x
            .abs()
            .max(self.hi.x.abs())
            .max(self.lo.y.abs())
            .max(self.hi.y.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::point::Point;

    #[test]
    fn union_dominates() {
        let a = Vbr::from_velocity(Point::new(2.0, -1.0));
        let b = Vbr::from_velocity(Point::new(-1.0, 3.0));
        let u = a.union(&b);
        assert_eq!(u.lo, Point::new(-1.0, -1.0));
        assert_eq!(u.hi, Point::new(2.0, 3.0));
        assert!(approx_eq(u.growth_x(), 3.0));
        assert!(approx_eq(u.growth_y(), 4.0));
    }

    #[test]
    fn empty_is_identity() {
        let a = Vbr::from_velocity(Point::new(2.0, -1.0));
        assert_eq!(Vbr::EMPTY.union(&a), a);
        assert_eq!(a.union(&Vbr::EMPTY), a);
        assert!(Vbr::EMPTY.is_empty());
        assert!(!Vbr::ZERO.is_empty());
    }

    #[test]
    fn transform_matches_paper_definition() {
        // Node faces move at [-1, 2] x, [0, 1] y; query at [1, 1] x, [-1, 0] y.
        let n = Vbr::new(Point::new(-1.0, 0.0), Point::new(2.0, 1.0));
        let q = Vbr::new(Point::new(1.0, -1.0), Point::new(1.0, 0.0));
        let t = n.transform_wrt(&q);
        // lo = NV- - QV+ = (-1-1, 0-0) ; hi = NV+ - QV- = (2-1, 1-(-1)).
        assert_eq!(t.lo, Point::new(-2.0, 0.0));
        assert_eq!(t.hi, Point::new(1.0, 2.0));
    }

    #[test]
    fn expand_to_velocity() {
        let mut v = Vbr::from_velocity(Point::new(1.0, 1.0));
        v.expand_to_velocity(Point::new(-2.0, 4.0));
        assert_eq!(v.lo, Point::new(-2.0, 1.0));
        assert_eq!(v.hi, Point::new(1.0, 4.0));
    }

    #[test]
    fn max_abs_speed() {
        let v = Vbr::new(Point::new(-5.0, 1.0), Point::new(2.0, 3.0));
        assert!(approx_eq(v.max_abs_speed(), 5.0));
    }
}
