//! # vp-geom — geometry kernel for moving-object indexing
//!
//! This crate provides the geometric primitives shared by every index in
//! the velocity-partitioning (VP) workspace:
//!
//! * [`Point`] / [`Vec2`] — 2-D positions and velocity vectors.
//! * [`Rect`] — axis-aligned minimum bounding rectangles (MBRs).
//! * [`Vbr`] — velocity bounding rectangles (per-axis min/max speeds).
//! * [`Tpbr`] — *time-parameterized* bounding rectangles: an MBR anchored
//!   at a reference time together with a VBR describing how each face
//!   moves. This is the node geometry of the TPR/TPR\*-tree and the basis
//!   of the Tao et al. cost model (sweep-region integrals).
//! * [`Mat2`] — symmetric 2×2 matrices with closed-form eigen
//!   decomposition, used by the PCA step of the velocity analyzer.
//! * [`Frame`] — rotation frames mapping world coordinates into the
//!   coordinate system of a dominant velocity axis (DVA) and back.
//! * [`Circle`] / [`MovingRect`] — query shapes (circular range queries
//!   and moving range queries).
//!
//! All computations use `f64`. The crate is `no_std`-agnostic in spirit
//! (no I/O, no allocation outside of trivial helpers) and is fully
//! deterministic, which the reproduction harness relies on.

pub mod frame;
pub mod mat2;
pub mod point;
pub mod rect;
pub mod shapes;
pub mod tpbr;
pub mod vbr;

pub use frame::Frame;
pub use mat2::Mat2;
pub use point::{Point, Vec2};
pub use rect::Rect;
pub use shapes::{Circle, MovingCircle, MovingRect};
pub use tpbr::Tpbr;
pub use vbr::Vbr;

/// Comparison tolerance used across the geometry kernel.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`EPS`] (scaled by the
/// magnitude of the operands so large coordinates keep working).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPS * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0001));
        assert!(approx_eq(1e12, 1e12 + 1e-3 * 0.5));
    }
}
