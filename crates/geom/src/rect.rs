//! Axis-aligned rectangles (MBRs).

use crate::point::Point;

/// An axis-aligned rectangle described by its lower-left and upper-right
/// corners. Degenerate rectangles (zero extent) are valid; an *empty*
/// rectangle — one whose `lo` exceeds `hi` — is representable through
/// [`Rect::EMPTY`] and behaves as the identity for [`Rect::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub lo: Point,
    pub hi: Point,
}

impl Rect {
    /// The empty rectangle: the identity for unions, intersects nothing.
    pub const EMPTY: Rect = Rect {
        lo: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        hi: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a rectangle from corner points. Debug-asserts that the
    /// rectangle is well-formed (`lo <= hi` per axis).
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "malformed Rect: lo={lo:?} hi={hi:?}"
        );
        Rect { lo, hi }
    }

    /// Creates a rectangle from individual bounds.
    #[inline]
    pub fn from_bounds(x_lo: f64, y_lo: f64, x_hi: f64, y_hi: f64) -> Self {
        Rect::new(Point::new(x_lo, y_lo), Point::new(x_hi, y_hi))
    }

    /// A zero-extent rectangle at `p`.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// A rectangle centered on `c` with half-extents `hx`, `hy`.
    #[inline]
    pub fn centered(c: Point, hx: f64, hy: f64) -> Self {
        Rect::new(
            Point::new(c.x - hx, c.y - hy),
            Point::new(c.x + hx, c.y + hy),
        )
    }

    /// True when this rectangle is the empty rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Extent along the x-axis (0 for empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Extent along the y-axis (0 for empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter; the R\*-tree "margin" metric.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point. Undefined for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// True when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// True when the two rectangles share at least one point (closed
    /// rectangles: touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The intersection of two rectangles, or [`Rect::EMPTY`] when they
    /// do not intersect.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        if !self.intersects(other) {
            return Rect::EMPTY;
        }
        Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// The smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grows the rectangle to cover `p`.
    #[inline]
    pub fn expand_to_point(&mut self, p: Point) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// The rectangle inflated by `dx`/`dy` on each side (used for the
    /// transformed-node construction in the Tao cost model, where the
    /// node MBR is inflated by half the query extent per axis).
    #[inline]
    pub fn inflate(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            lo: Point::new(self.lo.x - dx, self.lo.y - dy),
            hi: Point::new(self.hi.x + dx, self.hi.y + dy),
        }
    }

    /// Overlap area with `other`.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        self.intersection(other).area()
    }

    /// Minimum distance from `p` to this rectangle (0 when inside).
    #[inline]
    pub fn min_dist_to_point(&self, p: Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx.hypot(dy)
    }

    /// The four corner points in counter-clockwise order starting from
    /// `lo`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_bounds(a, b, c, d)
    }

    #[test]
    fn basic_metrics() {
        let rc = r(0.0, 0.0, 4.0, 2.0);
        assert!(approx_eq(rc.area(), 8.0));
        assert!(approx_eq(rc.margin(), 6.0));
        assert_eq!(rc.center(), Point::new(2.0, 1.0));
        assert!(approx_eq(rc.width(), 4.0));
        assert!(approx_eq(rc.height(), 2.0));
    }

    #[test]
    fn empty_behaviour() {
        assert!(Rect::EMPTY.is_empty());
        assert!(approx_eq(Rect::EMPTY.area(), 0.0));
        let rc = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(Rect::EMPTY.union(&rc), rc);
        assert_eq!(rc.union(&Rect::EMPTY), rc);
        assert!(!Rect::EMPTY.intersects(&rc));
        assert!(rc.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_point(Point::new(10.0, 10.0)));
        assert!(!outer.contains_point(Point::new(10.0001, 10.0)));
    }

    #[test]
    fn intersection_union() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), r(2.0, 2.0, 4.0, 4.0));
        assert!(approx_eq(a.overlap_area(&b), 4.0));
        assert_eq!(a.union(&b), r(0.0, 0.0, 6.0, 6.0));

        let c = r(5.0, 5.0, 7.0, 7.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
        // Touching edges count as intersecting (closed rectangles).
        let d = r(4.0, 0.0, 5.0, 4.0);
        assert!(a.intersects(&d));
        assert!(approx_eq(a.overlap_area(&d), 0.0));
    }

    #[test]
    fn inflate_and_expand() {
        let a = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.inflate(0.5, 1.0), r(0.5, 0.0, 2.5, 3.0));
        let mut b = Rect::from_point(Point::new(1.0, 1.0));
        b.expand_to_point(Point::new(-1.0, 3.0));
        assert_eq!(b, r(-1.0, 1.0, 1.0, 3.0));
    }

    #[test]
    fn min_dist() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(approx_eq(a.min_dist_to_point(Point::new(1.0, 1.0)), 0.0));
        assert!(approx_eq(a.min_dist_to_point(Point::new(5.0, 2.0)), 3.0));
        assert!(approx_eq(a.min_dist_to_point(Point::new(5.0, 6.0)), 5.0));
    }

    #[test]
    fn corners_order() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(1.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 2.0));
        assert_eq!(c[3], Point::new(0.0, 2.0));
    }
}
