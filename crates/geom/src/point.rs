//! 2-D points and vectors.
//!
//! [`Point`] doubles as a position and, via the [`Vec2`] alias, as a
//! velocity vector. The velocity analyzer treats object velocities as
//! points in *velocity space* (the paper calls them "velocity points"),
//! so sharing one type keeps the code honest about that identification.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D point (or vector) with `f64` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// Alias emphasising vector (velocity / displacement) usage.
pub type Vec2 = Point;

impl Point {
    /// The origin `(0, 0)`.
    pub const ZERO: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product). The
    /// magnitude equals the area of the parallelogram spanned by the two
    /// vectors; the sign gives orientation.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (cheaper than [`Point::norm`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the unit vector in the direction of `self`, or `None` for
    /// the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Perpendicular distance from this point (treated as a position in
    /// velocity space) to the line through the origin with unit direction
    /// `axis`.
    ///
    /// This is the distance measure of the paper's clustering algorithm:
    /// velocity points are assigned to the DVA whose axis they are
    /// closest to (Section 5.1).
    #[inline]
    pub fn perp_distance_to_axis(self, axis: Vec2) -> f64 {
        // |self × axis| / |axis|; axis is expected to be unit length but
        // we normalise defensively so callers cannot misuse the API.
        let n = axis.norm();
        if n <= f64::EPSILON {
            return self.norm();
        }
        (self.cross(axis) / n).abs()
    }

    /// Projection length of this vector onto unit direction `axis`.
    #[inline]
    pub fn proj_on_axis(self, axis: Vec2) -> f64 {
        let n = axis.norm();
        if n <= f64::EPSILON {
            return 0.0;
        }
        self.dot(axis) / n
    }

    /// Position of a point moving from `self` with velocity `v` after
    /// `dt` time units.
    #[inline]
    pub fn advance(self, v: Vec2, dt: f64) -> Point {
        Point::new(self.x + v.x * dt, self.y + v.y * dt)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Point::new(3.0, 4.0);
        assert!(approx_eq(a.norm(), 5.0));
        assert!(approx_eq(a.norm_sq(), 25.0));
        let b = Point::new(-4.0, 3.0);
        assert!(approx_eq(a.dot(b), 0.0));
        assert!(approx_eq(a.cross(b), 25.0));
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Point::ZERO.normalized().is_none());
        let u = Point::new(0.0, 2.0).normalized().unwrap();
        assert!(approx_eq(u.y, 1.0));
    }

    #[test]
    fn perp_distance_to_axis_matches_geometry() {
        // Point (1, 1) relative to the x-axis: perpendicular distance 1.
        let p = Point::new(1.0, 1.0);
        assert!(approx_eq(
            p.perp_distance_to_axis(Point::new(1.0, 0.0)),
            1.0
        ));
        // Distance to the 45-degree axis is 0 for points on the axis.
        let axis = Point::new(1.0, 1.0);
        assert!(approx_eq(p.perp_distance_to_axis(axis), 0.0));
        // Non-unit axes are normalised internally.
        let q = Point::new(0.0, 3.0);
        assert!(approx_eq(
            q.perp_distance_to_axis(Point::new(5.0, 0.0)),
            3.0
        ));
        // Degenerate axis falls back to point norm.
        assert!(approx_eq(q.perp_distance_to_axis(Point::ZERO), 3.0));
    }

    #[test]
    fn projection() {
        let p = Point::new(3.0, 4.0);
        assert!(approx_eq(p.proj_on_axis(Point::new(1.0, 0.0)), 3.0));
        assert!(approx_eq(p.proj_on_axis(Point::new(0.0, -1.0)), -4.0));
        assert!(approx_eq(p.proj_on_axis(Point::ZERO), 0.0));
    }

    #[test]
    fn advance_moves_linearly() {
        let p = Point::new(1.0, 1.0).advance(Point::new(2.0, -1.0), 3.0);
        assert_eq!(p, Point::new(7.0, -2.0));
    }

    #[test]
    fn min_max() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }
}
