//! Rotation frames for DVA coordinate systems.
//!
//! A DVA index stores objects in the coordinate system whose x-axis is
//! the dominant velocity axis (the partition's 1st principal component)
//! and whose origin is a chosen pivot (the center of the data space).
//! [`Frame`] performs the forward and inverse transforms for positions,
//! velocities, and query regions — the "simple matrix multiplication" of
//! Sections 5.3–5.4.

use crate::point::{Point, Vec2};
use crate::rect::Rect;

/// An orthonormal rotation frame: `axis` is the world-space direction of
/// the frame's x-axis (unit length), `pivot` the world-space point that
/// maps to the frame origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    axis: Vec2,
    pivot: Point,
}

impl Frame {
    /// The identity frame (world coordinates), as used by the outlier
    /// index.
    pub fn identity() -> Frame {
        Frame {
            axis: Point::new(1.0, 0.0),
            pivot: Point::ZERO,
        }
    }

    /// Creates a frame whose x-axis points along `axis` (normalized
    /// internally; a zero axis falls back to the world x-axis) rotating
    /// about `pivot`.
    pub fn new(axis: Vec2, pivot: Point) -> Frame {
        Frame {
            axis: axis.normalized().unwrap_or(Point::new(1.0, 0.0)),
            pivot,
        }
    }

    /// The world-space unit direction of the frame x-axis.
    #[inline]
    pub fn axis(&self) -> Vec2 {
        self.axis
    }

    /// The pivot (world-space origin of the frame).
    #[inline]
    pub fn pivot(&self) -> Point {
        self.pivot
    }

    /// True when this is (numerically) the identity frame.
    pub fn is_identity(&self) -> bool {
        (self.axis.x - 1.0).abs() < 1e-12
            && self.axis.y.abs() < 1e-12
            && self.pivot.x.abs() < 1e-12
            && self.pivot.y.abs() < 1e-12
    }

    /// World position → frame position.
    #[inline]
    pub fn to_frame(&self, p: Point) -> Point {
        let d = p - self.pivot;
        Point::new(
            d.x * self.axis.x + d.y * self.axis.y,
            -d.x * self.axis.y + d.y * self.axis.x,
        )
    }

    /// Frame position → world position.
    #[inline]
    pub fn from_frame(&self, p: Point) -> Point {
        Point::new(
            p.x * self.axis.x - p.y * self.axis.y + self.pivot.x,
            p.x * self.axis.y + p.y * self.axis.x + self.pivot.y,
        )
    }

    /// World velocity → frame velocity (rotation only — velocities are
    /// direction vectors, unaffected by the pivot translation).
    #[inline]
    pub fn vel_to_frame(&self, v: Vec2) -> Vec2 {
        Point::new(
            v.x * self.axis.x + v.y * self.axis.y,
            -v.x * self.axis.y + v.y * self.axis.x,
        )
    }

    /// Frame velocity → world velocity.
    #[inline]
    pub fn vel_from_frame(&self, v: Vec2) -> Vec2 {
        Point::new(
            v.x * self.axis.x - v.y * self.axis.y,
            v.x * self.axis.y + v.y * self.axis.x,
        )
    }

    /// The axis-aligned MBR, *in frame coordinates*, of a world-space
    /// rectangle (Algorithm 3, line 4: the transformed query range is
    /// bounded by an axis-aligned MBR in the DVA coordinate space).
    pub fn rect_to_frame_mbr(&self, r: &Rect) -> Rect {
        if r.is_empty() {
            return Rect::EMPTY;
        }
        let mut out = Rect::EMPTY;
        for c in r.corners() {
            out.expand_to_point(self.to_frame(c));
        }
        out
    }

    /// The axis-aligned MBR, *in world coordinates*, of a frame-space
    /// rectangle (used to size DVA index domains).
    pub fn rect_from_frame_mbr(&self, r: &Rect) -> Rect {
        if r.is_empty() {
            return Rect::EMPTY;
        }
        let mut out = Rect::EMPTY;
        for c in r.corners() {
            out.expand_to_point(self.from_frame(c));
        }
        out
    }

    /// The frame-space domain: the MBR (in frame coordinates) of the
    /// world-space data domain, i.e. the coordinate range a DVA index
    /// must be prepared to store.
    pub fn domain_in_frame(&self, world_domain: &Rect) -> Rect {
        self.rect_to_frame_mbr(world_domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_pt(a: Point, b: Point) {
        assert!(approx_eq(a.x, b.x) && approx_eq(a.y, b.y), "{a:?} != {b:?}");
    }

    #[test]
    fn identity_frame_is_noop() {
        let f = Frame::identity();
        assert!(f.is_identity());
        let p = Point::new(3.0, -2.0);
        assert_pt(f.to_frame(p), p);
        assert_pt(f.from_frame(p), p);
    }

    #[test]
    fn rotation_90_degrees() {
        // Frame x-axis along world +y.
        let f = Frame::new(Point::new(0.0, 1.0), Point::ZERO);
        assert_pt(f.to_frame(Point::new(0.0, 5.0)), Point::new(5.0, 0.0));
        assert_pt(f.to_frame(Point::new(1.0, 0.0)), Point::new(0.0, -1.0));
        assert_pt(f.from_frame(Point::new(5.0, 0.0)), Point::new(0.0, 5.0));
    }

    #[test]
    fn round_trip_with_pivot() {
        let f = Frame::new(Point::new(1.0, 2.0), Point::new(50.0, 60.0));
        for p in [
            Point::new(0.0, 0.0),
            Point::new(100.0, -3.0),
            Point::new(-7.5, 42.0),
        ] {
            assert_pt(f.from_frame(f.to_frame(p)), p);
            assert_pt(f.to_frame(f.from_frame(p)), p);
        }
    }

    #[test]
    fn velocity_transform_is_rotation_only() {
        let f = Frame::new(Point::new(0.0, 1.0), Point::new(100.0, 100.0));
        // A velocity along the frame axis maps to +x in frame space
        // regardless of pivot.
        assert_pt(f.vel_to_frame(Point::new(0.0, 3.0)), Point::new(3.0, 0.0));
        assert_pt(f.vel_from_frame(Point::new(3.0, 0.0)), Point::new(0.0, 3.0));
    }

    #[test]
    fn transforms_preserve_distances() {
        let f = Frame::new(Point::new(3.0, 4.0), Point::new(10.0, -5.0));
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-4.0, 7.0);
        assert!(approx_eq(a.dist(b), f.to_frame(a).dist(f.to_frame(b))));
    }

    #[test]
    fn rect_to_frame_mbr_bounds_rotated_rect() {
        // Unit square rotated 45 degrees has a bounding box of diagonal
        // sqrt(2) per axis.
        let f = Frame::new(Point::new(1.0, 1.0), Point::ZERO);
        let r = Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
        let m = f.rect_to_frame_mbr(&r);
        let s = std::f64::consts::SQRT_2;
        assert!(approx_eq(m.width(), s));
        assert!(approx_eq(m.height(), s));
        // Every transformed corner is inside the MBR.
        for c in r.corners() {
            assert!(m.contains_point(f.to_frame(c)));
        }
    }

    #[test]
    fn frame_mbr_of_empty_is_empty() {
        let f = Frame::new(Point::new(1.0, 1.0), Point::ZERO);
        assert!(f.rect_to_frame_mbr(&Rect::EMPTY).is_empty());
        assert!(f.rect_from_frame_mbr(&Rect::EMPTY).is_empty());
    }

    #[test]
    fn domain_in_frame_covers_all_transformed_points() {
        let f = Frame::new(Point::new(1.0, 2.0), Point::new(50_000.0, 50_000.0));
        let dom = Rect::from_bounds(0.0, 0.0, 100_000.0, 100_000.0);
        let fd = f.domain_in_frame(&dom);
        // Sample grid points; every transform must land inside.
        for i in 0..=10 {
            for j in 0..=10 {
                let p = Point::new(i as f64 * 10_000.0, j as f64 * 10_000.0);
                let fp = f.to_frame(p);
                assert!(
                    fd.contains_point(fp) || fd.inflate(1e-6, 1e-6).contains_point(fp),
                    "{fp:?} outside {fd:?}"
                );
            }
        }
    }
}
