//! k-nearest-neighbour queries on top of range queries.
//!
//! The paper motivates circular range queries as "the filter step of
//! the k Nearest Neighbor query" (Section 6). This module supplies
//! that refinement loop: an expanding sequence of circular time-slice
//! probes, starting from a density-derived radius estimate and
//! doubling until the k-th nearest candidate provably lies inside the
//! probed circle — at which point no closer object can exist outside
//! it and the answer is exact.
//!
//! The enlargement is **incremental**: each round hands the index the
//! previous round's probe as the *covered* region
//! ([`MovingObjectIndex::knn_candidates`]), so batched indexes scan
//! only the delta ring between the two circles instead of rescanning
//! the whole enlarged region, and a seen-map caches every candidate's
//! distance so no object is fetched or evaluated twice across rounds.
//!
//! Works over any [`MovingObjectIndex`], so a velocity-partitioned
//! index accelerates kNN for free. [`knn_batch`] answers a slice of
//! searches, optionally spread over scoped worker threads.

use std::collections::HashMap;

use vp_geom::{Circle, Point, Rect};

use crate::error::IndexResult;
use crate::object::ObjectId;
use crate::query::{QueryRegion, RangeQuery};
use crate::traits::MovingObjectIndex;

/// One kNN result: the object and its distance from the query point at
/// the query time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: ObjectId,
    pub distance: f64,
}

/// One kNN search of a [`knn_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnQuery {
    /// Query point.
    pub center: Point,
    /// How many neighbors to report.
    pub k: usize,
    /// The (future) time the distances are evaluated at.
    pub t: f64,
}

/// Finds the `k` objects nearest to `center` at (future) time `t`.
///
/// `domain` bounds the search (the expansion stops once the probe
/// circle covers it). Returns at most `k` neighbors ordered by
/// ascending distance; fewer when the index holds fewer objects
/// within the domain-covering probe.
///
/// Each enlargement round asks the index only for the candidates of
/// the **delta ring** between the previous probe and the current one
/// ([`MovingObjectIndex::knn_candidates`]), and every candidate's
/// distance is computed exactly once — the seen-map carries the
/// evaluations across rounds, so enlarging never re-fetches or
/// re-scores an object.
pub fn knn_at<I: MovingObjectIndex + ?Sized>(
    index: &I,
    center: Point,
    k: usize,
    t: f64,
    domain: &Rect,
) -> IndexResult<Vec<Neighbor>> {
    if k == 0 || index.is_empty() {
        return Ok(Vec::new());
    }
    // Initial radius from a uniform-density estimate: a circle expected
    // to hold ~k objects.
    let density = index.len() as f64 / domain.area().max(1.0);
    let mut radius = ((k as f64 / (std::f64::consts::PI * density)).sqrt())
        .max(domain.width().min(domain.height()) / 1_000.0);
    // The probe circle covering the farthest domain corner is the hard
    // stop: beyond it, expansion cannot find anything new.
    let max_radius = domain
        .corners()
        .iter()
        .map(|c| c.dist(center))
        .fold(0.0_f64, f64::max)
        .max(radius)
        * 1.01;

    // Distance of every candidate evaluated so far (the cross-round
    // seen-set), and the same entries kept sorted for the cutoff test.
    let mut seen: HashMap<ObjectId, f64> = HashMap::new();
    let mut neighbors: Vec<Neighbor> = Vec::new();
    let mut covered: Option<RangeQuery> = None;

    loop {
        let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, radius)), t);
        for id in index.knn_candidates(&q, covered.as_ref())? {
            let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(id) else {
                continue;
            };
            let Some(obj) = index.get_object(id)? else {
                continue;
            };
            let distance = obj.position_at(t).dist(center);
            slot.insert(distance);
            neighbors.push(Neighbor { id, distance });
        }
        neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));

        // Done when the k-th candidate is provably inside the probe —
        // every object at most that close is then among the seen
        // candidates — or the probe already covers the whole domain.
        if neighbors.len() >= k && neighbors[k - 1].distance <= radius {
            neighbors.truncate(k);
            return Ok(neighbors);
        }
        if radius >= max_radius {
            // Candidates are a superset of the probe's matches; only
            // what is provably inside the probe is reported, keeping
            // the result independent of how generous the index's
            // candidate sets are.
            neighbors.retain(|n| n.distance <= radius);
            neighbors.truncate(k);
            return Ok(neighbors);
        }
        // Expand: at least double, or jump straight to the k-th
        // candidate's distance when we have one.
        let target = if neighbors.len() >= k {
            neighbors[k - 1].distance * 1.001
        } else {
            radius * 2.0
        };
        covered = Some(q);
        radius = target.max(radius * 2.0).min(max_radius);
    }
}

/// Answers a batch of kNN searches, returning one result list per
/// query in query order — identical to looping [`knn_at`].
///
/// With `workers > 1` the searches are spread over that many scoped
/// worker threads (longest-first by `k`, each search running the
/// incremental `knn_at` against the shared index). Searches are
/// read-only and independent, so the results are bit-identical to the
/// sequential run regardless of the worker count or schedule.
pub fn knn_batch<I: MovingObjectIndex + Sync + ?Sized>(
    index: &I,
    queries: &[KnnQuery],
    domain: &Rect,
    workers: usize,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    // LPT by k — the only load signal available before running —
    // through the shared read-side fan-out (results come back in
    // query order).
    crate::fanout::lpt_fan_out(
        queries.to_vec(),
        workers,
        |q| q.k,
        |q| knn_at(index, q.center, q.k, q.t, domain),
    )
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MovingObject;
    use crate::traits::reference::ScanIndex;
    use vp_geom::Vec2;

    fn grid_index(n_side: u64, spacing: f64, vel: Vec2) -> ScanIndex {
        let mut idx = ScanIndex::new();
        for i in 0..n_side {
            for j in 0..n_side {
                idx.insert(MovingObject::new(
                    i * n_side + j,
                    Point::new(i as f64 * spacing, j as f64 * spacing),
                    vel,
                    0.0,
                ))
                .unwrap();
            }
        }
        idx
    }

    fn domain() -> Rect {
        Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)
    }

    /// Brute-force oracle.
    fn brute(idx: &ScanIndex, center: Point, k: usize, t: f64) -> Vec<Neighbor> {
        let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, f64::INFINITY)), t);
        let mut all: Vec<Neighbor> = idx
            .range_query(&q)
            .unwrap()
            .into_iter()
            .map(|id| Neighbor {
                id,
                distance: idx
                    .get_object(id)
                    .unwrap()
                    .unwrap()
                    .position_at(t)
                    .dist(center),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force_static() {
        let idx = grid_index(20, 500.0, Point::ZERO);
        for (cx, cy, k) in [
            (5_000.0, 5_000.0, 1),
            (5_000.0, 5_000.0, 7),
            (100.0, 9_900.0, 5),
            (0.0, 0.0, 3),
        ] {
            let got = knn_at(&idx, Point::new(cx, cy), k, 0.0, &domain()).unwrap();
            let want = brute(&idx, Point::new(cx, cy), k, 0.0);
            assert_eq!(got, want, "center ({cx},{cy}) k={k}");
        }
    }

    #[test]
    fn knn_is_predictive() {
        // Everything drifts east at 50 m/ts; at t=10 the nearest
        // neighbors of a point are those 500 m west of it now.
        let idx = grid_index(20, 500.0, Point::new(50.0, 0.0));
        let center = Point::new(5_000.0, 5_000.0);
        let got = knn_at(&idx, center, 4, 10.0, &domain()).unwrap();
        let want = brute(&idx, center, 4, 10.0);
        assert_eq!(got, want);
        // The single nearest at t=10 started at (4500, 5000).
        let top = idx.get_object(got[0].id).unwrap().unwrap();
        assert_eq!(top.pos, Point::new(4_500.0, 5_000.0));
    }

    #[test]
    fn knn_handles_small_indexes() {
        let mut idx = ScanIndex::new();
        assert!(knn_at(&idx, Point::ZERO, 5, 0.0, &domain())
            .unwrap()
            .is_empty());
        idx.insert(MovingObject::new(
            1,
            Point::new(9_000.0, 9_000.0),
            Point::ZERO,
            0.0,
        ))
        .unwrap();
        // k exceeds population: return what exists.
        let got = knn_at(&idx, Point::ZERO, 5, 0.0, &domain()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1);
        // k = 0.
        assert!(knn_at(&idx, Point::ZERO, 0, 0.0, &domain())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn knn_ties_break_deterministically() {
        let mut idx = ScanIndex::new();
        for id in 0..4u64 {
            // Four objects at identical distance from the center.
            let (dx, dy) = match id {
                0 => (100.0, 0.0),
                1 => (-100.0, 0.0),
                2 => (0.0, 100.0),
                _ => (0.0, -100.0),
            };
            idx.insert(MovingObject::new(
                id,
                Point::new(5_000.0 + dx, 5_000.0 + dy),
                Point::ZERO,
                0.0,
            ))
            .unwrap();
        }
        let got = knn_at(&idx, Point::new(5_000.0, 5_000.0), 2, 0.0, &domain()).unwrap();
        assert_eq!(got.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1]);
    }
}
