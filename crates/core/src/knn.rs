//! k-nearest-neighbour queries on top of range queries.
//!
//! The paper motivates circular range queries as "the filter step of
//! the k Nearest Neighbor query" (Section 6). This module supplies
//! that refinement loop: an expanding sequence of circular time-slice
//! range queries, starting from a density-derived radius estimate and
//! doubling until the k-th nearest candidate provably lies inside the
//! probed circle — at which point no closer object can exist outside
//! it and the answer is exact.
//!
//! Works over any [`MovingObjectIndex`], so a velocity-partitioned
//! index accelerates kNN for free.

use vp_geom::{Circle, Point, Rect};

use crate::error::IndexResult;
use crate::object::ObjectId;
use crate::query::{QueryRegion, RangeQuery};
use crate::traits::MovingObjectIndex;

/// One kNN result: the object and its distance from the query point at
/// the query time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: ObjectId,
    pub distance: f64,
}

/// Finds the `k` objects nearest to `center` at (future) time `t`.
///
/// `domain` bounds the search (the expansion stops once the probe
/// circle covers it). Returns at most `k` neighbors ordered by
/// ascending distance; fewer when the index holds fewer objects.
pub fn knn_at<I: MovingObjectIndex + ?Sized>(
    index: &I,
    center: Point,
    k: usize,
    t: f64,
    domain: &Rect,
) -> IndexResult<Vec<Neighbor>> {
    if k == 0 || index.is_empty() {
        return Ok(Vec::new());
    }
    // Initial radius from a uniform-density estimate: a circle expected
    // to hold ~k objects.
    let density = index.len() as f64 / domain.area().max(1.0);
    let mut radius = ((k as f64 / (std::f64::consts::PI * density)).sqrt())
        .max(domain.width().min(domain.height()) / 1_000.0);
    // The probe circle covering the farthest domain corner is the hard
    // stop: beyond it, expansion cannot find anything new.
    let max_radius = domain
        .corners()
        .iter()
        .map(|c| c.dist(center))
        .fold(0.0_f64, f64::max)
        .max(radius)
        * 1.01;

    loop {
        let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, radius)), t);
        let ids = index.range_query(&q)?;
        let mut neighbors: Vec<Neighbor> = ids
            .into_iter()
            .filter_map(|id| {
                index.get_object(id).map(|o| Neighbor {
                    id,
                    distance: o.position_at(t).dist(center),
                })
            })
            .collect();
        neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));

        // Done when the k-th candidate is provably inside the probe, or
        // the probe already covers the whole domain.
        if neighbors.len() >= k && neighbors[k - 1].distance <= radius {
            neighbors.truncate(k);
            return Ok(neighbors);
        }
        if radius >= max_radius {
            neighbors.truncate(k);
            return Ok(neighbors);
        }
        // Expand: at least double, or jump straight to the k-th
        // candidate's distance when we have one.
        let target = if neighbors.len() >= k {
            neighbors[k - 1].distance * 1.001
        } else {
            radius * 2.0
        };
        radius = target.max(radius * 2.0).min(max_radius);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MovingObject;
    use crate::traits::reference::ScanIndex;
    use vp_geom::Vec2;

    fn grid_index(n_side: u64, spacing: f64, vel: Vec2) -> ScanIndex {
        let mut idx = ScanIndex::new();
        for i in 0..n_side {
            for j in 0..n_side {
                idx.insert(MovingObject::new(
                    i * n_side + j,
                    Point::new(i as f64 * spacing, j as f64 * spacing),
                    vel,
                    0.0,
                ))
                .unwrap();
            }
        }
        idx
    }

    fn domain() -> Rect {
        Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)
    }

    /// Brute-force oracle.
    fn brute(idx: &ScanIndex, center: Point, k: usize, t: f64) -> Vec<Neighbor> {
        let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, f64::INFINITY)), t);
        let mut all: Vec<Neighbor> = idx
            .range_query(&q)
            .unwrap()
            .into_iter()
            .map(|id| Neighbor {
                id,
                distance: idx.get_object(id).unwrap().position_at(t).dist(center),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force_static() {
        let idx = grid_index(20, 500.0, Point::ZERO);
        for (cx, cy, k) in [
            (5_000.0, 5_000.0, 1),
            (5_000.0, 5_000.0, 7),
            (100.0, 9_900.0, 5),
            (0.0, 0.0, 3),
        ] {
            let got = knn_at(&idx, Point::new(cx, cy), k, 0.0, &domain()).unwrap();
            let want = brute(&idx, Point::new(cx, cy), k, 0.0);
            assert_eq!(got, want, "center ({cx},{cy}) k={k}");
        }
    }

    #[test]
    fn knn_is_predictive() {
        // Everything drifts east at 50 m/ts; at t=10 the nearest
        // neighbors of a point are those 500 m west of it now.
        let idx = grid_index(20, 500.0, Point::new(50.0, 0.0));
        let center = Point::new(5_000.0, 5_000.0);
        let got = knn_at(&idx, center, 4, 10.0, &domain()).unwrap();
        let want = brute(&idx, center, 4, 10.0);
        assert_eq!(got, want);
        // The single nearest at t=10 started at (4500, 5000).
        let top = idx.get_object(got[0].id).unwrap();
        assert_eq!(top.pos, Point::new(4_500.0, 5_000.0));
    }

    #[test]
    fn knn_handles_small_indexes() {
        let mut idx = ScanIndex::new();
        assert!(knn_at(&idx, Point::ZERO, 5, 0.0, &domain())
            .unwrap()
            .is_empty());
        idx.insert(MovingObject::new(
            1,
            Point::new(9_000.0, 9_000.0),
            Point::ZERO,
            0.0,
        ))
        .unwrap();
        // k exceeds population: return what exists.
        let got = knn_at(&idx, Point::ZERO, 5, 0.0, &domain()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1);
        // k = 0.
        assert!(knn_at(&idx, Point::ZERO, 0, 0.0, &domain())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn knn_ties_break_deterministically() {
        let mut idx = ScanIndex::new();
        for id in 0..4u64 {
            // Four objects at identical distance from the center.
            let (dx, dy) = match id {
                0 => (100.0, 0.0),
                1 => (-100.0, 0.0),
                2 => (0.0, 100.0),
                _ => (0.0, -100.0),
            };
            idx.insert(MovingObject::new(
                id,
                Point::new(5_000.0 + dx, 5_000.0 + dy),
                Point::ZERO,
                0.0,
            ))
            .unwrap();
        }
        let got = knn_at(&idx, Point::new(5_000.0, 5_000.0), 2, 0.0, &domain()).unwrap();
        assert_eq!(got.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1]);
    }
}
