//! Durable storage for the VP index: write-ahead logging of tick
//! batches, logical checkpoints, and crash recovery.
//!
//! ## Architecture
//!
//! The paper's batched per-partition tick is the unit of durability.
//! A durable [`VpIndex`] (built with [`VpIndex::open`]) owns one
//! [`vp_wal::Wal`] stream **per partition** plus one `meta` stream,
//! all inside `VpConfig::wal_dir`:
//!
//! ```text
//! wal_dir/
//!   MANIFEST              config + partition axes/τ + histogram bounds
//!   ckpt-<seq>.vpck       latest logical checkpoint (object table)
//!   meta-<seq>.seg        inserts, deletes, τ refreshes, tick commits
//!   part-<p>-<seq>.seg    per-partition tick batches (one stream per p)
//! ```
//!
//! Every logged *event* — a tick, a single insert/delete, a τ refresh
//! — carries one globally increasing sequence number, so the streams
//! merge back into a total order at recovery. A tick writes its
//! per-partition batches (removals + world-coordinate upserts) to the
//! partition streams *from the tick worker threads* — logging
//! parallelizes with application instead of re-serializing it — and
//! is sealed by a commit record on the `meta` stream after all
//! partition streams are flushed (and, under
//! [`SyncPolicy::Always`], fsync'd). A tick whose commit record is
//! missing, or whose commit names more partition records than
//! survived, is not replayed; recovery applies the longest consistent
//! prefix of the log.
//!
//! [`SyncPolicy::EveryTicks`]`(n)` amortizes the fsync across ticks:
//! ordinary ticks only flush, and every n-th tick is a *sync
//! boundary* — **every** stream (including partitions the boundary
//! tick did not touch, whose earlier records would otherwise stay
//! unsynced) is fsync'd before the boundary tick's commit record is,
//! so everything up to and including the boundary tick survives an OS
//! crash. Single-record events (insert/delete/τ refresh) ride along:
//! they are flushed at commit and become crash-durable at the next
//! boundary or checkpoint.
//!
//! Checkpoints are **logical**: [`VpIndex::checkpoint`] flushes every
//! sub-index's storage (dirty buffer-pool shards, then the page
//! file), snapshots the object table + per-partition τ + online
//! histograms into `ckpt-<seq>.vpck` (written to a temp file, fsync'd,
//! renamed), and truncates all log streams below the checkpoint.
//! Recovery rebuilds the sub-indexes from the snapshot via their
//! batched upsert path and replays the log tail through the exact
//! same routing code that ran before the crash — τ refreshes are
//! replayed in order, so partition routing is reproduced decision for
//! decision. Page-level (ARIES-style) redo that reuses the flushed
//! page files instead of rebuilding is the named follow-on in the
//! roadmap.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vp_geom::Frame;
use vp_storage::{FaultHandle, FaultKind, FaultOp, RetryPolicy, ThreadSleeper};
use vp_wal::{crc32, SyncPolicy, Wal};

use crate::analyzer::AnalyzerOutput;
use crate::config::VpConfig;
use crate::error::{IndexError, IndexResult};
use crate::histogram::CumulativeHistogram;
use crate::manager::{PartitionSpec, VpIndex};
use crate::object::{MovingObject, ObjectId};
use crate::traits::MovingObjectIndex;

/// Record kinds on the `meta` stream (plus [`KIND_TICK_PART`] on the
/// partition streams).
pub(crate) const KIND_INSERT: u8 = 1;
pub(crate) const KIND_DELETE: u8 = 2;
pub(crate) const KIND_TICK_PART: u8 = 3;
pub(crate) const KIND_TICK_COMMIT: u8 = 4;
pub(crate) const KIND_TAU_REFRESH: u8 = 5;

const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 8] = b"VPMANIF1";
const CKPT_MAGIC: &[u8; 8] = b"VPCKPT01";
/// On-disk format version of the manifest and checkpoint files.
/// History: 1 = original layout (1-byte sync policy); 2 = the sync
/// policy widened to the 5-byte [`SyncPolicy::to_bytes`] encoding
/// (cross-tick group commit). A mismatch is a clean "unsupported
/// version" error rather than a misparse.
const FORMAT_VERSION: u32 = 2;

/// What [`VpIndex::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Seq of the checkpoint the rebuild started from (0 = none).
    pub checkpoint_seq: u64,
    /// Highest event seq applied (checkpoint or replayed record).
    pub last_seq: u64,
    /// Log events replayed on top of the checkpoint.
    pub events_replayed: usize,
}

/// The durability state of a [`VpIndex`]: the log streams and the
/// bookkeeping between checkpoints.
pub(crate) struct Durability {
    pub(crate) dir: PathBuf,
    pub(crate) policy: SyncPolicy,
    pub(crate) checkpoint_every: u64,
    pub(crate) meta: Wal,
    /// One stream per partition, indexed by [`PartitionSpec::id`].
    pub(crate) parts: Vec<Wal>,
    /// Next global event seq to assign.
    pub(crate) next_seq: u64,
    pub(crate) ticks_since_ckpt: u64,
    /// Ticks committed since the last cross-tick fsync boundary
    /// (only advanced under [`SyncPolicy::EveryTicks`]).
    pub(crate) ticks_since_sync: u64,
    /// True while recovery replays the log: suppresses re-logging.
    pub(crate) replaying: bool,
    /// Fault injector covering this index's durability I/O (WAL
    /// streams at sites `wal:meta` / `wal:part-<p>`, atomic publishes
    /// at site `ckpt`). `None` outside the fault-injection harness.
    pub(crate) fault: Option<FaultHandle>,
}

impl Durability {
    /// Opens (or creates) the log streams for `nparts` partitions,
    /// wiring the fault injector and retry policy into every stream.
    pub(crate) fn open(
        dir: &Path,
        nparts: usize,
        policy: SyncPolicy,
        checkpoint_every: u64,
        fault: Option<FaultHandle>,
        retry: RetryPolicy,
    ) -> IndexResult<Durability> {
        let wire = |mut wal: Wal, site: String| -> Wal {
            if let Some(h) = &fault {
                wal.set_fault_injector(h.0.clone(), site);
            }
            wal.set_retry(retry, Arc::new(ThreadSleeper));
            wal
        };
        let meta = wire(Wal::open(dir, "meta")?, "wal:meta".into());
        let mut parts = Vec::with_capacity(nparts);
        for p in 0..nparts {
            parts.push(wire(
                Wal::open(dir, &format!("part-{p}"))?,
                format!("wal:part-{p}"),
            ));
        }
        let next_seq = parts
            .iter()
            .map(Wal::last_seq)
            .chain(std::iter::once(meta.last_seq()))
            .max()
            .unwrap_or(0)
            + 1;
        Ok(Durability {
            dir: dir.to_path_buf(),
            policy,
            checkpoint_every,
            meta,
            parts,
            next_seq,
            ticks_since_ckpt: 0,
            ticks_since_sync: 0,
            replaying: false,
            fault,
        })
    }

    /// The first poisoned stream's reason, if any stream's fsync has
    /// failed (meta first, then partitions in order).
    pub(crate) fn poisoned_reason(&self) -> Option<String> {
        self.meta.poisoned().map(str::to_owned).or_else(|| {
            self.parts
                .iter()
                .find_map(|w| w.poisoned().map(str::to_owned))
        })
    }

    /// Drops every stream's buffered-but-unflushed records — the WAL
    /// side of a tick rollback. Records that already reached the OS
    /// stay; without their commit record they are dead weight that
    /// recovery ignores and the next checkpoint truncates.
    pub(crate) fn discard_all_pending(&mut self) {
        self.meta.discard_pending();
        for wal in &mut self.parts {
            wal.discard_pending();
        }
    }
}

// ---------------------------------------------------------------------
// Little-endian payload codecs
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> IndexResult<&'a [u8]> {
        if self.off + n > self.buf.len() {
            return Err(IndexError::Wal(format!(
                "payload truncated at byte {} (wanted {n} more of {})",
                self.off,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> IndexResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> IndexResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> IndexResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> IndexResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> IndexResult<()> {
        if self.off != self.buf.len() {
            return Err(IndexError::Wal(format!(
                "payload has {} trailing bytes",
                self.buf.len() - self.off
            )));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// 48-byte object encoding: id, pos, vel, ref_time.
fn put_object(out: &mut Vec<u8>, obj: &MovingObject) {
    put_u64(out, obj.id);
    put_f64(out, obj.pos.x);
    put_f64(out, obj.pos.y);
    put_f64(out, obj.vel.x);
    put_f64(out, obj.vel.y);
    put_f64(out, obj.ref_time);
}

fn get_object(cur: &mut Cursor<'_>) -> IndexResult<MovingObject> {
    Ok(MovingObject {
        id: cur.u64()?,
        pos: vp_geom::Point::new(cur.f64()?, cur.f64()?),
        vel: vp_geom::Point::new(cur.f64()?, cur.f64()?),
        ref_time: cur.f64()?,
    })
}

/// `INSERT` payload: one object.
pub(crate) fn encode_object_record(obj: &MovingObject) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    put_object(&mut out, obj);
    out
}

pub(crate) fn decode_object_record(payload: &[u8]) -> IndexResult<MovingObject> {
    let mut cur = Cursor::new(payload);
    let obj = get_object(&mut cur)?;
    cur.done()?;
    Ok(obj)
}

/// `DELETE` payload: one object id.
pub(crate) fn encode_delete_record(id: ObjectId) -> Vec<u8> {
    id.to_le_bytes().to_vec()
}

pub(crate) fn decode_delete_record(payload: &[u8]) -> IndexResult<ObjectId> {
    let mut cur = Cursor::new(payload);
    let id = cur.u64()?;
    cur.done()?;
    Ok(id)
}

/// One partition's share of a tick, as logged on its stream.
pub(crate) type TickPart = (usize, Vec<ObjectId>, Vec<MovingObject>);

/// `TICK_PART` payload: partition, removals (migrating away), and
/// **world-coordinate** upserts (frame conversion is re-derived on
/// replay so the record is partition-layout-independent).
pub(crate) fn encode_tick_part(
    partition: usize,
    removals: &[ObjectId],
    upserts: &[MovingObject],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + removals.len() * 8 + upserts.len() * 48);
    put_u32(&mut out, partition as u32);
    put_u32(&mut out, removals.len() as u32);
    put_u32(&mut out, upserts.len() as u32);
    for id in removals {
        put_u64(&mut out, *id);
    }
    for obj in upserts {
        put_object(&mut out, obj);
    }
    out
}

pub(crate) fn decode_tick_part(payload: &[u8]) -> IndexResult<TickPart> {
    let mut cur = Cursor::new(payload);
    let partition = cur.u32()? as usize;
    let nr = cur.u32()? as usize;
    let nu = cur.u32()? as usize;
    // Clamp pre-allocations: a corrupt count must fail in the cursor
    // (truncated payload) rather than abort on a huge reservation.
    let mut removals = Vec::with_capacity(nr.min(1 << 20));
    for _ in 0..nr {
        removals.push(cur.u64()?);
    }
    let mut upserts = Vec::with_capacity(nu.min(1 << 20));
    for _ in 0..nu {
        upserts.push(get_object(&mut cur)?);
    }
    cur.done()?;
    Ok((partition, removals, upserts))
}

/// `TICK_COMMIT` payload: how many partition records seal this tick,
/// plus the winning-update count (diagnostics).
pub(crate) fn encode_tick_commit(nparts: usize, nupdates: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    put_u32(&mut out, nparts as u32);
    put_u32(&mut out, nupdates as u32);
    out
}

pub(crate) fn decode_tick_commit(payload: &[u8]) -> IndexResult<(usize, usize)> {
    let mut cur = Cursor::new(payload);
    let nparts = cur.u32()? as usize;
    let nupdates = cur.u32()? as usize;
    cur.done()?;
    Ok((nparts, nupdates))
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

/// Wraps a payload in `magic ‖ version ‖ payload ‖ crc32(payload)` and
/// writes it to a temp file, fsyncs, renames into place, and fsyncs
/// the directory — the atomic-publish dance.
///
/// Failure at **any** step — temp write (including a torn one or
/// ENOSPC), temp fsync, the rename itself, or the post-rename
/// directory fsync — surfaces as an error and leaves whatever file
/// previously held `name` valid: the new bytes only become visible
/// through the final atomic rename, and until the *directory* entry
/// is synced a crash may legally resurrect the old file, so a failed
/// directory sync must not report the publish as durable. The temp
/// file is removed best-effort on the error path so a failed publish
/// can't strand `.tmp` litter that a later publish would trip over.
///
/// Fault-injection sites: `"ckpt"` for the temp write/fsync/rename,
/// `"ckpt:dir"` ([`FaultOp::Sync`]) for the directory fsync.
fn write_file_atomic(
    dir: &Path,
    name: &str,
    magic: &[u8; 8],
    payload: &[u8],
    fault: Option<&FaultHandle>,
) -> IndexResult<()> {
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    let tmp = dir.join(format!("{name}.tmp"));
    let check = |op: FaultOp| -> Option<FaultKind> { fault.and_then(|h| h.check("ckpt", op)) };
    let publish = || -> IndexResult<()> {
        match check(FaultOp::Write) {
            Some(FaultKind::Torn { keep }) => {
                // Model a torn publish write: a prefix lands, then the
                // device gives out.
                let keep = keep.min(bytes.len());
                let _ = fs::write(&tmp, &bytes[..keep]);
                return Err(IndexError::Wal(format!(
                    "injected torn write at ckpt: {keep} of {} bytes",
                    bytes.len()
                )));
            }
            Some(kind) => return Err(kind.to_error("ckpt", FaultOp::Write).into()),
            None => fs::write(&tmp, &bytes).map_err(io_err)?,
        }
        let f = fs::File::open(&tmp).map_err(io_err)?;
        match check(FaultOp::Sync) {
            Some(kind) => return Err(kind.to_error("ckpt", FaultOp::Sync).into()),
            None => f.sync_all().map_err(io_err)?,
        }
        match check(FaultOp::Rename) {
            Some(kind) => return Err(kind.to_error("ckpt", FaultOp::Rename).into()),
            None => fs::rename(&tmp, dir.join(name)).map_err(io_err)?,
        }
        Ok(())
    };
    if let Err(e) = publish() {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // The rename is only durable once the directory entry itself is
    // synced; swallowing a failure here would report a publish as
    // durable that a crash could still undo.
    match fault.and_then(|h| h.check("ckpt:dir", FaultOp::Sync)) {
        Some(kind) => return Err(kind.to_error("ckpt:dir", FaultOp::Sync).into()),
        None => {
            let d = fs::File::open(dir).map_err(io_err)?;
            d.sync_all().map_err(io_err)?;
        }
    }
    Ok(())
}

/// Reads and validates a `magic ‖ version ‖ payload ‖ crc` file.
fn read_validated(path: &Path, magic: &[u8; 8]) -> IndexResult<Vec<u8>> {
    let bytes = fs::read(path).map_err(io_err)?;
    if bytes.len() < 16 || &bytes[..8] != magic {
        return Err(IndexError::Wal(format!("{}: bad magic", path.display())));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(IndexError::Wal(format!(
            "{}: unsupported version {version}",
            path.display()
        )));
    }
    let payload = &bytes[12..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(payload) != crc {
        return Err(IndexError::Wal(format!("{}: crc mismatch", path.display())));
    }
    Ok(payload.to_vec())
}

fn io_err(e: std::io::Error) -> IndexError {
    IndexError::Wal(e.to_string())
}

fn write_manifest(
    dir: &Path,
    config: &VpConfig,
    specs: &[PartitionSpec],
    hist_bounds: &[f64],
    fault: Option<&FaultHandle>,
) -> IndexResult<()> {
    let mut p = Vec::new();
    put_u64(&mut p, config.k as u64);
    put_u64(&mut p, config.sample_size as u64);
    put_u64(&mut p, config.tau_buckets as u64);
    put_u64(&mut p, config.seed);
    put_u64(&mut p, config.max_iters as u64);
    put_f64(&mut p, config.domain.lo.x);
    put_f64(&mut p, config.domain.lo.y);
    put_f64(&mut p, config.domain.hi.x);
    put_f64(&mut p, config.domain.hi.y);
    put_u64(&mut p, config.tick_workers as u64);
    p.extend_from_slice(&config.sync_policy.to_bytes());
    put_u64(&mut p, config.checkpoint_every_ticks);
    put_u32(&mut p, specs.len() as u32);
    for spec in specs {
        put_f64(&mut p, spec.frame.axis().x);
        put_f64(&mut p, spec.frame.axis().y);
        put_f64(&mut p, spec.tau);
        p.push(u8::from(spec.is_outlier));
    }
    put_u32(&mut p, hist_bounds.len() as u32);
    for b in hist_bounds {
        put_f64(&mut p, *b);
    }
    write_file_atomic(dir, MANIFEST_NAME, MANIFEST_MAGIC, &p, fault)
}

/// The manifest's partition description (enough to rebuild a
/// [`PartitionSpec`] without re-running the analyzer).
struct SpecDesc {
    axis: vp_geom::Vec2,
    tau: f64,
    is_outlier: bool,
}

fn read_manifest(dir: &Path) -> IndexResult<(VpConfig, Vec<SpecDesc>, Vec<f64>)> {
    let payload = read_validated(&dir.join(MANIFEST_NAME), MANIFEST_MAGIC)?;
    let mut cur = Cursor::new(&payload);
    let mut config = VpConfig {
        k: cur.u64()? as usize,
        sample_size: cur.u64()? as usize,
        tau_buckets: cur.u64()? as usize,
        seed: cur.u64()?,
        max_iters: cur.u64()? as usize,
        ..VpConfig::default()
    };
    let lo = (cur.f64()?, cur.f64()?);
    let hi = (cur.f64()?, cur.f64()?);
    config.domain = vp_geom::Rect::from_bounds(lo.0, lo.1, hi.0, hi.1);
    config.tick_workers = cur.u64()? as usize;
    config.sync_policy = SyncPolicy::from_bytes(cur.take(5)?.try_into().expect("5 bytes"))?;
    config.checkpoint_every_ticks = cur.u64()?;
    config.wal_dir = Some(dir.to_path_buf());
    let nspecs = cur.u32()? as usize;
    let mut specs = Vec::with_capacity(nspecs.min(1 << 16));
    for _ in 0..nspecs {
        specs.push(SpecDesc {
            axis: vp_geom::Point::new(cur.f64()?, cur.f64()?),
            tau: cur.f64()?,
            is_outlier: cur.u8()? != 0,
        });
    }
    let nbounds = cur.u32()? as usize;
    let mut bounds = Vec::with_capacity(nbounds.min(1 << 16));
    for _ in 0..nbounds {
        bounds.push(cur.f64()?);
    }
    cur.done()?;
    if specs.is_empty() || !specs.last().map(|s| s.is_outlier).unwrap_or(false) {
        return Err(IndexError::Wal("manifest: malformed partition list".into()));
    }
    Ok((config, specs, bounds))
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

struct Checkpoint {
    seq: u64,
    taus: Vec<f64>,
    hists: Vec<CumulativeHistogram>,
    /// `(world object, partition)` pairs, sorted by id.
    objects: Vec<(MovingObject, usize)>,
}

fn ckpt_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.vpck")
}

fn write_checkpoint(
    dir: &Path,
    seq: u64,
    taus: &[f64],
    hists: &[CumulativeHistogram],
    objects: &HashMap<ObjectId, MovingObject>,
    assignment: &HashMap<ObjectId, usize>,
    fault: Option<&FaultHandle>,
) -> IndexResult<()> {
    let mut p = Vec::new();
    put_u64(&mut p, seq);
    put_u32(&mut p, taus.len() as u32);
    for t in taus {
        put_f64(&mut p, *t);
    }
    put_u32(&mut p, hists.len() as u32);
    for h in hists {
        put_f64(&mut p, h.max_value());
        put_u32(&mut p, h.counts().len() as u32);
        for c in h.counts() {
            put_u64(&mut p, *c);
        }
    }
    // Sorted object table: deterministic bytes for a given state.
    let mut ids: Vec<ObjectId> = objects.keys().copied().collect();
    ids.sort_unstable();
    put_u64(&mut p, ids.len() as u64);
    for id in ids {
        let obj = &objects[&id];
        let part = *assignment
            .get(&id)
            .ok_or_else(|| IndexError::Wal(format!("object {id} has no partition assignment")))?;
        put_object(&mut p, obj);
        put_u32(&mut p, part as u32);
    }
    write_file_atomic(dir, &ckpt_name(seq), CKPT_MAGIC, &p, fault)
}

fn decode_checkpoint(payload: &[u8]) -> IndexResult<Checkpoint> {
    let mut cur = Cursor::new(payload);
    let seq = cur.u64()?;
    let ntaus = cur.u32()? as usize;
    let mut taus = Vec::with_capacity(ntaus.min(1 << 16));
    for _ in 0..ntaus {
        taus.push(cur.f64()?);
    }
    let nhists = cur.u32()? as usize;
    let mut hists = Vec::with_capacity(nhists.min(1 << 16));
    for _ in 0..nhists {
        let max = cur.f64()?;
        let nbuckets = cur.u32()? as usize;
        let mut counts = Vec::with_capacity(nbuckets.min(1 << 20));
        for _ in 0..nbuckets {
            counts.push(cur.u64()?);
        }
        if counts.is_empty() || !(max.is_finite() && max > 0.0) {
            return Err(IndexError::Wal("checkpoint: malformed histogram".into()));
        }
        hists.push(CumulativeHistogram::from_parts(counts, max));
    }
    let nobjects = cur.u64()? as usize;
    let mut objects = Vec::with_capacity(nobjects.min(1 << 20));
    for _ in 0..nobjects {
        let obj = get_object(&mut cur)?;
        let part = cur.u32()? as usize;
        objects.push((obj, part));
    }
    cur.done()?;
    Ok(Checkpoint {
        seq,
        taus,
        hists,
        objects,
    })
}

/// Lists checkpoint files, newest first.
fn list_checkpoints(dir: &Path) -> IndexResult<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix("ckpt-")
            .and_then(|r| r.strip_suffix(".vpck"))
        else {
            continue;
        };
        if let Ok(seq) = u64::from_str_radix(hex, 16) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_unstable_by_key(|(s, _)| std::cmp::Reverse(*s));
    Ok(found)
}

/// Loads the newest checkpoint. A published checkpoint that fails
/// validation is a **hard error**, not a fallback: checkpoints are
/// published atomically (tmp + fsync + rename — a crash leaves only a
/// `.tmp` that is never listed), and the log below the newest
/// checkpoint was truncated when it was written, so an older
/// checkpoint can no longer be completed from the log — falling back
/// would return a silently incomplete index. An invalid published
/// file therefore means bitrot or tampering, which must surface.
fn load_latest_checkpoint(dir: &Path) -> IndexResult<Option<Checkpoint>> {
    let checkpoints = list_checkpoints(dir)?;
    let Some((_, path)) = checkpoints.first() else {
        return Ok(None);
    };
    let ckpt = read_validated(path, CKPT_MAGIC)
        .and_then(|p| decode_checkpoint(&p))
        .map_err(|e| {
            IndexError::Wal(format!(
                "newest checkpoint {} failed validation ({e}); the log below it \
                 was truncated at checkpoint time, so no older state can be \
                 completed — restore the file or rebuild the index",
                path.display()
            ))
        })?;
    Ok(Some(ckpt))
}

fn prune_checkpoints_below(dir: &Path, seq: u64) -> IndexResult<()> {
    for (s, path) in list_checkpoints(dir)? {
        if s < seq {
            fs::remove_file(path).map_err(io_err)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The durable VpIndex lifecycle
// ---------------------------------------------------------------------

impl<I> VpIndex<I> {
    /// Builds a **durable** partitioned index: like [`VpIndex::build`],
    /// plus a manifest and WAL streams in `config.wal_dir`. Every
    /// subsequent mutation is logged; [`VpIndex::checkpoint`] (or the
    /// `checkpoint_every_ticks` cadence) bounds the log. Errors if the
    /// directory already holds a manifest — reopen an existing durable
    /// index with [`VpIndex::recover`].
    pub fn open<F>(
        config: VpConfig,
        analysis: &AnalyzerOutput,
        factory: F,
    ) -> IndexResult<VpIndex<I>>
    where
        F: FnMut(&PartitionSpec) -> I,
    {
        let dir = config
            .wal_dir
            .clone()
            .ok_or_else(|| IndexError::Config("VpIndex::open requires config.wal_dir".into()))?;
        fs::create_dir_all(&dir).map_err(io_err)?;
        if dir.join(MANIFEST_NAME).exists() {
            return Err(IndexError::Config(format!(
                "{} already holds a durable index; use VpIndex::recover",
                dir.display()
            )));
        }
        let mut vp = VpIndex::build(config, analysis, factory)?;
        let bounds: Vec<f64> = vp.perp_hists.iter().map(|h| h.max_value()).collect();
        write_manifest(
            &dir,
            &vp.config,
            &vp.specs,
            &bounds,
            vp.config.fault.as_ref(),
        )?;
        vp.durability = Some(Durability::open(
            &dir,
            vp.specs.len(),
            vp.config.sync_policy,
            vp.config.checkpoint_every_ticks,
            vp.config.fault.clone(),
            vp.config.wal_retry,
        )?);
        Ok(vp)
    }

    /// Rebuilds a durable index from its directory: manifest → latest
    /// valid checkpoint → replay of the log's consistent prefix. The
    /// recovered index answers every query exactly as the pre-crash
    /// index did at the last committed event, and keeps logging from
    /// there.
    pub fn recover<F>(
        dir: impl AsRef<Path>,
        factory: F,
    ) -> IndexResult<(VpIndex<I>, RecoveryReport)>
    where
        I: MovingObjectIndex + Send + Sync,
        F: FnMut(&PartitionSpec) -> I,
    {
        let dir = dir.as_ref().to_path_buf();
        let (config, descs, bounds) = read_manifest(&dir)?;
        if bounds.len() + 1 != descs.len() {
            return Err(IndexError::Wal(
                "manifest: histogram bounds do not match DVA count".into(),
            ));
        }
        let pivot = config.pivot();
        let specs: Vec<PartitionSpec> = descs
            .iter()
            .enumerate()
            .map(|(id, d)| {
                let frame = if d.is_outlier {
                    Frame::identity()
                } else {
                    Frame::new(d.axis, pivot)
                };
                PartitionSpec {
                    id,
                    frame,
                    domain: if d.is_outlier {
                        config.domain
                    } else {
                        frame.domain_in_frame(&config.domain)
                    },
                    tau: d.tau,
                    is_outlier: d.is_outlier,
                }
            })
            .collect();
        let perp_hists = bounds
            .iter()
            .map(|&b| CumulativeHistogram::new(config.tau_buckets, b))
            .collect();
        let indexes: Vec<I> = specs.iter().map(factory).collect();
        let mut vp = VpIndex::from_recovered_parts(config, specs, indexes, perp_hists);

        // Load the newest valid checkpoint.
        let mut ckpt_seq = 0;
        if let Some(ckpt) = load_latest_checkpoint(&dir)? {
            if ckpt.taus.len() != vp.specs.len() || ckpt.hists.len() + 1 != vp.specs.len() {
                return Err(IndexError::Wal(
                    "checkpoint: partition count mismatch".into(),
                ));
            }
            ckpt_seq = ckpt.seq;
            for (spec, tau) in vp.specs.iter_mut().zip(&ckpt.taus) {
                spec.tau = *tau;
            }
            vp.perp_hists = ckpt.hists;
            let mut buckets: Vec<Vec<MovingObject>> = vec![Vec::new(); vp.specs.len()];
            for (obj, p) in &ckpt.objects {
                if *p >= vp.specs.len() {
                    return Err(IndexError::Wal(format!(
                        "checkpoint: object {} in unknown partition {p}",
                        obj.id
                    )));
                }
                vp.assignment.insert(obj.id, *p);
                std::sync::Arc::make_mut(&mut vp.objects).insert(obj.id, *obj);
                buckets[*p].push(obj.to_frame(&vp.specs[*p].frame));
            }
            for (p, batch) in buckets.iter().enumerate() {
                if !batch.is_empty() {
                    vp.indexes[p].update_batch(batch)?;
                }
            }
        }

        // Open the streams and replay the consistent prefix above the
        // checkpoint. The meta stream is the event order; partition
        // streams carry the tick payloads keyed by seq.
        let mut dur = Durability::open(
            &dir,
            vp.specs.len(),
            vp.config.sync_policy,
            vp.config.checkpoint_every_ticks,
            // The manifest never records an injector (runtime-only);
            // attach one to the recovered index with
            // `set_fault_injector` if the harness needs it.
            None,
            vp.config.wal_retry,
        )?;
        let meta_records = dur.meta.replay(ckpt_seq)?;
        let mut tick_parts: HashMap<u64, Vec<TickPart>> = HashMap::new();
        for wal in &dur.parts {
            for rec in wal.replay(ckpt_seq)? {
                if rec.kind != KIND_TICK_PART {
                    return Err(IndexError::Wal(format!(
                        "partition stream holds foreign record kind {}",
                        rec.kind
                    )));
                }
                tick_parts
                    .entry(rec.seq)
                    .or_default()
                    .push(decode_tick_part(&rec.payload)?);
            }
        }
        dur.replaying = true;
        vp.durability = Some(dur);

        let mut last_seq = ckpt_seq;
        let mut events = 0usize;
        for rec in &meta_records {
            match rec.kind {
                KIND_INSERT => vp.insert(decode_object_record(&rec.payload)?)?,
                KIND_DELETE => vp.delete(decode_delete_record(&rec.payload)?)?,
                KIND_TAU_REFRESH => {
                    vp.refresh_tau()?;
                }
                KIND_TICK_COMMIT => {
                    let (nparts, _) = decode_tick_commit(&rec.payload)?;
                    let mut parts = tick_parts.remove(&rec.seq).unwrap_or_default();
                    if parts.len() != nparts {
                        // The commit survived but a partition record
                        // did not (possible only without fsync):
                        // everything from here is inconsistent — stop
                        // at the prefix.
                        break;
                    }
                    parts.sort_unstable_by_key(|(p, _, _)| *p);
                    vp.replay_tick(&parts)?;
                }
                k => {
                    return Err(IndexError::Wal(format!(
                        "meta stream holds unknown record kind {k}"
                    )))
                }
            }
            last_seq = rec.seq;
            events += 1;
        }

        let d = vp.durability.as_mut().expect("just installed");
        d.replaying = false;
        // Amputate the dead suffix: anything past the consistent
        // prefix (tick batches whose commit never became durable,
        // single records after a torn commit) is physically removed.
        // Otherwise those records would sit ahead of everything logged
        // from now on, and the *next* recovery would stop at the same
        // inconsistency — silently dropping events committed after
        // this recovery succeeded.
        d.meta.truncate_after(last_seq)?;
        for wal in &mut d.parts {
            wal.truncate_after(last_seq)?;
        }
        d.next_seq = last_seq + 1;
        let report = RecoveryReport {
            checkpoint_seq: ckpt_seq,
            last_seq,
            events_replayed: events,
        };
        Ok((vp, report))
    }

    /// True when this index was opened with a durability directory
    /// ([`VpIndex::open`]) and so supports
    /// [`checkpoint`](VpIndex::checkpoint). Serving layers consult
    /// this on the drain path: a purely in-memory index has nothing
    /// to checkpoint and drains without one.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Writes a checkpoint: flushes every sub-index's storage to a
    /// consistent on-disk state, snapshots the logical index state
    /// (object table, per-partition τ, online histograms) atomically,
    /// and truncates the log below it. Returns the checkpoint seq.
    pub fn checkpoint(&mut self) -> IndexResult<u64>
    where
        I: MovingObjectIndex,
    {
        self.check_writable()?;
        if self.durability.is_none() {
            return Err(IndexError::Config(
                "checkpoint requires a durable index (VpIndex::open)".into(),
            ));
        }
        for idx in &self.indexes {
            idx.flush_storage()?;
        }
        let taus: Vec<f64> = self.specs.iter().map(|s| s.tau).collect();
        let d = self.durability.as_mut().expect("checked above");
        let seq = d.next_seq - 1;
        // A failed publish (torn temp write, ENOSPC, failed rename) is
        // contained by the atomic-publish path: the previous
        // checkpoint and the whole log survive untouched, so the
        // caller may simply retry later.
        write_checkpoint(
            &d.dir,
            seq,
            &taus,
            &self.perp_hists,
            &self.objects,
            &self.assignment,
            d.fault.as_ref(),
        )?;
        // Only after the snapshot is durably published may the log
        // and older snapshots shrink.
        prune_checkpoints_below(&d.dir, seq)?;
        // The checkpoint snapshot subsumes every meta record at or
        // below `seq` — including single-op inserts/deletes, which are
        // small and may never push the active segment over its roll
        // threshold. Seal it so that dead prefix becomes a
        // truncatable segment instead of riding along forever.
        d.meta.seal_active()?;
        d.meta.truncate_below(seq + 1)?;
        for wal in &mut d.parts {
            wal.truncate_below(seq + 1)?;
        }
        d.ticks_since_ckpt = 0;
        // A checkpoint leaves nothing unsynced behind it: the next
        // EveryTicks window starts fresh.
        d.ticks_since_sync = 0;
        Ok(seq)
    }

    /// Attaches a fault injector to every durability stream and the
    /// checkpoint-publish path (sites `wal:meta`, `wal:part-<p>`,
    /// `ckpt`). The injector in [`VpConfig::fault`] is wired
    /// automatically at [`VpIndex::open`]; this setter exists for
    /// indexes that came back through [`VpIndex::recover`], whose
    /// manifest deliberately does not persist the handle.
    pub fn set_fault_injector(&mut self, handle: FaultHandle) {
        self.config.fault = Some(handle.clone());
        if let Some(d) = &mut self.durability {
            d.meta.set_fault_injector(handle.0.clone(), "wal:meta");
            for (p, wal) in d.parts.iter_mut().enumerate() {
                wal.set_fault_injector(handle.0.clone(), format!("wal:part-{p}"));
            }
            d.fault = Some(handle);
        }
    }

    /// Changes the transient-error retry policy on every durability
    /// stream (see [`VpConfig::wal_retry`]).
    pub fn set_wal_retry(&mut self, policy: RetryPolicy) {
        self.config.wal_retry = policy;
        if let Some(d) = &mut self.durability {
            d.meta.set_retry(policy, Arc::new(ThreadSleeper));
            for wal in &mut d.parts {
                wal.set_retry(policy, Arc::new(ThreadSleeper));
            }
        }
    }

    /// Logs a single-record event (insert/delete/τ-refresh) on the
    /// meta stream. No-op on non-durable indexes and during replay.
    pub(crate) fn log_single(&mut self, kind: u8, payload: &[u8]) -> IndexResult<()> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if d.replaying {
            return Ok(());
        }
        let seq = d.next_seq;
        d.next_seq += 1;
        d.meta.append(seq, kind, payload)?;
        d.meta.commit(d.policy)?;
        Ok(())
    }

    /// Applies one replayed tick: the logged per-partition batches,
    /// fed through the same routing bookkeeping + batched index paths
    /// the original [`VpIndex::apply_updates`] used.
    pub(crate) fn replay_tick(&mut self, parts: &[TickPart]) -> IndexResult<()>
    where
        I: MovingObjectIndex,
    {
        for (p, _, upserts) in parts {
            if *p >= self.specs.len() {
                return Err(IndexError::Wal(format!("tick names unknown partition {p}")));
            }
            for obj in upserts {
                self.assignment.insert(obj.id, *p);
                std::sync::Arc::make_mut(&mut self.objects).insert(obj.id, *obj);
                self.record_perp_speed(obj.vel);
            }
        }
        for (p, removals, upserts) in parts {
            let frame = self.specs[*p].frame;
            let local: Vec<MovingObject> = upserts.iter().map(|o| o.to_frame(&frame)).collect();
            Self::apply_partition(&mut self.indexes[*p], removals, &local)?;
        }
        Ok(())
    }
}
