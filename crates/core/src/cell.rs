//! The writer→reader snapshot handoff used by serving layers.
//!
//! A service front-end (e.g. the `vp-server` crate) keeps exactly one
//! writer thread that owns the `&mut` index and any number of reader
//! threads answering queries from [`IndexSnapshot`](crate::traits::IndexSnapshot)s. The
//! [`SnapshotCell`] is the single point where the two sides meet: the
//! writer [`publish`es](SnapshotCell::publish) a fresh snapshot after
//! every committed tick, readers [`load`](SnapshotCell::load) the
//! current one — an `Arc` bump under a momentary lock, never blocking
//! on query execution or tick application. Readers keep using a loaded
//! snapshot for as long as they like; the storage layer reclaims the
//! page versions a superseded snapshot pins once its last `Arc` drops.

use std::sync::{Arc, Mutex};

use crate::sub::TickDelta;

/// A shared slot holding the most recently published snapshot.
///
/// The lock is held only to swap or clone the `Arc` — queries run
/// entirely outside it — so readers and the writer never contend on
/// anything proportional to the data.
///
/// Alongside the snapshot the cell can carry the [`TickDelta`] of the
/// mutation that produced it ([`SnapshotCell::publish_with_delta`]),
/// so a subscription evaluator reading via
/// [`SnapshotCell::load_with_delta`] sees an atomic (state, change)
/// pair — the delta always describes exactly the step from the
/// previously published snapshot to this one.
pub struct SnapshotCell<S> {
    slot: Mutex<(Arc<S>, Option<Arc<TickDelta>>)>,
}

impl<S> SnapshotCell<S> {
    /// Creates a cell holding `snapshot` as the current view.
    pub fn new(snapshot: S) -> SnapshotCell<S> {
        SnapshotCell {
            slot: Mutex::new((Arc::new(snapshot), None)),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone); the returned
    /// handle stays valid — and keeps answering from its captured
    /// state — even after later [`SnapshotCell::publish`] calls.
    pub fn load(&self) -> Arc<S> {
        Arc::clone(&self.slot.lock().expect("snapshot cell poisoned").0)
    }

    /// The current snapshot plus the delta of the mutation that
    /// published it (`None` when the snapshot was published without
    /// one — initial state, or via [`SnapshotCell::publish`]).
    pub fn load_with_delta(&self) -> (Arc<S>, Option<Arc<TickDelta>>) {
        let slot = self.slot.lock().expect("snapshot cell poisoned");
        (Arc::clone(&slot.0), slot.1.clone())
    }

    /// Replaces the current snapshot. Called by the writer thread
    /// after each committed mutation batch; readers holding the old
    /// snapshot are unaffected. Clears any carried delta.
    pub fn publish(&self, snapshot: S) {
        *self.slot.lock().expect("snapshot cell poisoned") = (Arc::new(snapshot), None);
    }

    /// Replaces the current snapshot and attaches the change set that
    /// produced it, atomically.
    pub fn publish_with_delta(&self, snapshot: S, delta: TickDelta) {
        *self.slot.lock().expect("snapshot cell poisoned") =
            (Arc::new(snapshot), Some(Arc::new(delta)));
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for SnapshotCell<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_supersedes_but_old_handles_survive() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.publish(vec![4, 5]);
        assert_eq!(*old, vec![1, 2, 3], "held snapshot unaffected");
        assert_eq!(*cell.load(), vec![4, 5], "new loads see the publish");
    }

    #[test]
    fn concurrent_loads_and_publishes() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        std::thread::scope(|s| {
            let c = Arc::clone(&cell);
            s.spawn(move || {
                for i in 1..=100u64 {
                    c.publish(i);
                }
            });
            for _ in 0..4 {
                let c = Arc::clone(&cell);
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let v = *c.load();
                        assert!(v >= last, "published values only move forward");
                        last = v;
                    }
                });
            }
        });
        assert_eq!(*cell.load(), 100);
    }

    #[test]
    fn delta_rides_along_with_the_publish() {
        let cell = SnapshotCell::new(vec![1]);
        assert!(cell.load_with_delta().1.is_none(), "initial: no delta");
        cell.publish_with_delta(vec![1, 2], TickDelta::from_delete(9, 4.0));
        let (snap, delta) = cell.load_with_delta();
        assert_eq!(*snap, vec![1, 2]);
        assert_eq!(delta.unwrap().removals, vec![9]);
        // A plain publish clears the carried delta.
        cell.publish(vec![3]);
        assert!(cell.load_with_delta().1.is_none());
    }
}
