//! Configuration of the VP technique.

use std::path::PathBuf;

use vp_geom::{Point, Rect};
use vp_storage::{FaultHandle, RetryPolicy};
use vp_wal::SyncPolicy;

/// Tunables for the velocity analyzer and the VP index manager.
///
/// Defaults follow the paper's experimental setup (Section 6): 2 DVA
/// indexes, a 10,000-point velocity sample, a 100-bucket histogram for
/// τ selection, and the 100 km × 100 km data domain of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct VpConfig {
    /// Number of DVA partitions (`k`). The paper sets 2 for road
    /// networks ("most road networks have two dominant traffic
    /// directions").
    pub k: usize,
    /// Velocity sample size fed to the analyzer.
    pub sample_size: usize,
    /// Buckets in the per-partition cumulative speed histogram used for
    /// τ selection.
    pub tau_buckets: usize,
    /// Seed for the k-means random initialization (the analyzer is
    /// fully deterministic given this seed).
    pub seed: u64,
    /// Maximum k-means reassignment rounds.
    pub max_iters: usize,
    /// World-space data domain; DVA frames pivot about its center.
    pub domain: Rect,
    /// Degree of parallelism for per-tick batch application
    /// ([`crate::VpIndex::apply_updates`]). Partition batches are
    /// independent, so up to `min(tick_workers, partitions)` worker
    /// threads apply them concurrently. `1` (the default) is the
    /// deterministic sequential mode: partitions are applied in order
    /// on the calling thread, which oracle tests rely on. Results are
    /// identical either way — partitions share no index state — only
    /// the schedule changes.
    pub tick_workers: usize,
    /// Directory of the durability artifacts (WAL streams, manifest,
    /// checkpoints). `None` (the default) keeps the index purely in
    /// memory — the seed behaviour, used by all paper reproductions.
    /// Set it and construct with [`crate::VpIndex::open`] /
    /// [`crate::VpIndex::recover`] for a durable index.
    pub wal_dir: Option<PathBuf>,
    /// When WAL commits reach stable storage: fsync per commit
    /// ([`SyncPolicy::Always`]), OS-buffered ([`SyncPolicy::Never`]),
    /// or fsync amortized over every n-th tick
    /// ([`SyncPolicy::EveryTicks`] — cross-tick group commit; an OS
    /// crash loses at most the ticks since the last boundary).
    /// Ignored without `wal_dir`.
    pub sync_policy: SyncPolicy,
    /// Automatic checkpoint cadence: flush sub-index storage, snapshot
    /// the object table, and truncate the log every this many ticks
    /// ([`crate::VpIndex::apply_updates`] calls). `0` (the default)
    /// means checkpoints happen only via the explicit
    /// [`crate::VpIndex::checkpoint`] call.
    pub checkpoint_every_ticks: u64,
    /// Fault injector wired into the durability layer (WAL streams and
    /// the checkpoint/manifest atomic-publish path) at open time —
    /// the test harness's handle for torn writes, ENOSPC, and fsync
    /// failures. `None` (the default) injects nothing. Runtime-only:
    /// never persisted in the manifest; attach one to a recovered
    /// index with [`crate::VpIndex::set_fault_injector`].
    pub fault: Option<FaultHandle>,
    /// Retry policy for transient WAL I/O errors (EIO, ENOSPC) at the
    /// flush sites. Failed fsyncs are **never** retried — they poison
    /// the stream instead. Runtime-only, like `fault`.
    pub wal_retry: RetryPolicy,
}

impl Default for VpConfig {
    fn default() -> Self {
        VpConfig {
            k: 2,
            sample_size: 10_000,
            tau_buckets: 100,
            seed: 0x5eed,
            max_iters: 100,
            domain: Rect::from_bounds(0.0, 0.0, 100_000.0, 100_000.0),
            tick_workers: 1,
            wal_dir: None,
            sync_policy: SyncPolicy::Always,
            checkpoint_every_ticks: 0,
            fault: None,
            wal_retry: RetryPolicy::standard(),
        }
    }
}

impl VpConfig {
    /// The pivot about which DVA frames rotate (domain center).
    pub fn pivot(&self) -> Point {
        self.domain.center()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be >= 1".into());
        }
        if self.tau_buckets == 0 {
            return Err("tau_buckets must be >= 1".into());
        }
        if self.domain.is_empty() || self.domain.area() <= 0.0 {
            return Err("domain must have positive area".into());
        }
        if self.tick_workers == 0 {
            return Err("tick_workers must be >= 1".into());
        }
        // Rejected here — where the config enters the system — because
        // the manifest codec also refuses it, and a value that only
        // failed at recovery time would leave the index unrecoverable.
        if self.sync_policy == SyncPolicy::EveryTicks(0) {
            return Err("sync_policy EveryTicks(n) requires n >= 1".into());
        }
        Ok(())
    }

    /// Returns the configuration with the given tick-application
    /// parallelism (builder-style convenience).
    pub fn with_tick_workers(mut self, workers: usize) -> VpConfig {
        self.tick_workers = workers;
        self
    }

    /// Returns the configuration with durability enabled in `dir`
    /// (builder-style convenience).
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> VpConfig {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Returns the configuration with the given WAL sync policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> VpConfig {
        self.sync_policy = policy;
        self
    }

    /// Returns the configuration checkpointing every `ticks` ticks
    /// (`0` = only explicit checkpoints).
    pub fn with_checkpoint_every_ticks(mut self, ticks: u64) -> VpConfig {
        self.checkpoint_every_ticks = ticks;
        self
    }

    /// Returns the configuration with a fault injector attached to the
    /// durability layer (builder-style convenience; test harnesses).
    pub fn with_fault_injector(mut self, handle: FaultHandle) -> VpConfig {
        self.fault = Some(handle);
        self
    }

    /// Returns the configuration with the given transient-error retry
    /// policy for WAL flushes.
    pub fn with_wal_retry(mut self, policy: RetryPolicy) -> VpConfig {
        self.wal_retry = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = VpConfig::default();
        assert_eq!(c.k, 2);
        assert_eq!(c.sample_size, 10_000);
        assert_eq!(c.tau_buckets, 100);
        assert_eq!(c.domain.width(), 100_000.0);
        assert!(c.validate().is_ok());
        assert_eq!(c.pivot(), Point::new(50_000.0, 50_000.0));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = VpConfig {
            k: 0,
            ..VpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = VpConfig {
            tau_buckets: 0,
            ..VpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = VpConfig {
            domain: Rect::EMPTY,
            ..VpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = VpConfig {
            tick_workers: 0,
            ..VpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = VpConfig {
            sync_policy: SyncPolicy::EveryTicks(0),
            ..VpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = VpConfig {
            sync_policy: SyncPolicy::EveryTicks(1),
            ..VpConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn durability_knobs_default_off() {
        let c = VpConfig::default();
        assert_eq!(c.wal_dir, None);
        assert_eq!(c.sync_policy, SyncPolicy::Always);
        assert_eq!(c.checkpoint_every_ticks, 0);
        let c = c
            .with_wal_dir("/tmp/vp-wal")
            .with_sync_policy(SyncPolicy::Never)
            .with_checkpoint_every_ticks(8);
        assert_eq!(
            c.wal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/vp-wal"))
        );
        assert_eq!(c.sync_policy, SyncPolicy::Never);
        assert_eq!(c.checkpoint_every_ticks, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn tick_workers_default_and_builder() {
        assert_eq!(VpConfig::default().tick_workers, 1, "sequential default");
        let c = VpConfig::default().with_tick_workers(4);
        assert_eq!(c.tick_workers, 4);
        assert!(c.validate().is_ok());
    }
}
