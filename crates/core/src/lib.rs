//! # vp-core — the velocity partitioning (VP) technique
//!
//! This crate implements the paper's primary contribution plus the
//! shared vocabulary of the workspace:
//!
//! * [`MovingObject`], [`RangeQuery`] and the [`MovingObjectIndex`]
//!   trait — the common interface implemented by the TPR\*-tree
//!   (`vp-tpr`) and the Bx-tree (`vp-bx`), and *wrapped* by the VP
//!   index manager.
//! * [`pca`] / [`kmeans`] — principal components analysis in velocity
//!   space and the paper's k-means variant that clusters velocity
//!   points by perpendicular distance to each cluster's 1st principal
//!   component (Algorithm 2, `FindDVAs`).
//! * [`tau`] — selection of the outlier threshold τ per DVA partition
//!   by minimizing the rate of search-area expansion (Section 5.2,
//!   Equations 8–10) over a cumulative speed histogram.
//! * [`analyzer`] — the velocity analyzer (Algorithm 1): find DVAs,
//!   pick τ, evict outliers, refit the DVAs.
//! * [`manager`] — the index manager: one sub-index per DVA (in the
//!   DVA's rotated coordinate frame) plus an outlier index in world
//!   coordinates; routes insertions/deletions/updates and executes
//!   range queries by transforming them into every frame and merging
//!   the exact-filtered results (Algorithm 3).
//! * [`sub`] — standing continuous queries: registered range/kNN
//!   subscriptions re-evaluated incrementally per tick from the
//!   [`TickDelta`], emitting `Enter`/`Leave`/`Moved` events.
//!
//! The crate is index-agnostic: anything implementing
//! [`MovingObjectIndex`] can be velocity partitioned, mirroring the
//! paper's claim that VP is a generic technique.

pub mod analyzer;
pub mod cell;
pub mod config;
pub mod durable;
pub mod error;
pub(crate) mod fanout;
pub mod histogram;
pub mod kmeans;
pub mod knn;
pub mod manager;
pub mod object;
pub mod pca;
pub mod query;
pub mod sub;
pub mod tau;
pub mod traits;

pub use analyzer::{AnalyzerOutput, DvaPartition, VelocityAnalyzer};
pub use cell::SnapshotCell;
pub use config::VpConfig;
pub use durable::RecoveryReport;
pub use error::{IndexError, IndexResult};
pub use histogram::CumulativeHistogram;
pub use knn::{knn_at, knn_batch, KnnQuery, Neighbor};
pub use manager::{Health, PartitionId, PartitionSpec, VpIndex, VpSnapshot};
pub use object::{MovingObject, ObjectId};
pub use query::{QueryRegion, RangeQuery};
pub use sub::{
    KnnSubSpec, RangeSubSpec, RetainedBatch, SubEvent, SubEventKind, SubscriptionConfig,
    SubscriptionId, SubscriptionSet, TickDelta,
};
pub use traits::{IndexSnapshot, MovingObjectIndex, SnapshotIndex};
pub use vp_wal::SyncPolicy;
