//! Error types shared by all moving-object indexes.

use vp_storage::StorageError;
use vp_wal::WalError;

use crate::object::ObjectId;

/// Errors surfaced by index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Underlying page storage failed.
    Storage(StorageError),
    /// Insert of an object id that is already present.
    DuplicateObject(ObjectId),
    /// Delete/update of an object id that is not present.
    UnknownObject(ObjectId),
    /// An object lies outside the index's configured data domain.
    OutOfDomain(ObjectId),
    /// Invalid configuration (e.g. zero partitions requested).
    Config(String),
    /// The write-ahead log, a checkpoint, or the recovery manifest
    /// failed (I/O error or failed validation).
    Wal(String),
    /// The index has entered read-only mode after an unrecoverable
    /// durability failure (e.g. a failed fsync, whose on-disk effect
    /// is unknowable — see the fsyncgate semantics in `vp-wal`).
    /// Queries keep working; every mutation returns this until the
    /// index is rebuilt via recovery.
    ReadOnly(String),
}

impl IndexError {
    /// True when this error carries a poisoned-WAL failure (a failed
    /// fsync whose on-disk effect is unknowable — see
    /// [`vp_wal::WalError::Poisoned`]). Serving layers surface this as
    /// its own protocol error code, distinct from ordinary storage
    /// errors: the client learns the index is about to demote to
    /// read-only rather than seeing a retryable-looking I/O failure.
    pub fn is_wal_poisoned(&self) -> bool {
        // `From<WalError>` stringifies through `Display`, whose
        // `Poisoned` arm is the only producer of this phrase.
        matches!(self, IndexError::Wal(msg) if msg.contains("poisoned"))
    }
}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

impl From<WalError> for IndexError {
    fn from(e: WalError) -> Self {
        IndexError::Wal(e.to_string())
    }
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::DuplicateObject(id) => write!(f, "object {id} already present"),
            IndexError::UnknownObject(id) => write!(f, "object {id} not present"),
            IndexError::OutOfDomain(id) => write!(f, "object {id} outside the data domain"),
            IndexError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            IndexError::Wal(msg) => write!(f, "durability error: {msg}"),
            IndexError::ReadOnly(reason) => {
                write!(f, "index is read-only (recover to resume writes): {reason}")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias for index operations.
pub type IndexResult<T> = Result<T, IndexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = IndexError::DuplicateObject(7);
        assert!(e.to_string().contains("7"));
        let s: IndexError = StorageError::PoolExhausted.into();
        assert!(matches!(s, IndexError::Storage(_)));
        use std::error::Error;
        assert!(s.source().is_some());
        assert!(e.source().is_none());
    }
}
