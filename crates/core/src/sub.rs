//! Standing continuous queries (subscriptions) over a moving-object
//! index.
//!
//! The paper's signature workloads — geofence alerts, fleet dispatch,
//! "notify me when a courier is within 500 m" — are *standing* queries
//! re-evaluated every tick, not one-shots. A [`SubscriptionSet`] holds
//! the registered queries and, once per committed tick, turns the
//! tick's [`TickDelta`] into per-subscription [`SubEvent`]s
//! (`Enter`/`Leave`/`Moved`) without re-running every query from
//! scratch.
//!
//! ## Incremental evaluation
//!
//! Each **range** subscription caches a *candidate set*: the exact
//! answer of one time-interval probe
//! `time_interval(region, t₀+dt, t₀+horizon+dt)` issued at
//! registration (or refresh) time `t₀`. Trajectories are linear, so
//! for any later tick time `t ≤ t₀ + horizon` an object that was not
//! updated since the probe matches the slice at `t+dt` only if it
//! matched the interval probe — its candidates entry is still valid.
//! Objects that *were* updated are patched in memory from the tick
//! delta alone: each upsert is tested against the *remaining* window
//! `time_interval(region, t+dt, window_end+dt)` with the exact
//! [`RangeQuery::matches`] predicate (added on match, dropped
//! otherwise), and removals are dropped. The per-tick result is then
//! the candidates filtered by the exact `time_slice(region, t+dt)`
//! predicate — pure in-memory math, no index pages touched. Only when
//! a subscription's window expires (`t > window_end`) does it go back
//! to the index, and all expired subscriptions refresh together
//! through one [`MovingObjectIndex::range_query_batch`] call so the
//! shared-sweep machinery groups their scans.
//!
//! ## Sequence numbers & resume
//!
//! Every *emitted* event batch (a non-empty per-subscription event
//! group from one tick, or a registration backfill) consumes one
//! monotone per-subscription **sequence number**, and the last
//! [`SubscriptionConfig::retain`] batches are kept in a per-sub ring
//! ([`RetainedBatch`]). A serving layer whose client reconnects asks
//! [`retained_since`](SubscriptionSet::retained_since) for a gap-free
//! replay; when the ring no longer reaches back far enough the layer
//! falls back to [`resnapshot`](SubscriptionSet::resnapshot), which
//! re-evaluates the subscription from the index, resets its state,
//! and emits a fresh full backfill under the next sequence number.
//! Sequence arithmetic is what lets the wire layer prove "no event
//! duplicated, none skipped" end to end.
//!
//! **kNN** subscriptions have no static region to cache against, so
//! they re-run each tick through [`knn_batch`] — which is itself
//! incremental *within* the query: its expanding probe chain passes
//! the previously covered region to
//! [`MovingObjectIndex::knn_candidates`], so each enlargement round
//! scans only the delta ring beyond the last probe.
//!
//! ## Event semantics
//!
//! For each subscription, per tick: `Enter` for ids in the new result
//! but not the previous one, `Leave` for ids that dropped out, and
//! `Moved` for ids that stayed in the result *and* were re-reported in
//! this tick's batch. Events are emitted in ascending subscription-id
//! order; within one subscription all `Enter`s (ascending object id)
//! precede all `Leave`s, which precede all `Moved`s. The stream is
//! deterministic for a given registration/tick history.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use vp_geom::{Point, Rect};

use crate::error::IndexResult;
use crate::knn::{knn_at, knn_batch, KnnQuery};
use crate::object::{MovingObject, ObjectId};
use crate::query::{QueryRegion, RangeQuery};
use crate::traits::MovingObjectIndex;

/// Identifies one registered subscription within a [`SubscriptionSet`].
pub type SubscriptionId = u64;

/// What happened to one object relative to one subscription's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SubEventKind {
    /// The object joined the subscription's result set this tick.
    Enter,
    /// The object left the result set this tick.
    Leave,
    /// The object stayed in the result set and re-reported (was part
    /// of this tick's update batch).
    Moved,
}

/// One subscription event, emitted by [`SubscriptionSet::on_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubEvent {
    /// The subscription this event belongs to.
    pub sub: SubscriptionId,
    /// Enter / Leave / Moved.
    pub kind: SubEventKind,
    /// The object the event is about.
    pub id: ObjectId,
}

/// A standing range query: objects inside `region` at `now +
/// predictive_dt`, re-evaluated every tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSubSpec {
    /// The (static) query region.
    pub region: QueryRegion,
    /// Predictive offset: the slice time evaluated each tick is the
    /// tick time plus this. Zero for "where is everyone right now".
    pub predictive_dt: f64,
}

/// A standing kNN query: the `k` objects nearest `center` at `now +
/// predictive_dt`, re-evaluated every tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnSubSpec {
    /// Query point.
    pub center: Point,
    /// Result size.
    pub k: usize,
    /// Predictive offset, as in [`RangeSubSpec::predictive_dt`].
    pub predictive_dt: f64,
}

/// The per-tick change set: what one committed mutation batch did.
///
/// Produced by [`crate::VpIndex::apply_updates_delta`] (or built
/// directly for single-op mutations) and consumed by
/// [`SubscriptionSet::on_tick`]. `upserts` carries the post-tick state
/// of every object written this tick (last write wins within the
/// batch, ascending id); `removals` the ids deleted this tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickDelta {
    /// The tick's logical time (the newest `ref_time` in the batch).
    pub time: f64,
    /// Post-tick state of each object written this tick, ascending id.
    pub upserts: Vec<MovingObject>,
    /// Ids deleted this tick, ascending.
    pub removals: Vec<ObjectId>,
}

impl TickDelta {
    /// The delta of one tick batch with upsert semantics: last write
    /// per id wins, winners sorted by id, `time` = the newest
    /// reference time in the batch.
    pub fn from_updates(updates: &[MovingObject]) -> TickDelta {
        let mut latest: BTreeMap<ObjectId, MovingObject> = BTreeMap::new();
        let mut time = f64::NEG_INFINITY;
        for obj in updates {
            latest.insert(obj.id, *obj);
            time = time.max(obj.ref_time);
        }
        TickDelta {
            time: if latest.is_empty() { 0.0 } else { time },
            upserts: latest.into_values().collect(),
            removals: Vec::new(),
        }
    }

    /// The delta of a single insert.
    pub fn from_insert(obj: MovingObject) -> TickDelta {
        TickDelta {
            time: obj.ref_time,
            upserts: vec![obj],
            removals: Vec::new(),
        }
    }

    /// The delta of a single delete. Deletes carry no timestamp of
    /// their own, so the caller supplies the current logical time.
    pub fn from_delete(id: ObjectId, time: f64) -> TickDelta {
        TickDelta {
            time,
            upserts: Vec::new(),
            removals: vec![id],
        }
    }

    /// True when the delta writes or removes nothing.
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.removals.is_empty()
    }
}

/// Evaluation parameters for a [`SubscriptionSet`].
#[derive(Debug, Clone)]
pub struct SubscriptionConfig {
    /// The data domain (bounds kNN probe expansion).
    pub domain: Rect,
    /// How far ahead (in timestamps) each range subscription's
    /// interval probe reaches. Larger horizons refresh less often but
    /// probe a larger region per refresh.
    pub horizon: f64,
    /// Worker threads for the grouped refresh / kNN batch passes
    /// (1 = run on the calling thread).
    pub workers: usize,
    /// Emitted event batches retained per subscription for
    /// reconnect replay ([`SubscriptionSet::retained_since`]).
    /// 0 disables replay — every resume becomes a full
    /// [`resnapshot`](SubscriptionSet::resnapshot).
    pub retain: usize,
}

impl SubscriptionConfig {
    /// Defaults: 60-timestamp horizon, sequential evaluation, 64
    /// retained batches per subscription.
    pub fn new(domain: Rect) -> SubscriptionConfig {
        SubscriptionConfig {
            domain,
            horizon: 60.0,
            workers: 1,
            retain: 64,
        }
    }

    /// Sets the candidate-probe horizon.
    pub fn with_horizon(mut self, horizon: f64) -> SubscriptionConfig {
        self.horizon = horizon;
        self
    }

    /// Sets the evaluation worker count.
    pub fn with_workers(mut self, workers: usize) -> SubscriptionConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-subscription replay-ring capacity.
    pub fn with_retain(mut self, retain: usize) -> SubscriptionConfig {
        self.retain = retain;
        self
    }
}

/// One emitted event batch, retained for reconnect replay: everything
/// a serving layer needs to re-send the frame (sequence number,
/// evaluation time, the `(kind, id)` pairs in emission order).
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedBatch {
    /// The batch's per-subscription sequence number (1-based,
    /// contiguous across emitted batches).
    pub seq: u64,
    /// Evaluation time of the tick (or registration) that produced it.
    pub time: f64,
    /// `(kind, object id)` pairs in emission order.
    pub events: Vec<(SubEventKind, ObjectId)>,
}

/// Per-subscription sequence counter + bounded replay ring.
#[derive(Debug, Clone, Default)]
struct SubLog {
    /// Last assigned sequence number (0 = nothing emitted yet).
    seq: u64,
    retained: VecDeque<RetainedBatch>,
}

impl SubLog {
    /// Assigns the next sequence number to `events` and retains the
    /// batch (evicting the oldest beyond `retain`).
    fn record(&mut self, time: f64, events: Vec<(SubEventKind, ObjectId)>, retain: usize) -> u64 {
        self.seq += 1;
        self.retained.push_back(RetainedBatch {
            seq: self.seq,
            time,
            events,
        });
        while self.retained.len() > retain {
            self.retained.pop_front();
        }
        self.seq
    }
}

#[derive(Debug, Clone)]
struct RangeSub {
    spec: RangeSubSpec,
    /// Exact answer of the last interval probe, patched per tick from
    /// deltas; superset of the slice result for any `t ≤ window_end`.
    candidates: BTreeSet<ObjectId>,
    /// Result set as of the last evaluation.
    result: BTreeSet<ObjectId>,
    /// Last tick time the candidate set is valid for.
    window_end: f64,
    log: SubLog,
}

#[derive(Debug, Clone)]
struct KnnSub {
    spec: KnnSubSpec,
    result: BTreeSet<ObjectId>,
    log: SubLog,
}

/// The registered standing queries plus their cached evaluation state.
///
/// Owned by whoever owns the tick loop (the `vp-server` writer
/// thread, a test harness): call
/// [`register_range`](SubscriptionSet::register_range) /
/// [`register_knn`](SubscriptionSet::register_knn) /
/// [`unregister`](SubscriptionSet::unregister) between ticks, and
/// [`on_tick`](SubscriptionSet::on_tick) after each committed
/// mutation with the index (or a snapshot of it) and the tick's
/// delta.
#[derive(Debug)]
pub struct SubscriptionSet {
    cfg: SubscriptionConfig,
    next_id: SubscriptionId,
    ranges: BTreeMap<SubscriptionId, RangeSub>,
    knns: BTreeMap<SubscriptionId, KnnSub>,
}

impl SubscriptionSet {
    /// An empty set evaluating under `cfg`.
    pub fn new(cfg: SubscriptionConfig) -> SubscriptionSet {
        SubscriptionSet {
            cfg,
            next_id: 1,
            ranges: BTreeMap::new(),
            knns: BTreeMap::new(),
        }
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.ranges.len() + self.knns.len()
    }

    /// True when no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.knns.is_empty()
    }

    /// The evaluation parameters.
    pub fn config(&self) -> &SubscriptionConfig {
        &self.cfg
    }

    /// Registers a range subscription as of logical time `now` (the
    /// last committed tick time; must not precede any stored object's
    /// reference time). Returns the new id plus the `Enter` backfill:
    /// one event per object currently in the result, ascending id. A
    /// non-empty backfill consumes the subscription's first sequence
    /// number.
    pub fn register_range<I: MovingObjectIndex + ?Sized>(
        &mut self,
        index: &I,
        now: f64,
        spec: RangeSubSpec,
    ) -> IndexResult<(SubscriptionId, Vec<SubEvent>)> {
        let id = self.next_id;
        let backfill = self.register_range_as(index, now, spec, id)?;
        Ok((id, backfill))
    }

    /// [`register_range`](SubscriptionSet::register_range) under a
    /// caller-chosen id — the serving layer uses this to revive a
    /// reaped subscription under its original id so a resuming client
    /// keeps a stable handle. Fails when the id is already live.
    pub fn register_range_as<I: MovingObjectIndex + ?Sized>(
        &mut self,
        index: &I,
        now: f64,
        spec: RangeSubSpec,
        sub: SubscriptionId,
    ) -> IndexResult<Vec<SubEvent>> {
        self.claim_id(sub)?;
        let dt = spec.predictive_dt;
        let window_end = now + self.cfg.horizon;
        let probe = RangeQuery::time_interval(spec.region, now + dt, window_end + dt);
        let candidates: BTreeSet<ObjectId> = index.range_query(&probe)?.into_iter().collect();
        let slice = RangeQuery::time_slice(spec.region, now + dt);
        let mut result = BTreeSet::new();
        for &id in &candidates {
            if let Some(obj) = index.get_object(id)? {
                if slice.matches(&obj) {
                    result.insert(id);
                }
            }
        }
        let mut log = SubLog::default();
        if !result.is_empty() {
            log.record(
                now,
                result.iter().map(|&id| (SubEventKind::Enter, id)).collect(),
                self.cfg.retain,
            );
        }
        let backfill = result
            .iter()
            .map(|&id| SubEvent {
                sub,
                kind: SubEventKind::Enter,
                id,
            })
            .collect();
        self.ranges.insert(
            sub,
            RangeSub {
                spec,
                candidates,
                result,
                window_end,
                log,
            },
        );
        Ok(backfill)
    }

    /// Registers a kNN subscription as of logical time `now`. Returns
    /// the new id plus the `Enter` backfill for the current `k`
    /// nearest, ascending id.
    pub fn register_knn<I: MovingObjectIndex + ?Sized>(
        &mut self,
        index: &I,
        now: f64,
        spec: KnnSubSpec,
    ) -> IndexResult<(SubscriptionId, Vec<SubEvent>)> {
        let id = self.next_id;
        let backfill = self.register_knn_as(index, now, spec, id)?;
        Ok((id, backfill))
    }

    /// [`register_knn`](SubscriptionSet::register_knn) under a
    /// caller-chosen id (see
    /// [`register_range_as`](SubscriptionSet::register_range_as)).
    pub fn register_knn_as<I: MovingObjectIndex + ?Sized>(
        &mut self,
        index: &I,
        now: f64,
        spec: KnnSubSpec,
        sub: SubscriptionId,
    ) -> IndexResult<Vec<SubEvent>> {
        self.claim_id(sub)?;
        let neighbors = knn_at(
            index,
            spec.center,
            spec.k,
            now + spec.predictive_dt,
            &self.cfg.domain,
        )?;
        let result: BTreeSet<ObjectId> = neighbors.iter().map(|n| n.id).collect();
        let mut log = SubLog::default();
        if !result.is_empty() {
            log.record(
                now,
                result.iter().map(|&id| (SubEventKind::Enter, id)).collect(),
                self.cfg.retain,
            );
        }
        let backfill = result
            .iter()
            .map(|&id| SubEvent {
                sub,
                kind: SubEventKind::Enter,
                id,
            })
            .collect();
        self.knns.insert(sub, KnnSub { spec, result, log });
        Ok(backfill)
    }

    /// Reserves `sub` for a new registration: errors when live,
    /// advances the allocator past it otherwise (ids are never
    /// recycled by the automatic allocator).
    fn claim_id(&mut self, sub: SubscriptionId) -> IndexResult<()> {
        if self.ranges.contains_key(&sub) || self.knns.contains_key(&sub) {
            return Err(crate::error::IndexError::Config(format!(
                "subscription id {sub} is already registered"
            )));
        }
        self.next_id = self.next_id.max(sub + 1);
        Ok(())
    }

    /// Drops a subscription. Returns false when the id is unknown
    /// (already unregistered); no events are emitted either way.
    pub fn unregister(&mut self, sub: SubscriptionId) -> bool {
        self.ranges.remove(&sub).is_some() || self.knns.remove(&sub).is_some()
    }

    /// Advances every subscription past one committed tick and returns
    /// the resulting events (ordering documented at module level).
    ///
    /// `index` must reflect the post-tick state `delta` describes — the
    /// live index right after the mutation committed, or the snapshot
    /// published for it. Tick times must be non-decreasing across
    /// calls and must not precede the `now` passed to any earlier
    /// registration.
    pub fn on_tick<I: MovingObjectIndex + Sync + ?Sized>(
        &mut self,
        index: &I,
        delta: &TickDelta,
    ) -> IndexResult<Vec<SubEvent>> {
        let t = delta.time;

        // Pass 1 — grouped refresh: every range subscription whose
        // cached interval window expired goes back to the index, all
        // of them through ONE range_query_batch call so the
        // shared-sweep plan groups their scans.
        let expired: Vec<SubscriptionId> = self
            .ranges
            .iter()
            .filter(|(_, s)| t > s.window_end)
            .map(|(&id, _)| id)
            .collect();
        if !expired.is_empty() {
            let probes: Vec<RangeQuery> = expired
                .iter()
                .map(|id| {
                    let s = &self.ranges[id];
                    let dt = s.spec.predictive_dt;
                    RangeQuery::time_interval(s.spec.region, t + dt, t + self.cfg.horizon + dt)
                })
                .collect();
            let answers = index.range_query_batch(&probes)?;
            for (id, ids) in expired.iter().zip(answers) {
                let s = self.ranges.get_mut(id).expect("expired sub present");
                s.candidates = ids.into_iter().collect();
                s.window_end = t + self.cfg.horizon;
            }
        }

        // Pass 2 — delta patch, zero index I/O: each upsert is tested
        // against each still-cached subscription's remaining window
        // with the exact predicate; removals drop out. Freshly
        // refreshed subscriptions already absorbed the tick (the probe
        // ran post-commit), and re-testing is a no-op for them, so one
        // uniform loop is fine.
        if !delta.is_empty() {
            for s in self.ranges.values_mut() {
                let dt = s.spec.predictive_dt;
                let remaining = RangeQuery::time_interval(s.spec.region, t + dt, s.window_end + dt);
                for obj in &delta.upserts {
                    if remaining.matches(obj) {
                        s.candidates.insert(obj.id);
                    } else {
                        s.candidates.remove(&obj.id);
                    }
                }
                for id in &delta.removals {
                    s.candidates.remove(id);
                }
            }
        }

        // Pass 3 — evaluate. Range results come from the candidate
        // cache (in-memory exact slice filter); kNN results from one
        // knn_batch whose probe chains are internally incremental via
        // the knn_candidates covered-region contract.
        let mut new_results: BTreeMap<SubscriptionId, BTreeSet<ObjectId>> = BTreeMap::new();
        for (&sub, s) in &self.ranges {
            let slice = RangeQuery::time_slice(s.spec.region, t + s.spec.predictive_dt);
            let mut result = BTreeSet::new();
            for &id in &s.candidates {
                if let Some(obj) = index.get_object(id)? {
                    if slice.matches(&obj) {
                        result.insert(id);
                    }
                }
            }
            new_results.insert(sub, result);
        }
        if !self.knns.is_empty() {
            let ids: Vec<SubscriptionId> = self.knns.keys().copied().collect();
            let queries: Vec<KnnQuery> = self
                .knns
                .values()
                .map(|s| KnnQuery {
                    center: s.spec.center,
                    k: s.spec.k,
                    t: t + s.spec.predictive_dt,
                })
                .collect();
            let answers = knn_batch(index, &queries, &self.cfg.domain, self.cfg.workers)?;
            for (sub, neighbors) in ids.into_iter().zip(answers) {
                new_results.insert(sub, neighbors.into_iter().map(|n| n.id).collect());
            }
        }

        // Pass 4 — diff and emit, ascending subscription id. Each
        // subscription's non-empty batch is also recorded in its
        // replay ring under the next sequence number.
        let moved_ids: BTreeSet<ObjectId> = delta.upserts.iter().map(|o| o.id).collect();
        let retain = self.cfg.retain;
        let mut events = Vec::new();
        for (sub, new) in new_results {
            let old = if let Some(s) = self.ranges.get(&sub) {
                &s.result
            } else {
                &self.knns[&sub].result
            };
            let mut batch: Vec<(SubEventKind, ObjectId)> = Vec::new();
            for &id in new.difference(old) {
                batch.push((SubEventKind::Enter, id));
            }
            for &id in old.difference(&new) {
                batch.push((SubEventKind::Leave, id));
            }
            for &id in new.intersection(old) {
                if moved_ids.contains(&id) {
                    batch.push((SubEventKind::Moved, id));
                }
            }
            events.extend(batch.iter().map(|&(kind, id)| SubEvent { sub, kind, id }));
            if let Some(s) = self.ranges.get_mut(&sub) {
                s.result = new;
                if !batch.is_empty() {
                    s.log.record(t, batch, retain);
                }
            } else {
                let s = self.knns.get_mut(&sub).expect("knn sub present");
                s.result = new;
                if !batch.is_empty() {
                    s.log.record(t, batch, retain);
                }
            }
        }
        Ok(events)
    }

    /// True when `sub` is currently registered.
    pub fn contains(&self, sub: SubscriptionId) -> bool {
        self.ranges.contains_key(&sub) || self.knns.contains_key(&sub)
    }

    /// The range spec of `sub`, if it is a live range subscription.
    pub fn range_spec(&self, sub: SubscriptionId) -> Option<RangeSubSpec> {
        self.ranges.get(&sub).map(|s| s.spec)
    }

    /// The kNN spec of `sub`, if it is a live kNN subscription.
    pub fn knn_spec(&self, sub: SubscriptionId) -> Option<KnnSubSpec> {
        self.knns.get(&sub).map(|s| s.spec)
    }

    /// The last sequence number emitted for `sub` (0 = nothing
    /// emitted yet), or None if the id is unknown.
    pub fn last_seq(&self, sub: SubscriptionId) -> Option<u64> {
        self.log_of(sub).map(|l| l.seq)
    }

    /// Gap-free replay: every retained batch of `sub` with sequence
    /// number strictly greater than `after_seq`, ascending.
    ///
    /// Returns `Some(batches)` only when the ring provably covers the
    /// whole gap — i.e. the oldest retained batch's seq is
    /// `≤ after_seq + 1` (or nothing was emitted past `after_seq`).
    /// Returns `None` when the id is unknown, `after_seq` lies beyond
    /// the current seq (the client is ahead — a stale token), or the
    /// ring was trimmed past the gap; the caller should fall back to
    /// [`resnapshot`](SubscriptionSet::resnapshot).
    pub fn retained_since(
        &self,
        sub: SubscriptionId,
        after_seq: u64,
    ) -> Option<Vec<RetainedBatch>> {
        let log = self.log_of(sub)?;
        if after_seq > log.seq {
            return None;
        }
        if after_seq == log.seq {
            return Some(Vec::new());
        }
        match log.retained.front() {
            Some(first) if first.seq <= after_seq + 1 => Some(
                log.retained
                    .iter()
                    .filter(|b| b.seq > after_seq)
                    .cloned()
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Re-evaluates `sub` from the index as of `now`, replacing its
    /// cached state, clearing its replay ring, and emitting a fresh
    /// full backfill (every current member as `Enter`) under the next
    /// sequence number — the resume path of last resort when
    /// [`retained_since`](SubscriptionSet::retained_since) cannot
    /// bridge the gap. The backfill batch **always** consumes a
    /// sequence number, even when empty, so the resuming client
    /// observes the seq advance and discards its stale state.
    ///
    /// Returns `None` when the id is unknown.
    pub fn resnapshot<I: MovingObjectIndex + ?Sized>(
        &mut self,
        index: &I,
        sub: SubscriptionId,
        now: f64,
    ) -> IndexResult<Option<RetainedBatch>> {
        let retain = self.cfg.retain;
        if let Some(s) = self.ranges.get(&sub) {
            let spec = s.spec;
            let dt = spec.predictive_dt;
            let window_end = now + self.cfg.horizon;
            let probe = RangeQuery::time_interval(spec.region, now + dt, window_end + dt);
            let candidates: BTreeSet<ObjectId> = index.range_query(&probe)?.into_iter().collect();
            let slice = RangeQuery::time_slice(spec.region, now + dt);
            let mut result = BTreeSet::new();
            for &id in &candidates {
                if let Some(obj) = index.get_object(id)? {
                    if slice.matches(&obj) {
                        result.insert(id);
                    }
                }
            }
            let events: Vec<(SubEventKind, ObjectId)> =
                result.iter().map(|&id| (SubEventKind::Enter, id)).collect();
            let s = self.ranges.get_mut(&sub).expect("checked above");
            s.candidates = candidates;
            s.window_end = window_end;
            s.result = result;
            s.log.retained.clear();
            let seq = s.log.record(now, events.clone(), retain.max(1));
            return Ok(Some(RetainedBatch {
                seq,
                time: now,
                events,
            }));
        }
        if let Some(s) = self.knns.get(&sub) {
            let spec = s.spec;
            let neighbors = knn_at(
                index,
                spec.center,
                spec.k,
                now + spec.predictive_dt,
                &self.cfg.domain,
            )?;
            let result: BTreeSet<ObjectId> = neighbors.iter().map(|n| n.id).collect();
            let events: Vec<(SubEventKind, ObjectId)> =
                result.iter().map(|&id| (SubEventKind::Enter, id)).collect();
            let s = self.knns.get_mut(&sub).expect("checked above");
            s.result = result;
            s.log.retained.clear();
            let seq = s.log.record(now, events.clone(), retain.max(1));
            return Ok(Some(RetainedBatch {
                seq,
                time: now,
                events,
            }));
        }
        Ok(None)
    }

    fn log_of(&self, sub: SubscriptionId) -> Option<&SubLog> {
        self.ranges
            .get(&sub)
            .map(|s| &s.log)
            .or_else(|| self.knns.get(&sub).map(|s| &s.log))
    }

    /// The current result set of a subscription (None if unknown).
    /// Ascending object id; what the event stream has cumulatively
    /// built.
    pub fn result(&self, sub: SubscriptionId) -> Option<Vec<ObjectId>> {
        self.ranges
            .get(&sub)
            .map(|s| s.result.iter().copied().collect())
            .or_else(|| {
                self.knns
                    .get(&sub)
                    .map(|s| s.result.iter().copied().collect())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::reference::ScanIndex;
    use vp_geom::Circle;

    fn domain() -> Rect {
        Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0)
    }

    fn obj(id: u64, x: f64, y: f64, vx: f64, vy: f64, t: f64) -> MovingObject {
        MovingObject::new(id, Point::new(x, y), Point::new(vx, vy), t)
    }

    fn circle(x: f64, y: f64, r: f64) -> QueryRegion {
        QueryRegion::Circle(Circle::new(Point::new(x, y), r))
    }

    fn apply(idx: &mut ScanIndex, delta: &TickDelta) {
        idx.update_batch(&delta.upserts).unwrap();
        for &id in &delta.removals {
            idx.delete(id).unwrap();
        }
    }

    #[test]
    fn range_sub_enter_leave_moved() {
        let mut idx = ScanIndex::new();
        // Object 1 sits inside the region, object 2 approaches it.
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        idx.insert(obj(2, 200.0, 100.0, -10.0, 0.0, 0.0)).unwrap();

        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()).with_horizon(30.0));
        let (sub, backfill) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        assert_eq!(
            backfill,
            vec![SubEvent {
                sub,
                kind: SubEventKind::Enter,
                id: 1
            }]
        );

        // Tick at t=10: object 2 re-reports at (100,100) → Enter; the
        // re-report of object 1 inside → Moved.
        let delta = TickDelta::from_updates(&[
            obj(1, 101.0, 100.0, 0.0, 0.0, 10.0),
            obj(2, 100.0, 100.0, 0.0, 0.0, 10.0),
        ]);
        apply(&mut idx, &delta);
        let events = subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(
            events,
            vec![
                SubEvent {
                    sub,
                    kind: SubEventKind::Enter,
                    id: 2
                },
                SubEvent {
                    sub,
                    kind: SubEventKind::Moved,
                    id: 1
                },
            ]
        );

        // Tick at t=20: object 1 jumps away → Leave.
        let delta = TickDelta::from_updates(&[obj(1, 500.0, 500.0, 0.0, 0.0, 20.0)]);
        apply(&mut idx, &delta);
        let events = subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(
            events,
            vec![SubEvent {
                sub,
                kind: SubEventKind::Leave,
                id: 1
            }]
        );
        assert_eq!(subs.result(sub), Some(vec![2]));
    }

    #[test]
    fn drift_without_updates_still_emits() {
        // An object drifting into the region with no re-report must
        // still Enter — from the cached interval candidates alone.
        let mut idx = ScanIndex::new();
        idx.insert(obj(7, 200.0, 100.0, -10.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()).with_horizon(100.0));
        let (sub, backfill) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        assert!(backfill.is_empty());
        // Empty tick at t=10: object 7 is now at (100,100).
        let delta = TickDelta {
            time: 10.0,
            upserts: Vec::new(),
            removals: Vec::new(),
        };
        let events = subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(
            events,
            vec![SubEvent {
                sub,
                kind: SubEventKind::Enter,
                id: 7
            }]
        );
    }

    #[test]
    fn window_expiry_refreshes_from_index() {
        let mut idx = ScanIndex::new();
        // Too far to be a candidate of the registration probe
        // (horizon 5, speed 0 → never matches the first window).
        idx.insert(obj(3, 400.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()).with_horizon(5.0));
        let (sub, _) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        // Teleport object 3 inside via a tick far past the window;
        // the refresh probe must pick it up.
        let delta = TickDelta::from_updates(&[obj(3, 100.0, 100.0, 0.0, 0.0, 50.0)]);
        apply(&mut idx, &delta);
        let events = subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(
            events,
            vec![SubEvent {
                sub,
                kind: SubEventKind::Enter,
                id: 3
            }]
        );
    }

    #[test]
    fn knn_sub_tracks_nearest() {
        let mut idx = ScanIndex::new();
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        idx.insert(obj(2, 150.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        idx.insert(obj(3, 900.0, 900.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()));
        let (sub, backfill) = subs
            .register_knn(
                &idx,
                0.0,
                KnnSubSpec {
                    center: Point::new(100.0, 100.0),
                    k: 2,
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        assert_eq!(backfill.len(), 2);
        assert_eq!(subs.result(sub), Some(vec![1, 2]));

        // Object 3 teleports next to the center → displaces object 2.
        let delta = TickDelta::from_updates(&[obj(3, 101.0, 100.0, 0.0, 0.0, 10.0)]);
        apply(&mut idx, &delta);
        let events = subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(
            events,
            vec![
                SubEvent {
                    sub,
                    kind: SubEventKind::Enter,
                    id: 3
                },
                SubEvent {
                    sub,
                    kind: SubEventKind::Leave,
                    id: 2
                },
            ]
        );
    }

    #[test]
    fn unregister_stops_events() {
        let mut idx = ScanIndex::new();
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()));
        let (sub, _) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        assert!(subs.unregister(sub));
        assert!(!subs.unregister(sub), "second unregister is a no-op");
        let delta = TickDelta::from_updates(&[obj(1, 500.0, 500.0, 0.0, 0.0, 10.0)]);
        apply(&mut idx, &delta);
        assert!(subs.on_tick(&idx, &delta).unwrap().is_empty());
    }

    #[test]
    fn tick_delta_last_write_wins_sorted() {
        let d = TickDelta::from_updates(&[
            obj(5, 1.0, 1.0, 0.0, 0.0, 3.0),
            obj(2, 2.0, 2.0, 0.0, 0.0, 4.0),
            obj(5, 9.0, 9.0, 0.0, 0.0, 5.0),
        ]);
        assert_eq!(d.time, 5.0);
        assert_eq!(d.upserts.len(), 2);
        assert_eq!(d.upserts[0].id, 2);
        assert_eq!(d.upserts[1].id, 5);
        assert_eq!(d.upserts[1].pos, Point::new(9.0, 9.0));
        assert!(TickDelta::from_updates(&[]).is_empty());
    }

    #[test]
    fn sequence_numbers_count_emitted_batches() {
        let mut idx = ScanIndex::new();
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()).with_horizon(100.0));
        let (sub, backfill) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        assert_eq!(backfill.len(), 1);
        assert_eq!(subs.last_seq(sub), Some(1), "backfill consumed seq 1");

        // Quiet tick: nothing changes, no batch, seq stays.
        let quiet = TickDelta {
            time: 5.0,
            upserts: Vec::new(),
            removals: Vec::new(),
        };
        assert!(subs.on_tick(&idx, &quiet).unwrap().is_empty());
        assert_eq!(subs.last_seq(sub), Some(1), "empty batches consume no seq");

        // Eventful tick: Moved → seq 2.
        let delta = TickDelta::from_updates(&[obj(1, 101.0, 100.0, 0.0, 0.0, 10.0)]);
        apply(&mut idx, &delta);
        assert_eq!(subs.on_tick(&idx, &delta).unwrap().len(), 1);
        assert_eq!(subs.last_seq(sub), Some(2));

        // Replay from 0 returns both batches, contiguous.
        let replay = subs.retained_since(sub, 0).unwrap();
        assert_eq!(replay.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(replay[0].events, vec![(SubEventKind::Enter, 1)]);
        assert_eq!(replay[1].events, vec![(SubEventKind::Moved, 1)]);
        // Replay from the tip is empty, not a gap.
        assert_eq!(subs.retained_since(sub, 2), Some(Vec::new()));
        // A token from the future is a stale client — gap.
        assert_eq!(subs.retained_since(sub, 3), None);
        assert_eq!(subs.retained_since(9999, 0), None, "unknown id");
    }

    #[test]
    fn retention_trim_turns_replay_into_gap() {
        let mut idx = ScanIndex::new();
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(
            SubscriptionConfig::new(domain())
                .with_horizon(1000.0)
                .with_retain(2),
        );
        let (sub, _) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        // Three eventful ticks → seqs 2, 3, 4; ring keeps the last 2.
        for i in 0..3 {
            let t = 10.0 * (i + 1) as f64;
            let delta = TickDelta::from_updates(&[obj(1, 101.0 + i as f64, 100.0, 0.0, 0.0, t)]);
            apply(&mut idx, &delta);
            subs.on_tick(&idx, &delta).unwrap();
        }
        assert_eq!(subs.last_seq(sub), Some(4));
        assert_eq!(
            subs.retained_since(sub, 2).map(|v| v.len()),
            Some(2),
            "ring still reaches back to seq 3"
        );
        assert_eq!(
            subs.retained_since(sub, 1),
            None,
            "seq 2 was trimmed — caller must resnapshot"
        );

        // Resnapshot: fresh backfill under seq 5, ring reset.
        let snap = subs.resnapshot(&idx, sub, 30.0).unwrap().unwrap();
        assert_eq!(snap.seq, 5, "resnapshot always consumes a seq");
        assert_eq!(snap.events, vec![(SubEventKind::Enter, 1)]);
        assert_eq!(subs.retained_since(sub, 4).map(|v| v.len()), Some(1));
        assert_eq!(subs.resnapshot(&idx, 9999, 30.0).unwrap(), None);

        // The stream continues seamlessly after the snapshot.
        let delta = TickDelta::from_updates(&[obj(1, 500.0, 500.0, 0.0, 0.0, 40.0)]);
        apply(&mut idx, &delta);
        subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(subs.last_seq(sub), Some(6));
    }

    #[test]
    fn register_as_revives_reaped_id() {
        let mut idx = ScanIndex::new();
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()));
        let spec = RangeSubSpec {
            region: circle(100.0, 100.0, 50.0),
            predictive_dt: 0.0,
        };
        let (sub, _) = subs.register_range(&idx, 0.0, spec).unwrap();
        assert!(subs.register_range_as(&idx, 0.0, spec, sub).is_err());
        assert!(subs.unregister(sub));
        let backfill = subs.register_range_as(&idx, 0.0, spec, sub).unwrap();
        assert_eq!(backfill.len(), 1);
        assert!(subs.contains(sub));
        assert_eq!(subs.range_spec(sub), Some(spec));
        // The allocator never re-issues a caller-claimed id.
        let (next, _) = subs.register_range(&idx, 0.0, spec).unwrap();
        assert!(next > sub);
    }

    #[test]
    fn removal_emits_leave() {
        let mut idx = ScanIndex::new();
        idx.insert(obj(1, 100.0, 100.0, 0.0, 0.0, 0.0)).unwrap();
        let mut subs = SubscriptionSet::new(SubscriptionConfig::new(domain()));
        let (sub, _) = subs
            .register_range(
                &idx,
                0.0,
                RangeSubSpec {
                    region: circle(100.0, 100.0, 50.0),
                    predictive_dt: 0.0,
                },
            )
            .unwrap();
        let delta = TickDelta::from_delete(1, 5.0);
        apply(&mut idx, &delta);
        let events = subs.on_tick(&idx, &delta).unwrap();
        assert_eq!(
            events,
            vec![SubEvent {
                sub,
                kind: SubEventKind::Leave,
                id: 1
            }]
        );
    }
}
