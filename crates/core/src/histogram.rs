//! Equal-width cumulative frequency histograms.
//!
//! Section 5.2 uses "an equal width cumulative frequency histogram, per
//! DVA partition, to capture the data distribution of `v_yd(n_d)`":
//! bucket `i` counts the velocity points whose perpendicular speed does
//! not exceed the bucket's upper edge. The τ-selection algorithm then
//! evaluates the cost expression at each bucket edge. The same
//! structure is refreshed online to track changing speed distributions
//! (Section 5.5).

/// An equal-width cumulative histogram over `[0, max_value]`.
#[derive(Debug, Clone)]
pub struct CumulativeHistogram {
    /// Per-bucket (non-cumulative) counts.
    counts: Vec<u64>,
    max_value: f64,
    total: u64,
}

impl CumulativeHistogram {
    /// Creates a histogram with `buckets` equal-width buckets spanning
    /// `[0, max_value]`. `max_value` must be positive and finite;
    /// values above it are clamped into the last bucket.
    pub fn new(buckets: usize, max_value: f64) -> CumulativeHistogram {
        assert!(buckets >= 1, "need at least one bucket");
        assert!(
            max_value.is_finite() && max_value > 0.0,
            "max_value must be positive and finite"
        );
        CumulativeHistogram {
            counts: vec![0; buckets],
            max_value,
            total: 0,
        }
    }

    /// Builds a histogram from samples, sizing the range to the sample
    /// maximum (falling back to 1.0 for empty/degenerate input).
    pub fn from_samples(buckets: usize, samples: &[f64]) -> CumulativeHistogram {
        let max = samples
            .iter()
            .copied()
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut h = CumulativeHistogram::new(buckets, if max > 0.0 { max } else { 1.0 });
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Upper bound of the histogram range.
    #[inline]
    pub fn max_value(&self) -> f64 {
        self.max_value
    }

    /// Total count.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw per-bucket (non-cumulative) counts — checkpoint
    /// serialization of the online Section-5.5 histograms.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from serialized parts (the inverse of
    /// [`CumulativeHistogram::counts`] + [`CumulativeHistogram::max_value`],
    /// used when loading a checkpoint).
    pub fn from_parts(counts: Vec<u64>, max_value: f64) -> CumulativeHistogram {
        assert!(!counts.is_empty(), "need at least one bucket");
        assert!(
            max_value.is_finite() && max_value > 0.0,
            "max_value must be positive and finite"
        );
        let total = counts.iter().sum();
        CumulativeHistogram {
            counts,
            max_value,
            total,
        }
    }

    /// Records a sample (negative samples count as 0; samples above the
    /// range clamp into the last bucket).
    pub fn add(&mut self, value: f64) {
        let idx = self.bucket_of(value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Removes a previously recorded sample (the exact inverse of
    /// [`CumulativeHistogram::add`] for the same value) — the rollback
    /// primitive used when a logged mutation fails after its
    /// perpendicular-speed sample was already recorded. Removing a
    /// value that was never added is a no-op rather than an underflow.
    pub fn remove(&mut self, value: f64) {
        let idx = self.bucket_of(value);
        if self.counts[idx] > 0 {
            self.counts[idx] -= 1;
            self.total -= 1;
        }
    }

    /// Clears all counts (keeps the bucket layout).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// The upper edge value of bucket `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> f64 {
        self.max_value * (i + 1) as f64 / self.counts.len() as f64
    }

    /// Number of samples with value `<= edge(i)` (cumulative count).
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts[..=i.min(self.counts.len() - 1)].iter().sum()
    }

    /// Number of samples `<= value`, by bucket resolution.
    pub fn count_le(&self, value: f64) -> u64 {
        if value < 0.0 {
            return 0;
        }
        self.cumulative(self.bucket_of(value))
    }

    /// Iterates `(edge, cumulative_count)` pairs — the candidate
    /// `(v_yd, n_d)` pairs scanned by the τ selection algorithm.
    pub fn cumulative_iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut acc = 0u64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            acc += c;
            (self.edge(i), acc)
        })
    }

    fn bucket_of(&self, value: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        let f = value / self.max_value * self.counts.len() as f64;
        (f.ceil() as usize)
            .saturating_sub(1)
            .min(self.counts.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_and_cumulative() {
        let mut h = CumulativeHistogram::new(4, 8.0); // edges 2,4,6,8
        for v in [1.0, 2.0, 3.0, 5.0, 7.0, 100.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.cumulative(0), 2); // 1.0, 2.0 (edge-inclusive)
        assert_eq!(h.cumulative(1), 3);
        assert_eq!(h.cumulative(2), 4);
        assert_eq!(h.cumulative(3), 6); // clamped 100.0 in last bucket
        assert_eq!(h.count_le(4.0), 3);
        assert_eq!(h.count_le(-1.0), 0);
    }

    #[test]
    fn edges() {
        let h = CumulativeHistogram::new(4, 8.0);
        assert_eq!(h.edge(0), 2.0);
        assert_eq!(h.edge(3), 8.0);
    }

    #[test]
    fn from_samples_sizes_range() {
        let h = CumulativeHistogram::from_samples(10, &[0.5, 2.0, 10.0]);
        assert_eq!(h.max_value(), 10.0);
        assert_eq!(h.total(), 3);
        // Every sample is <= max edge.
        assert_eq!(h.count_le(10.0), 3);
    }

    #[test]
    fn from_empty_samples() {
        let h = CumulativeHistogram::from_samples(5, &[]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.count_le(1.0), 0);
    }

    #[test]
    fn cumulative_iter_matches_manual() {
        let mut h = CumulativeHistogram::new(3, 3.0);
        for v in [0.5, 1.5, 2.5, 2.6] {
            h.add(v);
        }
        let pairs: Vec<(f64, u64)> = h.cumulative_iter().collect();
        assert_eq!(pairs, vec![(1.0, 1), (2.0, 2), (3.0, 4)]);
    }

    #[test]
    fn reset_clears() {
        let mut h = CumulativeHistogram::new(3, 3.0);
        h.add(1.0);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.cumulative(2), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = CumulativeHistogram::new(4, 8.0);
        for v in [1.0, 3.0, 3.5, 7.9] {
            h.add(v);
        }
        let rebuilt = CumulativeHistogram::from_parts(h.counts().to_vec(), h.max_value());
        assert_eq!(rebuilt.total(), h.total());
        assert_eq!(rebuilt.counts(), h.counts());
        assert_eq!(rebuilt.max_value(), h.max_value());
        assert_eq!(rebuilt.count_le(4.0), h.count_le(4.0));
    }

    #[test]
    fn zero_values_land_in_first_bucket() {
        let mut h = CumulativeHistogram::new(3, 3.0);
        h.add(0.0);
        assert_eq!(h.cumulative(0), 1);
    }
}
