//! Principal components analysis over 2-D velocity points.
//!
//! For 2-D data PCA reduces to the eigen decomposition of a 2×2 second
//! moment matrix (`vp_geom::Mat2`), computed in closed form.
//!
//! A dominant velocity axis (DVA) is an *axis through the origin of
//! velocity space*: a road carries traffic in both directions, so the
//! velocity points of one DVA form two lobes at `±v`. Mean-centered
//! PCA on such data is nearly identical to the second moment about the
//! origin (the mean sits near zero), but for one-way flows the origin
//! moment is the right fit — the axis must still pass through the
//! origin for the perpendicular-distance partitioning of Section 5.1 to
//! mean "deviation of *direction*". We therefore fit DVAs with the
//! origin moment and expose centered PCA separately for diagnostics.

use vp_geom::{Mat2, Vec2};

/// Summary of a PCA fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaResult {
    /// Unit 1st principal component.
    pub pc1: Vec2,
    /// Unit 2nd principal component (orthogonal to `pc1`).
    pub pc2: Vec2,
    /// Variance along `pc1`.
    pub var1: f64,
    /// Variance along `pc2`.
    pub var2: f64,
}

impl PcaResult {
    /// Fraction of total variance explained by the 1st component, in
    /// `[0.5, 1]` for 2-D data (1.0 when the data is exactly linear;
    /// 0.5 when isotropic). Returns 1.0 for degenerate all-zero data.
    pub fn explained_ratio(&self) -> f64 {
        let total = self.var1 + self.var2;
        if total <= 0.0 {
            1.0
        } else {
            self.var1 / total
        }
    }
}

/// PCA with the second moment taken about the **origin** — the DVA fit.
pub fn pca_origin(points: &[Vec2]) -> PcaResult {
    let e = Mat2::second_moment_origin(points).eigen();
    PcaResult {
        pc1: e.v1,
        pc2: e.v2,
        var1: e.l1,
        var2: e.l2,
    }
}

/// Classic mean-centered PCA (naïve approach I of Section 5.1, and
/// useful for diagnostics).
pub fn pca_centered(points: &[Vec2]) -> PcaResult {
    let e = Mat2::covariance(points).eigen();
    PcaResult {
        pc1: e.v1,
        pc2: e.v2,
        var1: e.l1,
        var2: e.l2,
    }
}

/// Mean perpendicular distance of `points` to the axis through the
/// origin with direction `axis` — the clustering quality metric used by
/// the ablation benchmarks (lower = tighter, more 1-D partitions).
pub fn mean_perp_distance(points: &[Vec2], axis: Vec2) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points
        .iter()
        .map(|p| p.perp_distance_to_axis(axis))
        .sum::<f64>()
        / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_geom::Point;

    #[test]
    fn origin_pca_finds_bidirectional_axis() {
        // Two-way traffic along a 30-degree road.
        let dir = Point::new((30f64).to_radians().cos(), (30f64).to_radians().sin());
        let mut pts = Vec::new();
        for i in 1..200 {
            let s = i as f64 * 0.1;
            pts.push(dir * s);
            pts.push(dir * -s);
        }
        let r = pca_origin(&pts);
        assert!(r.pc1.cross(dir).abs() < 1e-9, "pc1 aligned with road");
        assert!(r.explained_ratio() > 0.999);
    }

    #[test]
    fn centered_pca_on_two_axes_averages() {
        // Naive approach I (paper Figure 10a): with two perpendicular
        // DVAs the centered 1st PC matches neither axis when the axes
        // carry unequal variance along a diagonal blend; here we just
        // check it runs and is a unit vector.
        let mut pts = Vec::new();
        for i in 0..100 {
            let s = (i as f64 - 50.0) * 0.2;
            pts.push(Point::new(s, s * 0.1)); // near-horizontal DVA
            pts.push(Point::new(s * 0.1, s)); // near-vertical DVA
        }
        let r = pca_centered(&pts);
        assert!((r.pc1.norm() - 1.0).abs() < 1e-9);
        assert!(r.var1 >= r.var2);
    }

    #[test]
    fn explained_ratio_degenerate() {
        let r = pca_origin(&[]);
        assert_eq!(r.explained_ratio(), 1.0);
        let r = pca_origin(&[Point::ZERO, Point::ZERO]);
        assert_eq!(r.explained_ratio(), 1.0);
    }

    #[test]
    fn mean_perp_distance_metric() {
        let axis = Point::new(1.0, 0.0);
        let pts = vec![Point::new(5.0, 1.0), Point::new(-3.0, -1.0)];
        assert!((mean_perp_distance(&pts, axis) - 1.0).abs() < 1e-12);
        assert_eq!(mean_perp_distance(&[], axis), 0.0);
    }

    #[test]
    fn isotropic_data_splits_variance() {
        // Points on a circle: variance is split evenly.
        let pts: Vec<Point> = (0..360)
            .map(|d| {
                let a = (d as f64).to_radians();
                Point::new(a.cos(), a.sin())
            })
            .collect();
        let r = pca_origin(&pts);
        assert!((r.explained_ratio() - 0.5).abs() < 1e-6);
    }
}
