//! The velocity analyzer — Algorithm 1 (`VelocityPartitioning`).
//!
//! Given a sample of velocity points from the current workload the
//! analyzer:
//!
//! 1. finds the `k` dominant velocity axes with PCA-guided k-means
//!    clustering ([`crate::kmeans::find_dvas`], Algorithm 2);
//! 2. selects an outlier threshold τ per partition by minimizing the
//!    search-area expansion rate ([`crate::tau::optimal_tau`],
//!    Section 5.2);
//! 3. evicts sample points whose perpendicular speed exceeds τ into the
//!    outlier set;
//! 4. refits each partition's DVA on the surviving points (Algorithm 1
//!    line 6) so the axis reflects the cleaned partition.
//!
//! The output — DVA directions with their τ thresholds — is what the
//! index manager uses to route every future insertion and query.

use std::time::Instant;

use vp_geom::Vec2;

use crate::config::VpConfig;
use crate::kmeans::find_dvas;
use crate::pca::{pca_origin, PcaResult};
use crate::tau::{optimal_tau_from_samples, TauDecision};

/// One fitted DVA partition.
#[derive(Debug, Clone)]
pub struct DvaPartition {
    /// Unit direction of the dominant velocity axis (after the
    /// post-eviction refit).
    pub axis: Vec2,
    /// Outlier threshold: maximum perpendicular speed accepted.
    pub tau: f64,
    /// Sample-point indices retained by this partition.
    pub members: Vec<usize>,
    /// PCA summary of the retained members.
    pub pca: PcaResult,
    /// Details of the τ decision.
    pub tau_decision: TauDecision,
}

/// The analyzer's output: partitions plus the outlier sample set.
#[derive(Debug, Clone)]
pub struct AnalyzerOutput {
    pub partitions: Vec<DvaPartition>,
    /// Sample-point indices routed to the outlier partition.
    pub outliers: Vec<usize>,
    /// K-means iterations executed.
    pub kmeans_iterations: usize,
    /// Wall-clock time of the whole analysis (the overhead measured by
    /// the paper's Figure 18).
    pub elapsed: std::time::Duration,
}

impl AnalyzerOutput {
    /// Fraction of the sample classified as outliers.
    pub fn outlier_fraction(&self) -> f64 {
        let total: usize = self
            .partitions
            .iter()
            .map(|p| p.members.len())
            .sum::<usize>()
            + self.outliers.len();
        if total == 0 {
            0.0
        } else {
            self.outliers.len() as f64 / total as f64
        }
    }
}

/// The velocity analyzer.
#[derive(Debug, Clone)]
pub struct VelocityAnalyzer {
    config: VpConfig,
}

impl VelocityAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: VpConfig) -> VelocityAnalyzer {
        VelocityAnalyzer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VpConfig {
        &self.config
    }

    /// Runs Algorithm 1 on a sample of velocity points.
    pub fn analyze(&self, sample: &[Vec2]) -> AnalyzerOutput {
        let start = Instant::now();
        // Line 2: find DVAs via PCA-guided k-means.
        let km = find_dvas(
            sample,
            self.config.k,
            self.config.seed,
            self.config.max_iters,
        );

        let mut partitions = Vec::with_capacity(km.clusters.len());
        let mut outliers = Vec::new();

        for cluster in &km.clusters {
            // Line 4: τ from the cumulative histogram of perpendicular
            // speeds within the cluster.
            let perp: Vec<f64> = cluster
                .members
                .iter()
                .map(|&i| sample[i].perp_distance_to_axis(cluster.axis))
                .collect();
            let decision =
                optimal_tau_from_samples(&perp, self.config.tau_buckets).unwrap_or(TauDecision {
                    tau: f64::INFINITY,
                    retained: 0,
                    objective: 0.0,
                });

            // Line 5: move points beyond τ into the outlier set.
            let mut kept = Vec::with_capacity(cluster.members.len());
            for (&idx, &d) in cluster.members.iter().zip(&perp) {
                if d <= decision.tau {
                    kept.push(idx);
                } else {
                    outliers.push(idx);
                }
            }

            // Line 6: refit the DVA on the survivors.
            let kept_points: Vec<Vec2> = kept.iter().map(|&i| sample[i]).collect();
            let pca = pca_origin(&kept_points);
            let axis = if kept.is_empty() {
                cluster.axis
            } else {
                pca.pc1
            };

            partitions.push(DvaPartition {
                axis,
                tau: decision.tau,
                members: kept,
                pca,
                tau_decision: decision,
            });
        }

        AnalyzerOutput {
            partitions,
            outliers,
            kmeans_iterations: km.iterations,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_geom::Point;

    /// Deterministic synthetic sample: two roads plus random outliers.
    fn sample_two_roads(n_per_road: usize, n_outliers: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 10_000.0
        };
        for axis_deg in [15.0_f64, 105.0] {
            let a = axis_deg.to_radians();
            let dir = Point::new(a.cos(), a.sin());
            let perp = Point::new(-a.sin(), a.cos());
            for i in 0..n_per_road {
                let speed = 20.0 + next() * 60.0;
                // Perpendicular wobble concentrated near zero, as on a
                // real road (|perp| mostly << 1, rare excursions to 1).
                let u = next();
                let wobble = (next() - 0.5).signum() * u * u * u;
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                pts.push(dir * (speed * sign) + perp * wobble);
            }
        }
        // Fast diagonal movers far from both axes; two groups so each
        // DVA partition sees a fast tail (as real data does — v_ymax in
        // Equation 10 is dominated by such movers).
        for i in 0..n_outliers {
            let ang = if i % 2 == 0 { 55.0_f64 } else { 70.0 }.to_radians();
            let dir = Point::new(ang.cos(), ang.sin());
            pts.push(dir * (50.0 + next() * 50.0));
        }
        pts
    }

    #[test]
    fn analyze_recovers_axes_and_evicts_outliers() {
        let sample = sample_two_roads(1000, 60);
        let analyzer = VelocityAnalyzer::new(VpConfig::default());
        let out = analyzer.analyze(&sample);
        assert_eq!(out.partitions.len(), 2);

        let dist = |axis: Point, ref_deg: f64| -> f64 {
            let a = axis.y.atan2(axis.x);
            let r = ref_deg.to_radians();
            let mut d = (a - r).rem_euclid(std::f64::consts::PI);
            if d > std::f64::consts::FRAC_PI_2 {
                d = std::f64::consts::PI - d;
            }
            d.to_degrees()
        };
        let d15: Vec<f64> = out.partitions.iter().map(|p| dist(p.axis, 15.0)).collect();
        let d105: Vec<f64> = out.partitions.iter().map(|p| dist(p.axis, 105.0)).collect();
        let ok = (d15[0] < 4.0 && d105[1] < 4.0) || (d15[1] < 4.0 && d105[0] < 4.0);
        assert!(ok, "axes missed the roads: d15={d15:?} d105={d105:?}");

        // The diagonal speeders (perp speed ~ tens of m/ts to both axes)
        // must be outliers; wobble-level members must not.
        assert!(
            out.outliers.len() >= 50,
            "expected the 60 diagonal movers out, got {}",
            out.outliers.len()
        );
        assert!(out.outlier_fraction() < 0.2);
    }

    #[test]
    fn analyze_respects_tau_semantics() {
        let sample = sample_two_roads(500, 30);
        let analyzer = VelocityAnalyzer::new(VpConfig::default());
        let out = analyzer.analyze(&sample);
        for p in &out.partitions {
            for &m in &p.members {
                // Note: members were retained against the *pre-refit*
                // axis; allow a tolerance for the refit shift.
                let d = sample[m].perp_distance_to_axis(p.axis);
                assert!(
                    d <= p.tau * 1.5 + 1.0,
                    "member perp {d} far beyond tau {}",
                    p.tau
                );
            }
        }
    }

    #[test]
    fn analyze_empty_sample() {
        let analyzer = VelocityAnalyzer::new(VpConfig::default());
        let out = analyzer.analyze(&[]);
        assert!(out.partitions.is_empty());
        assert!(out.outliers.is_empty());
        assert_eq!(out.outlier_fraction(), 0.0);
    }

    #[test]
    fn analyze_is_deterministic() {
        let sample = sample_two_roads(300, 10);
        let analyzer = VelocityAnalyzer::new(VpConfig::default());
        let a = analyzer.analyze(&sample);
        let b = analyzer.analyze(&sample);
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.members, pb.members);
            assert_eq!(pa.tau, pb.tau);
        }
    }

    #[test]
    fn k_one_single_partition() {
        let sample = sample_two_roads(200, 0);
        let cfg = VpConfig {
            k: 1,
            ..VpConfig::default()
        };
        let out = VelocityAnalyzer::new(cfg).analyze(&sample);
        assert_eq!(out.partitions.len(), 1);
    }
}
