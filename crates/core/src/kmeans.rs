//! K-means clustering of velocity points by perpendicular distance to
//! each cluster's 1st principal component — Algorithm 2 (`FindDVAs`).
//!
//! This is *not* centroid k-means (naïve approach II of Section 5.1):
//! the distance from a velocity point to a cluster is its perpendicular
//! distance to the cluster's DVA (an axis through the origin), so
//! points are grouped by *direction of travel* rather than by proximity
//! in velocity space. See the paper's Figure 12 for why this matters.

use vp_geom::Vec2;

use crate::pca::{pca_origin, PcaResult};

/// One velocity cluster: the indices of its member points (into the
/// input slice) and its fitted axis.
#[derive(Debug, Clone)]
pub struct VelocityCluster {
    /// Indices into the input point slice.
    pub members: Vec<usize>,
    /// Unit 1st principal component of the members — the cluster's DVA.
    pub axis: Vec2,
    /// Full PCA summary of the members.
    pub pca: PcaResult,
}

/// Outcome of [`find_dvas`].
#[derive(Debug, Clone)]
pub struct KmeansOutcome {
    pub clusters: Vec<VelocityCluster>,
    /// Number of reassignment iterations executed.
    pub iterations: usize,
    /// Whether the loop converged (no point moved) before the iteration
    /// cap.
    pub converged: bool,
}

/// A small deterministic xorshift PRNG. The analyzer must be
/// reproducible run-to-run (the harness compares figures across
/// configurations), so we keep randomness seeded and local instead of
/// pulling in a RNG dependency for two calls.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform integer in `[0, n)`.
    pub(crate) fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Runs Algorithm 2: k-means over `points` using perpendicular distance
/// to each cluster's 1st PC, starting from a random assignment drawn
/// from `seed`.
///
/// Guarantees:
/// * deterministic for a given `(points, k, seed)`;
/// * every returned cluster is non-empty when `points.len() >= k`
///   (empty clusters are reseeded with the globally worst-fitting
///   point);
/// * terminates after at most `max_iters` reassignment rounds.
pub fn find_dvas(points: &[Vec2], k: usize, seed: u64, max_iters: usize) -> KmeansOutcome {
    assert!(k >= 1, "k must be at least 1");
    let n = points.len();
    if n == 0 {
        return KmeansOutcome {
            clusters: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    let k = k.min(n);
    let mut rng = XorShift64::new(seed);

    // Initial axes. Algorithm 2 assigns points to partitions uniformly
    // at random; on real data the two random halves have slightly
    // different 1st PCs which the loop then amplifies (paper Figure
    // 11a-b). On *perfectly symmetric* data, however, random halves can
    // yield numerically identical (degenerate) PCs and the loop would
    // converge immediately to a useless fixpoint. We therefore seed the
    // axes k-means++-style: the direction of a random point first, then
    // the directions of points maximizing their perpendicular distance
    // to all axes chosen so far. The iterative refinement below is
    // unchanged from Algorithm 2.
    let mut seed_axes: Vec<Vec2> = Vec::with_capacity(k);
    let first = pick_nonzero(points, &mut rng);
    seed_axes.push(first);
    while seed_axes.len() < k {
        let far = points
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let da = seed_axes
                    .iter()
                    .map(|ax| a.perp_distance_to_axis(*ax))
                    .fold(f64::INFINITY, f64::min);
                let db = seed_axes
                    .iter()
                    .map(|ax| b.perp_distance_to_axis(*ax))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        seed_axes.push(points[far].normalized().unwrap_or(Vec2::new(0.0, 1.0)));
    }
    // Assign every point to its nearest seed axis.
    let mut assign: Vec<usize> = points
        .iter()
        .map(|p| {
            (0..k)
                .min_by(|&a, &b| {
                    p.perp_distance_to_axis(seed_axes[a])
                        .total_cmp(&p.perp_distance_to_axis(seed_axes[b]))
                })
                .unwrap()
        })
        .collect();
    // Guard: make sure every cluster starts non-empty.
    for c in 0..k {
        if !assign.contains(&c) {
            let idx = rng.next_below(n);
            assign[idx] = c;
        }
    }

    let mut axes: Vec<PcaResult> = vec![fit(points, &assign, 0); k];
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..max_iters {
        iterations += 1;
        // Line 6: fit the 1st PC of each partition.
        for (c, axis) in axes.iter_mut().enumerate() {
            *axis = fit(points, &assign, c);
        }
        // Lines 7-9: move each point to the cluster whose 1st PC is
        // nearest (perpendicular distance).
        let mut moved = 0usize;
        for (i, p) in points.iter().enumerate() {
            let mut best = assign[i];
            let mut best_d = p.perp_distance_to_axis(axes[best].pc1);
            for (c, ax) in axes.iter().enumerate() {
                let d = p.perp_distance_to_axis(ax.pc1);
                if d + 1e-12 < best_d {
                    best = c;
                    best_d = d;
                }
            }
            if best != assign[i] {
                assign[i] = best;
                moved += 1;
            }
        }
        // Reseed any cluster that lost all members with the point
        // farthest from its current axis.
        for c in 0..k {
            if !assign.contains(&c) {
                if let Some((worst, _)) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.perp_distance_to_axis(axes[assign[i]].pc1)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                {
                    assign[worst] = c;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            converged = true;
            break;
        }
    }

    // Final fit and cluster materialization.
    let clusters = (0..k)
        .map(|c| {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
            let pca = fit(points, &assign, c);
            VelocityCluster {
                members,
                axis: pca.pc1,
                pca,
            }
        })
        .collect();

    KmeansOutcome {
        clusters,
        iterations,
        converged,
    }
}

/// Picks a random non-zero point's direction (unit vector); falls back
/// to the x-axis when every point is zero.
fn pick_nonzero(points: &[Vec2], rng: &mut XorShift64) -> Vec2 {
    for _ in 0..32 {
        let p = points[rng.next_below(points.len())];
        if let Some(u) = p.normalized() {
            return u;
        }
    }
    points
        .iter()
        .find_map(|p| p.normalized())
        .unwrap_or(Vec2::new(1.0, 0.0))
}

fn fit(points: &[Vec2], assign: &[usize], cluster: usize) -> PcaResult {
    let members: Vec<Vec2> = points
        .iter()
        .zip(assign)
        .filter(|(_, &a)| a == cluster)
        .map(|(p, _)| *p)
        .collect();
    pca_origin(&members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_geom::Point;

    /// Two-way traffic along `angle_deg` with small perpendicular noise.
    fn road(points: &mut Vec<Point>, angle_deg: f64, n: usize, rng: &mut XorShift64) {
        let a = angle_deg.to_radians();
        let dir = Point::new(a.cos(), a.sin());
        let perp = Point::new(-a.sin(), a.cos());
        for i in 0..n {
            let speed = 5.0 + (rng.next_below(1000) as f64) / 100.0; // 5..15
            let noise = ((rng.next_below(2001) as f64) - 1000.0) / 1000.0 * 0.4;
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            points.push(dir * (speed * sign) + perp * noise);
        }
    }

    #[test]
    fn recovers_two_perpendicular_dvas() {
        let mut rng = XorShift64::new(42);
        let mut pts = Vec::new();
        road(&mut pts, 0.0, 500, &mut rng);
        road(&mut pts, 90.0, 500, &mut rng);
        let out = find_dvas(&pts, 2, 7, 100);
        assert!(out.converged);
        assert_eq!(out.clusters.len(), 2);
        // Axes are undirected: compare via the angular distance of each
        // cluster axis to the expected road directions.
        let d0: Vec<f64> = out
            .clusters
            .iter()
            .map(|c| axis_angle_dist(c.axis, 0.0))
            .collect();
        let d90: Vec<f64> = out
            .clusters
            .iter()
            .map(|c| axis_angle_dist(c.axis, 90.0))
            .collect();
        let ok = (d0[0] < 0.1 && d90[1] < 0.1) || (d0[1] < 0.1 && d90[0] < 0.1);
        assert!(ok, "axes missed the roads: d0={d0:?} d90={d90:?}");
        // Both clusters captured roughly half the points.
        for c in &out.clusters {
            assert!(c.members.len() > 300, "unbalanced: {}", c.members.len());
        }
    }

    /// Angular distance (radians, in `[0, pi/2]`) between an undirected
    /// axis and a reference direction given in degrees.
    fn axis_angle_dist(axis: Point, ref_deg: f64) -> f64 {
        let a = axis.y.atan2(axis.x);
        let r = ref_deg.to_radians();
        let mut d = (a - r).rem_euclid(std::f64::consts::PI);
        if d > std::f64::consts::FRAC_PI_2 {
            d = std::f64::consts::PI - d;
        }
        d
    }

    #[test]
    fn recovers_non_perpendicular_dvas() {
        // The paper stresses VP is not restricted to perpendicular DVAs.
        let mut rng = XorShift64::new(1);
        let mut pts = Vec::new();
        road(&mut pts, 20.0, 400, &mut rng);
        road(&mut pts, 75.0, 400, &mut rng);
        let out = find_dvas(&pts, 2, 3, 100);
        let d20: Vec<f64> = out
            .clusters
            .iter()
            .map(|c| axis_angle_dist(c.axis, 20.0))
            .collect();
        let d75: Vec<f64> = out
            .clusters
            .iter()
            .map(|c| axis_angle_dist(c.axis, 75.0))
            .collect();
        let tol = 5.0_f64.to_radians();
        let ok = (d20[0] < tol && d75[1] < tol) || (d20[1] < tol && d75[0] < tol);
        assert!(ok, "axes missed the roads: d20={d20:?} d75={d75:?}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut rng = XorShift64::new(5);
        let mut pts = Vec::new();
        road(&mut pts, 10.0, 200, &mut rng);
        road(&mut pts, 100.0, 200, &mut rng);
        let a = find_dvas(&pts, 2, 99, 100);
        let b = find_dvas(&pts, 2, 99, 100);
        for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(ca.members, cb.members);
        }
    }

    #[test]
    fn k_one_is_plain_pca() {
        let mut rng = XorShift64::new(5);
        let mut pts = Vec::new();
        road(&mut pts, 45.0, 300, &mut rng);
        let out = find_dvas(&pts, 1, 1, 100);
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].members.len(), 300);
        let expect = crate::pca::pca_origin(&pts).pc1;
        assert!(out.clusters[0].axis.cross(expect).abs() < 1e-9);
    }

    #[test]
    fn handles_small_inputs() {
        let out = find_dvas(&[], 2, 1, 10);
        assert!(out.clusters.is_empty());
        let pts = [Point::new(1.0, 0.0)];
        let out = find_dvas(&pts, 3, 1, 10);
        assert_eq!(out.clusters.len(), 1, "k clamped to n");
        assert_eq!(out.clusters[0].members, vec![0]);
    }

    #[test]
    fn clusters_partition_the_input() {
        let mut rng = XorShift64::new(8);
        let mut pts = Vec::new();
        road(&mut pts, 0.0, 100, &mut rng);
        road(&mut pts, 90.0, 100, &mut rng);
        let out = find_dvas(&pts, 2, 4, 100);
        let mut seen = vec![false; pts.len()];
        for c in &out.clusters {
            for &m in &c.members {
                assert!(!seen[m], "point {m} in two clusters");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every point assigned");
    }
}
