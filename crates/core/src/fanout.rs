//! Shared longest-processing-time fan-out for read-only query work.
//!
//! The write side's tick workers ([`crate::VpIndex::apply_updates`])
//! keep their own scheduler because their jobs carry disjoint `&mut`
//! borrows and a torn-tick error contract; the read side's fan-outs
//! (batched range queries per partition, kNN searches per query) are
//! plain `Fn` jobs over `&self` and share this one.

/// Runs one read-only job per item on up to `workers` scoped threads
/// and returns the results **in input order** — the output is
/// identical to `items.into_iter().map(run).collect()` regardless of
/// the worker count or schedule, which is what lets callers promise
/// schedule-invariant results.
///
/// Items are distributed longest-first (by `load`) onto the currently
/// lightest worker — the same LPT heuristic as the tick workers.
/// `workers <= 1` (or a single item) runs everything on the calling
/// thread.
pub(crate) fn lpt_fan_out<T, R, L, F>(items: Vec<T>, workers: usize, load: L, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    L: Fn(&T) -> usize,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers == 1 {
        return items.into_iter().map(run).collect();
    }
    let loads_of: Vec<usize> = items.iter().map(|t| load(t).max(1)).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(loads_of[i]));
    let mut groups: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    let mut loads = vec![0usize; workers];
    for i in order {
        let lightest = (0..workers)
            .min_by_key(|&g| loads[g])
            .expect("workers >= 1");
        loads[lightest] += loads_of[i];
        groups[lightest].push(i);
    }
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let grouped: Vec<Vec<(usize, T)>> = groups
        .into_iter()
        .map(|group| {
            group
                .into_iter()
                .map(|i| (i, items[i].take().expect("each item grouped once")))
                .collect()
        })
        .collect();
    let run = &run;
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let answered: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = grouped
            .into_iter()
            .map(|group| {
                scope.spawn(move || {
                    group
                        .into_iter()
                        .map(|(i, item)| (i, run(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    });
    for (i, result) in answered.into_iter().flatten() {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item answered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_worker_counts() {
        let items: Vec<usize> = (0..37).collect();
        let sequential = lpt_fan_out(items.clone(), 1, |&i| i, |i| i * 10);
        for workers in [2, 4, 16, 64] {
            let parallel = lpt_fan_out(items.clone(), workers, |&i| i, |i| i * 10);
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
        assert_eq!(sequential, (0..37).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(lpt_fan_out(Vec::<usize>::new(), 4, |_| 1, |i| i).is_empty());
        assert_eq!(lpt_fan_out(vec![7usize], 4, |_| 1, |i| i + 1), vec![8]);
    }
}
