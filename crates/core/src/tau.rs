//! Outlier threshold (τ) selection — Section 5.2.
//!
//! For a DVA partition, τ is the largest perpendicular speed (speed
//! orthogonal to the DVA, in the DVA's frame) an object may have and
//! still be stored in the partition; anything faster goes to the
//! outlier index. The paper derives (Equations 8–10) that minimizing
//! the total rate of search-area expansion of the DVA + outlier
//! partitions reduces to minimizing
//!
//! ```text
//!     n_d (v_yd(n_d) − v_ymax)                       (Equation 10)
//! ```
//!
//! where `n_d` is the number of objects kept in the DVA partition when
//! its perpendicular-speed cap is `v_yd`, and `v_ymax` is the maximum
//! perpendicular speed over all objects. The expression is evaluated at
//! each edge of a cumulative histogram of perpendicular speeds
//! ([`CumulativeHistogram`]) and the minimizing edge becomes τ.

use crate::histogram::CumulativeHistogram;

/// The outcome of τ selection for one DVA partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauDecision {
    /// The chosen threshold: objects with perpendicular speed above τ
    /// are outliers.
    pub tau: f64,
    /// Objects retained in the DVA partition at this τ.
    pub retained: u64,
    /// Value of Equation 10 at the chosen τ (more negative = larger
    /// predicted reduction in expansion rate).
    pub objective: f64,
}

/// Evaluates Equation 10 at a candidate cap.
#[inline]
pub fn objective(n_d: u64, v_yd: f64, v_ymax: f64) -> f64 {
    n_d as f64 * (v_yd - v_ymax)
}

/// Selects τ for one partition from a cumulative histogram of
/// perpendicular speeds. `v_ymax` defaults to the histogram's upper
/// range edge (the largest observed perpendicular speed when the
/// histogram was built with [`CumulativeHistogram::from_samples`]).
///
/// When every candidate scores 0 (e.g. all objects share one speed),
/// τ is the maximum speed — no outliers, matching the paper's behaviour
/// on perfectly tight partitions.
pub fn optimal_tau(hist: &CumulativeHistogram) -> TauDecision {
    let v_ymax = hist.max_value();
    let mut best = TauDecision {
        tau: v_ymax,
        retained: hist.total(),
        objective: 0.0,
    };
    for (edge, n_d) in hist.cumulative_iter() {
        let obj = objective(n_d, edge, v_ymax);
        if obj < best.objective {
            best = TauDecision {
                tau: edge,
                retained: n_d,
                objective: obj,
            };
        }
    }
    best
}

/// Convenience: builds the histogram from raw perpendicular speeds and
/// selects τ. Returns `None` for an empty sample.
pub fn optimal_tau_from_samples(perp_speeds: &[f64], buckets: usize) -> Option<TauDecision> {
    if perp_speeds.is_empty() {
        return None;
    }
    let hist = CumulativeHistogram::from_samples(buckets, perp_speeds);
    Some(optimal_tau(&hist))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_partition_keeps_everything() {
        // All perpendicular speeds equal: no benefit in evicting.
        let speeds = vec![2.0; 100];
        let d = optimal_tau_from_samples(&speeds, 10).unwrap();
        assert_eq!(d.retained, 100);
        assert!(d.tau >= 2.0);
    }

    #[test]
    fn few_fast_outliers_are_cut() {
        // 990 slow objects (perp <= 1) and 10 fast ones (perp ~ 100):
        // keeping the slow mass and evicting the tail wins.
        let mut speeds = vec![1.0; 990];
        speeds.extend(vec![100.0; 10]);
        let d = optimal_tau_from_samples(&speeds, 100).unwrap();
        assert!(d.tau < 100.0, "tau {} should exclude the tail", d.tau);
        assert!(d.retained >= 990);
        assert!(d.objective < 0.0);
    }

    #[test]
    fn uniform_speeds_cut_at_half() {
        // Uniform perp speeds in (0, 100]: Eq. 10 at cap v keeps
        // n*v/100 objects scoring (n*v/100)(v-100) ∝ v^2 - 100v,
        // minimized at v = 50.
        let speeds: Vec<f64> = (1..=1000).map(|i| i as f64 / 10.0).collect();
        let d = optimal_tau_from_samples(&speeds, 100).unwrap();
        assert!(
            (d.tau - 50.0).abs() < 2.0,
            "analytic optimum 50, got {}",
            d.tau
        );
    }

    #[test]
    fn objective_formula() {
        assert_eq!(objective(10, 5.0, 20.0), -150.0);
        assert_eq!(objective(0, 5.0, 20.0), 0.0);
    }

    #[test]
    fn empty_samples() {
        assert!(optimal_tau_from_samples(&[], 10).is_none());
    }

    #[test]
    fn single_bucket_degenerate() {
        let d = optimal_tau_from_samples(&[1.0, 2.0, 3.0], 1).unwrap();
        // Only candidate is the max edge: keep everything.
        assert_eq!(d.retained, 3);
    }
}
