//! The `MovingObjectIndex` abstraction.

use vp_storage::IoStats;

use crate::error::IndexResult;
use crate::object::{MovingObject, ObjectId};
use crate::query::RangeQuery;

/// The interface every moving-object index in this workspace exposes.
///
/// Both baseline indexes (`vp-tpr`'s TPR/TPR\*-tree and `vp-bx`'s
/// Bx-tree) implement this trait, and the VP index manager
/// ([`crate::manager::VpIndex`]) both *consumes* it (for its per-DVA
/// sub-indexes) and *implements* it (so velocity-partitioned and plain
/// indexes are interchangeable in the benchmark harness) — mirroring
/// the paper's claim that VP applies to a wide range of index
/// structures.
pub trait MovingObjectIndex {
    /// Inserts a new object. Fails with
    /// [`crate::IndexError::DuplicateObject`] if the id is present.
    fn insert(&mut self, obj: MovingObject) -> IndexResult<()>;

    /// Deletes an object by id. Fails with
    /// [`crate::IndexError::UnknownObject`] if absent.
    fn delete(&mut self, id: ObjectId) -> IndexResult<()>;

    /// Updates an object (new position/velocity sample). The default
    /// implementation is the paper's delete-then-insert.
    fn update(&mut self, obj: MovingObject) -> IndexResult<()> {
        self.delete(obj.id)?;
        self.insert(obj)
    }

    /// Applies one tick's worth of updates with **upsert** semantics:
    /// objects already present are moved, new ids are inserted. When
    /// an id appears multiple times in one batch, the last occurrence
    /// wins.
    ///
    /// The default implementation loops the single-object path.
    /// Indexes with a cheaper batched plan (e.g. the Bx-tree, which
    /// sorts the implied delete/insert pairs into one B+-tree leaf
    /// walk) override it; callers that buffer a tick of updates should
    /// prefer this over per-object `update` calls.
    fn update_batch(&mut self, updates: &[MovingObject]) -> IndexResult<()> {
        for obj in updates {
            if self.get_object(obj.id)?.is_some() {
                self.delete(obj.id)?;
            }
            self.insert(*obj)?;
        }
        Ok(())
    }

    /// Deletes a set of objects. Each id must be present and appear at
    /// most once. The default implementation loops `delete`; batched
    /// indexes override it to share one index walk.
    fn remove_batch(&mut self, ids: &[ObjectId]) -> IndexResult<()> {
        for &id in ids {
            self.delete(id)?;
        }
        Ok(())
    }

    /// Executes a range query, returning the ids of all matching
    /// objects (exact — any index-internal approximation must be
    /// filtered before returning).
    ///
    /// Moving-object indexes answer queries about the **present and
    /// future** (Section 2.1 of the paper): `query.t_start` must not
    /// precede the reference time of any stored object. Historical
    /// queries (back-extrapolation) are outside the data model — node
    /// bounding regions only dominate their entries forward in time.
    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>>;

    /// Answers a whole batch of range queries, returning one exact
    /// result list per query, in query order. Each result is
    /// identical (as a set) to what [`MovingObjectIndex::range_query`]
    /// returns for that query alone.
    ///
    /// The default loops the single-query path. Indexes with a
    /// cheaper shared plan override it: the Bx-tree merges every
    /// query's decomposed curve ranges into **one shared leaf sweep**
    /// per time bucket (each touched leaf page is fetched and decoded
    /// once for all queries overlapping it), and the TPR-tree runs
    /// one top-down traversal carrying the set of still-alive queries
    /// per subtree (each node page is read once for the whole batch).
    /// Callers holding several concurrent queries should prefer this
    /// over a loop.
    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        queries.iter().map(|q| self.range_query(q)).collect()
    }

    /// Candidate fetch for the incremental kNN filter step
    /// ([`crate::knn`]): returns a **superset** of the ids matching
    /// `query`, without necessarily applying the exact predicate —
    /// the caller evaluates distances itself (and deduplicates).
    ///
    /// `covered` is the previous, strictly smaller probe of an
    /// expanding-query chain `q_1 ⊆ q_2 ⊆ …` over the **same time
    /// window** (each call receives the previous probe of the chain,
    /// on an otherwise unmodified index). An implementation may omit
    /// any id it already returned for the earlier probes of the
    /// chain; the contract is that the union of the returned sets
    /// over the chain's calls `1..=r` covers every id matching `q_r`.
    /// Batched indexes exploit this to scan only the **delta ring**
    /// of each enlargement round — new curve ranges minus
    /// already-scanned ranges for the Bx-tree, re-descent pruned to
    /// subtrees not fully inside the covered region for the TPR-tree
    /// — instead of rescanning the whole enlarged region every round.
    ///
    /// The default ignores `covered` and returns the exact matches of
    /// `query`, which satisfies the contract trivially.
    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        let _ = covered;
        self.range_query(query)
    }

    /// Looks up the current state of an object by id (every index in
    /// this workspace maintains the Section-5.3 lookup table anyway).
    /// Needed by the kNN search built on top of range queries
    /// ([`crate::knn`]).
    ///
    /// Fallible: a disk-backed lookup table can hit an I/O error, and
    /// that error must be distinguishable from "not present" — an
    /// earlier infallible signature silently turned injected read
    /// failures into `None`.
    fn get_object(&self, id: ObjectId) -> IndexResult<Option<MovingObject>>;

    /// Number of objects currently indexed.
    fn len(&self) -> usize;

    /// True when no objects are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the I/O counters attributable to this index.
    fn io_stats(&self) -> IoStats;

    /// Resets the I/O counters.
    fn reset_io_stats(&self);

    /// Forces the index's storage to a durable, self-consistent state:
    /// dirty buffer-pool shards are flushed and (for file-backed
    /// disks) fsync'd. Called by the VP manager's checkpoint path. The
    /// default is a no-op for purely in-memory indexes.
    fn flush_storage(&self) -> IndexResult<()> {
        Ok(())
    }

    /// Publishes the index's current state as the next committed
    /// snapshot epoch: everything written so far becomes visible to
    /// snapshots taken from now on, and pre-images pinned only by
    /// departed readers become reclaimable. Called by the VP manager
    /// at each tick commit point (after the WAL `TICK_COMMIT` record
    /// is durable). The default is a no-op for indexes without
    /// versioned storage.
    fn publish_epoch(&self) {}
}

/// A point-in-time, read-only view of a [`MovingObjectIndex`].
///
/// Snapshots are immutable and safe to share across threads; their
/// query methods run against the state captured at creation with no
/// coordination with — and no visibility into — concurrent writers
/// mutating the live index. Query semantics match the live trait
/// method of the same name, evaluated on the captured state.
pub trait IndexSnapshot: Send + Sync {
    /// Exact range query over the captured state; contract as
    /// [`MovingObjectIndex::range_query`].
    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>>;

    /// Batched range queries over the captured state; contract as
    /// [`MovingObjectIndex::range_query_batch`].
    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        queries.iter().map(|q| self.range_query(q)).collect()
    }

    /// kNN candidate superset over the captured state; contract as
    /// [`MovingObjectIndex::knn_candidates`].
    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        let _ = covered;
        self.range_query(query)
    }

    /// Number of objects captured.
    fn len(&self) -> usize;

    /// True when the snapshot holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`MovingObjectIndex`] that can produce lock-free point-in-time
/// snapshots of itself.
///
/// Kept separate from [`MovingObjectIndex`] (instead of adding an
/// associated type there) so `&dyn MovingObjectIndex` stays
/// object-safe for the benchmark harness.
pub trait SnapshotIndex: MovingObjectIndex {
    /// The snapshot handle type.
    type Snapshot: IndexSnapshot + 'static;

    /// Captures the index's current state. The returned snapshot keeps
    /// answering queries against that state while the live index keeps
    /// mutating; it must be dropped for the storage layer to reclaim
    /// the page versions it pins.
    fn snapshot(&self) -> IndexResult<Self::Snapshot>;
}

pub mod reference {
    //! A trivially correct in-memory reference index.
    //!
    //! Used throughout the workspace to validate the real indexes: it
    //! answers every query by exhaustively applying the exact
    //! predicate, so any divergence from it is a bug in the index
    //! under test. Also handy as the "ground truth" oracle in the
    //! benchmark harness's self-checks.

    use std::collections::BTreeMap;

    use super::*;
    use crate::error::IndexError;

    /// Linear-scan reference index.
    #[derive(Debug, Default, Clone)]
    pub struct ScanIndex {
        objects: BTreeMap<ObjectId, MovingObject>,
    }

    impl ScanIndex {
        pub fn new() -> Self {
            ScanIndex::default()
        }
    }

    impl MovingObjectIndex for ScanIndex {
        fn insert(&mut self, obj: MovingObject) -> IndexResult<()> {
            if self.objects.contains_key(&obj.id) {
                return Err(IndexError::DuplicateObject(obj.id));
            }
            self.objects.insert(obj.id, obj);
            Ok(())
        }

        fn delete(&mut self, id: ObjectId) -> IndexResult<()> {
            self.objects
                .remove(&id)
                .map(|_| ())
                .ok_or(IndexError::UnknownObject(id))
        }

        fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
            Ok(self
                .objects
                .values()
                .filter(|o| query.matches(o))
                .map(|o| o.id)
                .collect())
        }

        fn get_object(&self, id: ObjectId) -> IndexResult<Option<MovingObject>> {
            Ok(self.objects.get(&id).copied())
        }

        fn len(&self) -> usize {
            self.objects.len()
        }

        fn io_stats(&self) -> IoStats {
            IoStats::zero()
        }

        fn reset_io_stats(&self) {}
    }

    impl IndexSnapshot for ScanIndex {
        fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
            MovingObjectIndex::range_query(self, query)
        }

        fn len(&self) -> usize {
            MovingObjectIndex::len(self)
        }
    }

    impl SnapshotIndex for ScanIndex {
        type Snapshot = ScanIndex;

        /// Snapshot by value: the reference index is fully in memory,
        /// so a deep clone *is* a consistent point-in-time view.
        fn snapshot(&self) -> IndexResult<ScanIndex> {
            Ok(self.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ScanIndex;
    use super::*;
    use crate::query::QueryRegion;
    use vp_geom::{Circle, Point};

    #[test]
    fn scan_index_basic_lifecycle() {
        let mut idx = ScanIndex::new();
        assert!(MovingObjectIndex::is_empty(&idx));
        let o = MovingObject::new(1, Point::new(0.0, 0.0), Point::new(1.0, 0.0), 0.0);
        idx.insert(o).unwrap();
        assert_eq!(MovingObjectIndex::len(&idx), 1);
        assert!(matches!(
            idx.insert(o),
            Err(crate::IndexError::DuplicateObject(1))
        ));
        // Update via the default delete+insert path.
        idx.update(MovingObject::new(1, Point::new(5.0, 5.0), Point::ZERO, 1.0))
            .unwrap();
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5.0, 5.0), 1.0)),
            1.0,
        );
        assert_eq!(MovingObjectIndex::range_query(&idx, &q).unwrap(), vec![1]);
        idx.delete(1).unwrap();
        assert!(matches!(
            idx.delete(1),
            Err(crate::IndexError::UnknownObject(1))
        ));
    }
}
