//! The index manager — routing and querying of partitioned indexes
//! (Sections 5.3–5.5, Algorithm 3).
//!
//! [`VpIndex`] owns one sub-index per DVA plus one outlier sub-index.
//! Each DVA sub-index stores objects in the DVA's rotated coordinate
//! [`Frame`]; the outlier index uses world coordinates. The manager:
//!
//! * routes an insertion to the DVA whose axis is closest (by
//!   perpendicular velocity distance) to the object's velocity, unless
//!   that distance exceeds the partition's τ — then to the outlier
//!   index;
//! * handles updates as delete + insert, which migrates objects whose
//!   direction of travel changed partitions;
//! * applies whole ticks of updates partition-bucketed and — when
//!   [`VpConfig::tick_workers`] > 1 — in parallel, one scoped worker
//!   thread per group of partitions ([`VpIndex::apply_updates`]);
//! * executes range queries by transforming the query into every DVA
//!   frame (Algorithm 3), running the underlying index's query, and
//!   exact-filtering the merged candidates in world space;
//! * maintains online perpendicular-speed histograms so τ can be
//!   recomputed cheaply as speed distributions drift (Section 5.5,
//!   [`VpIndex::refresh_tau`]).
//!
//! `VpIndex` itself implements [`MovingObjectIndex`], so a partitioned
//! index is a drop-in replacement for its unpartitioned counterpart.

use std::collections::HashMap;
use std::sync::Arc;

use vp_geom::{Frame, Rect, Vec2};
use vp_storage::IoStats;
use vp_wal::{SyncPolicy, Wal};

use crate::analyzer::AnalyzerOutput;
use crate::config::VpConfig;
use crate::durable::{self, Durability};
use crate::error::{IndexError, IndexResult};
use crate::histogram::CumulativeHistogram;
use crate::object::{MovingObject, ObjectId};
use crate::query::RangeQuery;
use crate::tau::optimal_tau;
use crate::traits::{IndexSnapshot, MovingObjectIndex, SnapshotIndex};

/// Index of a partition inside a [`VpIndex`]: `0..k` are DVA
/// partitions, `k` is the outlier partition.
pub type PartitionId = usize;

/// Operational health of a [`VpIndex`] — the rungs of the failure
/// model's degradation ladder (see `docs/ARCHITECTURE.md`).
///
/// Transient I/O errors are retried below this level (WAL flushes,
/// buffer-pool writes); a tick that still fails rolls back and leaves
/// the index `Healthy`. Only an **unrecoverable** durability failure —
/// a failed fsync (whose on-disk effect is unknowable, so no retry may
/// assume durability) or a failed rollback — demotes the index to
/// [`Health::ReadOnly`]: queries keep answering from memory, every
/// mutation returns [`IndexError::ReadOnly`], and the way back is
/// [`VpIndex::recover`] from the on-disk state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Fully operational.
    Healthy,
    /// Mutations refused; queries still served. The reason records the
    /// failure that forced the demotion.
    ReadOnly {
        /// Why the index stopped accepting writes.
        reason: String,
    },
}

/// One result list per query of a batch, in query order.
type BatchResults = Vec<Vec<ObjectId>>;

/// One partition's share of a tick handed to a worker: the disjoint
/// sub-index borrow, the ids migrating away, the upsert batch, and —
/// for durable indexes — the partition's WAL stream plus the
/// world-coordinate upserts to log on it.
struct PartitionJob<'a, I> {
    partition: usize,
    index: &'a mut I,
    removals: &'a [ObjectId],
    upserts: &'a [MovingObject],
    wal: Option<(&'a mut Wal, &'a [MovingObject])>,
}

impl<I> PartitionJob<'_, I> {
    fn load(&self) -> usize {
        self.removals.len() + self.upserts.len()
    }
}

/// Everything a sub-index factory needs to construct one partition's
/// index.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Which partition this is.
    pub id: PartitionId,
    /// Rotation frame of the partition (identity for the outlier
    /// partition).
    pub frame: Frame,
    /// Data domain in *frame coordinates* — the coordinate range the
    /// sub-index must accommodate (the rotated bounding box of the
    /// world domain).
    pub domain: Rect,
    /// Outlier threshold (`f64::INFINITY` for the outlier partition).
    pub tau: f64,
    /// True for the outlier partition.
    pub is_outlier: bool,
}

/// A velocity-partitioned moving-object index.
///
/// Generic over the underlying index type `I`; construct with
/// [`VpIndex::build`] and a factory closure that creates one `I` per
/// [`PartitionSpec`].
pub struct VpIndex<I> {
    pub(crate) config: VpConfig,
    pub(crate) specs: Vec<PartitionSpec>,
    pub(crate) indexes: Vec<I>,
    /// Which partition each live object resides in (the "simple lookup
    /// table" of Section 5.3).
    pub(crate) assignment: HashMap<ObjectId, PartitionId>,
    /// World-space state of each live object, used for exact query
    /// filtering and for delete/update routing. Behind an [`Arc`] so a
    /// [`VpSnapshot`] captures it by reference count; the copy-on-write
    /// ([`Arc::make_mut`]) at mutation sites only pays for a deep clone
    /// while a snapshot is actually alive.
    pub(crate) objects: Arc<HashMap<ObjectId, MovingObject>>,
    /// Online per-DVA histograms of perpendicular speeds (Section 5.5).
    pub(crate) perp_hists: Vec<CumulativeHistogram>,
    /// WAL streams and checkpoint bookkeeping; `Some` only for indexes
    /// constructed through the durable lifecycle
    /// ([`VpIndex::open`] / [`VpIndex::recover`]).
    pub(crate) durability: Option<Durability>,
    /// Degradation state — see [`Health`].
    pub(crate) health: Health,
}

impl<I> VpIndex<I> {
    /// Builds a partitioned index from analyzer output. The factory is
    /// invoked once per partition, DVA partitions first, outlier last.
    pub fn build<F>(
        config: VpConfig,
        analysis: &AnalyzerOutput,
        factory: F,
    ) -> IndexResult<VpIndex<I>>
    where
        F: FnMut(&PartitionSpec) -> I,
    {
        config.validate().map_err(IndexError::Config)?;
        if analysis.partitions.is_empty() {
            return Err(IndexError::Config(
                "analyzer produced no partitions (empty sample?)".into(),
            ));
        }
        let pivot = config.pivot();
        let mut specs = Vec::with_capacity(analysis.partitions.len() + 1);
        for (i, p) in analysis.partitions.iter().enumerate() {
            let frame = Frame::new(p.axis, pivot);
            specs.push(PartitionSpec {
                id: i,
                frame,
                domain: frame.domain_in_frame(&config.domain),
                tau: p.tau,
                is_outlier: false,
            });
        }
        let outlier_id = specs.len();
        specs.push(PartitionSpec {
            id: outlier_id,
            frame: Frame::identity(),
            domain: config.domain,
            tau: f64::INFINITY,
            is_outlier: true,
        });

        let indexes: Vec<I> = specs.iter().map(factory).collect();
        let perp_hists = analysis
            .partitions
            .iter()
            .map(|p| {
                CumulativeHistogram::new(
                    config.tau_buckets,
                    // Track speeds up to well beyond the current τ so a
                    // drifting distribution stays in range.
                    (p.tau_decision.tau * 4.0).clamp(1.0, 1e9),
                )
            })
            .collect();

        Ok(VpIndex {
            config,
            specs,
            indexes,
            assignment: HashMap::new(),
            objects: Arc::new(HashMap::new()),
            perp_hists,
            durability: None,
            health: Health::Healthy,
        })
    }

    /// Assembles an empty index from already-reconstructed parts (the
    /// recovery path, which rebuilds specs from the manifest instead
    /// of re-running the analyzer).
    pub(crate) fn from_recovered_parts(
        config: VpConfig,
        specs: Vec<PartitionSpec>,
        indexes: Vec<I>,
        perp_hists: Vec<CumulativeHistogram>,
    ) -> VpIndex<I> {
        VpIndex {
            config,
            specs,
            indexes,
            assignment: HashMap::new(),
            objects: Arc::new(HashMap::new()),
            perp_hists,
            durability: None,
            health: Health::Healthy,
        }
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &VpConfig {
        &self.config
    }

    /// The index's current degradation state.
    pub fn health(&self) -> &Health {
        &self.health
    }

    /// True once the index has been demoted to read-only mode (an
    /// unrecoverable durability failure; see [`Health`]).
    pub fn is_read_only(&self) -> bool {
        matches!(self.health, Health::ReadOnly { .. })
    }

    /// Refuses mutations on a demoted index.
    pub(crate) fn check_writable(&self) -> IndexResult<()> {
        match &self.health {
            Health::Healthy => Ok(()),
            Health::ReadOnly { reason } => Err(IndexError::ReadOnly(reason.clone())),
        }
    }

    /// Demotes the index to read-only mode. The first demotion wins —
    /// its reason describes the original failure, which later errors
    /// are usually consequences of.
    pub(crate) fn enter_read_only(&mut self, reason: String) {
        if matches!(self.health, Health::Healthy) {
            self.health = Health::ReadOnly { reason };
        }
    }

    /// Changes the tick-application parallelism of an existing index
    /// (see [`VpConfig::tick_workers`]). Results are schedule-invariant,
    /// so this can be flipped freely between ticks — the scaling
    /// benches sweep it without rebuilding the index.
    pub fn set_tick_workers(&mut self, workers: usize) {
        assert!(workers >= 1, "tick_workers must be >= 1");
        self.config.tick_workers = workers;
    }

    /// The world-space data domain (convenience accessor for callers
    /// that only hold the index — the kNN driver and the serving
    /// layer both bound searches by it).
    pub fn domain(&self) -> Rect {
        self.config.domain
    }

    /// The partition specifications (DVA partitions then outlier).
    pub fn specs(&self) -> &[PartitionSpec] {
        &self.specs
    }

    /// Number of DVA partitions (excluding the outlier partition).
    pub fn dva_count(&self) -> usize {
        self.specs.len() - 1
    }

    /// The partition currently holding `id`, if present.
    pub fn partition_of(&self, id: ObjectId) -> Option<PartitionId> {
        self.assignment.get(&id).copied()
    }

    /// Number of objects in each partition.
    pub fn partition_sizes(&self) -> Vec<usize>
    where
        I: MovingObjectIndex,
    {
        self.indexes.iter().map(|i| i.len()).collect()
    }

    /// Direct access to a partition's sub-index (diagnostics /
    /// figure-generation).
    pub fn partition_index(&self, p: PartitionId) -> &I {
        &self.indexes[p]
    }

    /// Chooses the partition for a velocity: the DVA with the smallest
    /// perpendicular distance, or the outlier partition when that
    /// distance exceeds the DVA's τ (Section 5.3).
    pub fn choose_partition(&self, vel: Vec2) -> PartitionId {
        let outlier = self.specs.len() - 1;
        let mut best: Option<(PartitionId, f64)> = None;
        for spec in &self.specs[..outlier] {
            let d = vel.perp_distance_to_axis(spec.frame.axis());
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((spec.id, d)),
            }
        }
        match best {
            Some((p, d)) if d <= self.specs[p].tau => p,
            _ => outlier,
        }
    }

    /// Recomputes each DVA partition's τ from the online histograms
    /// (Section 5.5). Cheap — Equation 10 over the histogram edges —
    /// and intended to be called periodically by the application.
    /// Returns the new τ per DVA partition. Existing objects are not
    /// re-routed; the thresholds apply to future insertions/updates.
    ///
    /// On a durable index the refresh is logged (its effect on routing
    /// is deterministic given the histogram state, which replay
    /// rebuilds, so the record carries no payload); the only error
    /// source is that log append.
    pub fn refresh_tau(&mut self) -> IndexResult<Vec<f64>> {
        self.check_writable()?;
        let tau_snapshot: Vec<f64> = self.specs.iter().map(|s| s.tau).collect();
        let hist_snapshot = self.perp_hists.clone();
        let mut taus = Vec::with_capacity(self.perp_hists.len());
        for (spec, hist) in self.specs.iter_mut().zip(self.perp_hists.iter_mut()) {
            if hist.total() > 0 {
                spec.tau = optimal_tau(hist).tau;
                // Start a fresh accumulation period so the next refresh
                // reflects the *current* speed distribution rather than
                // an all-time average (Section 5.5).
                hist.reset();
            }
            taus.push(spec.tau);
        }
        if let Err(e) = self.log_single(durable::KIND_TAU_REFRESH, &[]) {
            // Un-log-able refresh: restore the thresholds and
            // histograms so memory never runs ahead of the log.
            for (spec, tau) in self.specs.iter_mut().zip(&tau_snapshot) {
                spec.tau = *tau;
            }
            self.perp_hists = hist_snapshot;
            return Err(self.handle_log_failure(Ok(()), e));
        }
        Ok(taus)
    }

    /// Common failure handling once an event's in-memory effect has
    /// been undone (`undo` is the undo's own result): discards the
    /// dead event's buffered WAL records, demotes to read-only when
    /// the undo failed or a stream was poisoned by a failed fsync, and
    /// hands the original error back for returning.
    fn handle_log_failure(&mut self, undo: IndexResult<()>, e: IndexError) -> IndexError {
        if let Some(d) = &mut self.durability {
            d.meta.discard_pending();
        }
        if let Err(re) = undo {
            self.enter_read_only(format!(
                "rollback failed ({re}) after log error ({e}); \
                 in-memory state may be torn — rebuild via recovery"
            ));
        } else if let Some(reason) = self.durability.as_ref().and_then(|d| d.poisoned_reason()) {
            self.enter_read_only(format!("WAL fsync failed (durability unknown): {reason}"));
        }
        e
    }

    /// Applies one tick of updates across the partitioned index
    /// (upsert semantics, like [`MovingObjectIndex::update_batch`]).
    ///
    /// Instead of routing objects one at a time, the whole tick is
    /// bucketed first: each update is assigned its destination
    /// partition, migrations are split into a removal from the old
    /// partition plus an upsert into the new one, and only then is
    /// each sub-index touched — once, with its full batch, via
    /// [`MovingObjectIndex::remove_batch`] /
    /// [`MovingObjectIndex::update_batch`]. Sub-indexes that exploit
    /// batching (the Bx-tree sorts its batch into B+-tree key order
    /// and walks each leaf once) therefore see ordered runs rather
    /// than interleaved single ops.
    ///
    /// When the same id appears multiple times in `updates`, the last
    /// occurrence wins.
    ///
    /// ## Parallelism
    ///
    /// Per-partition batches touch disjoint sub-indexes, so once the
    /// tick is bucketed they are applied by up to
    /// [`VpConfig::tick_workers`] scoped worker threads (batches are
    /// distributed longest-first onto the least-loaded worker). With
    /// `tick_workers == 1` (the default) everything runs sequentially
    /// on the calling thread in partition order — the deterministic
    /// mode the oracle tests compare against. The results are
    /// identical either way: no two workers share any index state, and
    /// each partition's removals are applied before its upserts.
    ///
    /// ## Durability
    ///
    /// On a durable index ([`VpIndex::open`]) the tick is the unit of
    /// logging: each worker writes its partition's batch (removals +
    /// world-coordinate upserts) to **that partition's own WAL
    /// stream** — encoding rides the same threads as application, so
    /// logging never re-serializes a parallel tick — and the tick is
    /// sealed afterwards by a commit record on the `meta` stream,
    /// flushed/fsync'd per [`VpConfig::sync_policy`]. A crash before
    /// the commit record makes the whole tick invisible to recovery.
    ///
    /// ## Error contract (tick atomicity)
    ///
    /// A tick either applies completely or not at all. Any error
    /// before the tick's commit record is durably written — a WAL
    /// append/flush failure, a sub-index storage error, the meta-seal
    /// itself — **rolls the in-memory state back to the pre-tick
    /// snapshot**: routing metadata, object table, online histograms,
    /// and every touched sub-index are restored, buffered WAL records
    /// are discarded, and the call returns a structured error with the
    /// index still [`Health::Healthy`] and queryable. Two failures are
    /// unrecoverable and demote the index to [`Health::ReadOnly`]
    /// instead: a failed fsync (the poisoned stream's durability is
    /// unknowable) and a failure during the rollback itself (the
    /// in-memory state can no longer be trusted). Either way the
    /// durable log never contains the failed tick, so
    /// [`VpIndex::recover`] restores the exact pre-tick state.
    pub fn apply_updates(&mut self, updates: &[MovingObject]) -> IndexResult<()>
    where
        I: MovingObjectIndex + Send,
    {
        self.apply_updates_inner(updates)
    }

    /// [`VpIndex::apply_updates`] plus the tick's change set: on
    /// success, returns the [`TickDelta`](crate::sub::TickDelta) a
    /// subscription engine needs to re-evaluate standing queries
    /// (last write per id wins, winners ascending by id, `time` = the
    /// batch's newest reference time). On error nothing was applied
    /// (same atomicity contract as `apply_updates`) and no delta is
    /// produced.
    pub fn apply_updates_delta(
        &mut self,
        updates: &[MovingObject],
    ) -> IndexResult<crate::sub::TickDelta>
    where
        I: MovingObjectIndex + Send,
    {
        self.apply_updates_inner(updates)?;
        Ok(crate::sub::TickDelta::from_updates(updates))
    }

    fn apply_updates_inner(&mut self, updates: &[MovingObject]) -> IndexResult<()>
    where
        I: MovingObjectIndex + Send,
    {
        self.check_writable()?;
        if updates.is_empty() {
            return Ok(());
        }
        let parts = self.specs.len();
        let mut removals: Vec<Vec<ObjectId>> = vec![Vec::new(); parts];
        let mut upserts: Vec<Vec<MovingObject>> = vec![Vec::new(); parts];

        // Durable mode: reserve the tick's global event seq up front
        // and keep the world-coordinate upserts per partition — the
        // log records routing *decisions*, not frame-space data.
        // The seq stays burned if the tick fails (a partition stream
        // may already hold a flushed record under it; gaps are fine,
        // reuse is not).
        let log_seq = match &mut self.durability {
            Some(d) if !d.replaying => {
                let s = d.next_seq;
                d.next_seq += 1;
                Some(s)
            }
            _ => None,
        };
        let mut world: Vec<Vec<MovingObject>> = if log_seq.is_some() {
            vec![Vec::new(); parts]
        } else {
            Vec::new()
        };

        // Last write wins within one tick.
        let mut latest: HashMap<ObjectId, usize> = HashMap::with_capacity(updates.len());
        for (i, obj) in updates.iter().enumerate() {
            latest.insert(obj.id, i);
        }

        // Pre-tick snapshot backing the rollback contract above: each
        // winning id's previous world object + partition (None = not
        // present), the online histograms, and the durability cadence
        // counters. Cost is proportional to the tick, not the index.
        let hist_snapshot = self.perp_hists.clone();
        let cadence_snapshot = self
            .durability
            .as_ref()
            .map(|d| (d.ticks_since_ckpt, d.ticks_since_sync));
        let mut prior: HashMap<ObjectId, Option<(MovingObject, PartitionId)>> =
            HashMap::with_capacity(latest.len());

        for (i, obj) in updates.iter().enumerate() {
            if latest[&obj.id] != i {
                continue;
            }
            prior.insert(
                obj.id,
                self.objects
                    .get(&obj.id)
                    .map(|o| (*o, self.assignment[&obj.id])),
            );
            let p = self.choose_partition(obj.vel);
            match self.assignment.get(&obj.id) {
                Some(&old) if old != p => removals[old].push(obj.id),
                _ => {}
            }
            upserts[p].push(obj.to_frame(&self.specs[p].frame));
            if log_seq.is_some() {
                world[p].push(*obj);
            }
            self.assignment.insert(obj.id, p);
            Arc::make_mut(&mut self.objects).insert(obj.id, *obj);
            self.record_perp_speed(obj.vel);
        }

        match self.run_tick(&removals, &upserts, &world, latest.len(), log_seq) {
            Ok(want_ckpt) => {
                // The tick is committed: publish the sub-indexes' new
                // state as the next snapshot epoch. Ordering matters —
                // the WAL TICK_COMMIT record is already durable (sealed
                // inside run_tick), so a snapshot taken from here on
                // only ever observes logged state; the epoch publish is
                // the snapshot-visible commit point.
                for i in &self.indexes {
                    i.publish_epoch();
                }
                // An error from the automatic checkpoint below must
                // NOT roll the tick back (the publish path leaves the
                // previous checkpoint + log intact, so the state is
                // consistent — only the log didn't shrink).
                if want_ckpt {
                    self.checkpoint()?;
                }
                Ok(())
            }
            Err(e) => {
                if let Some(d) = &mut self.durability {
                    d.discard_all_pending();
                    if let Some((ckpt, sync)) = cadence_snapshot {
                        d.ticks_since_ckpt = ckpt;
                        d.ticks_since_sync = sync;
                    }
                }
                let rollback = self.rollback_tick(&prior, hist_snapshot, &removals, &upserts);
                let poisoned = self.durability.as_ref().and_then(|d| d.poisoned_reason());
                if let Err(re) = rollback {
                    self.enter_read_only(format!(
                        "tick rollback failed ({re}) after tick error ({e}); \
                         in-memory state may be torn — rebuild via recovery"
                    ));
                } else if let Some(reason) = poisoned {
                    self.enter_read_only(format!(
                        "WAL fsync failed (durability unknown): {reason}"
                    ));
                }
                Err(e)
            }
        }
    }

    /// The fallible middle of a tick: log + apply every partition's
    /// batch (parallel per [`VpConfig::tick_workers`]), then seal the
    /// tick with the meta commit record. Returns whether the
    /// checkpoint cadence came due. The caller owns the rollback on
    /// error — this method only computes.
    fn run_tick(
        &mut self,
        removals: &[Vec<ObjectId>],
        upserts: &[Vec<MovingObject>],
        world: &[Vec<MovingObject>],
        winners: usize,
        log_seq: Option<u64>,
    ) -> IndexResult<bool>
    where
        I: MovingObjectIndex + Send,
    {
        let parts = self.specs.len();
        // Pair every touched sub-index with its batches (and, when
        // logging, its WAL stream). The zips hand out one disjoint
        // `&mut I` / `&mut Wal` per partition, which is what lets the
        // workers below run without any locking.
        //
        // Cross-tick group commit: under `SyncPolicy::EveryTicks(n)`
        // ordinary ticks commit with a flush only, and every n-th
        // tick escalates to a full fsync boundary — the effective
        // policy below is what the workers and the meta seal use.
        let policy = self.durability.as_ref().map(|d| d.policy);
        let policy = match policy {
            Some(SyncPolicy::EveryTicks(n)) => {
                let d = self.durability.as_ref().expect("policy implies durability");
                if log_seq.is_some() && d.ticks_since_sync + 1 >= u64::from(n.max(1)) {
                    Some(SyncPolicy::Always)
                } else {
                    Some(SyncPolicy::Never)
                }
            }
            p => p,
        };
        let mut wal_streams: Vec<Option<&mut Wal>> = match &mut self.durability {
            Some(d) if log_seq.is_some() => d.parts.iter_mut().map(Some).collect(),
            _ => (0..parts).map(|_| None).collect(),
        };
        let mut touched: Vec<usize> = Vec::new();
        let mut jobs: Vec<PartitionJob<'_, I>> = Vec::new();
        for (p, (index, (r, u))) in self
            .indexes
            .iter_mut()
            .zip(removals.iter().zip(upserts.iter()))
            .enumerate()
        {
            if r.is_empty() && u.is_empty() {
                continue;
            }
            touched.push(p);
            jobs.push(PartitionJob {
                partition: p,
                index,
                removals: r,
                upserts: u,
                wal: wal_streams[p].take().map(|w| (w, world[p].as_slice())),
            });
        }

        let workers = self.config.tick_workers.min(jobs.len()).max(1);
        if workers == 1 {
            for job in jobs {
                Self::run_job(job, log_seq, policy)?;
            }
        } else {
            // Longest-processing-time grouping: biggest batches first,
            // each onto the currently lightest worker. Grouping only
            // affects the schedule, never the outcome — each
            // partition's index *and* WAL stream travel together.
            jobs.sort_by_key(|j| std::cmp::Reverse(j.load()));
            let mut groups: Vec<Vec<PartitionJob<'_, I>>> =
                (0..workers).map(|_| Vec::new()).collect();
            let mut loads = vec![0usize; workers];
            for job in jobs {
                let lightest = (0..workers)
                    .min_by_key(|&g| loads[g])
                    .expect("workers >= 1");
                loads[lightest] += job.load();
                groups[lightest].push(job);
            }
            let results: Vec<IndexResult<()>> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|group| {
                        scope.spawn(move || {
                            for job in group {
                                Self::run_job(job, log_seq, policy)?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition worker panicked"))
                    .collect()
            });
            results.into_iter().collect::<IndexResult<()>>()?;
        }

        // Seal the tick: every partition stream was flushed (and,
        // under `SyncPolicy::Always`, fsync'd) by its own worker
        // before the scope joined, so the data is durable *before*
        // the commit record below is written — recovery trusts a
        // commit only because of this ordering. Running the data-side
        // fsyncs on the workers keeps the commit path from paying N
        // serial fsyncs on the caller thread.
        let mut want_ckpt = false;
        if let Some(seq) = log_seq {
            let effective = policy.expect("log_seq implies a policy");
            let d = self
                .durability
                .as_mut()
                .expect("log_seq implies durability");
            if matches!(d.policy, SyncPolicy::EveryTicks(_)) {
                if effective == SyncPolicy::Always {
                    // Sync boundary: partitions this tick touched
                    // were fsync'd by their workers; the rest may
                    // still hold unsynced records from earlier
                    // ticks, and the commit record below must not
                    // become durable before they are.
                    for (p, wal) in d.parts.iter_mut().enumerate() {
                        if !touched.contains(&p) {
                            wal.sync()?;
                        }
                    }
                    d.ticks_since_sync = 0;
                } else {
                    d.ticks_since_sync += 1;
                }
            }
            d.meta.append(
                seq,
                durable::KIND_TICK_COMMIT,
                &durable::encode_tick_commit(touched.len(), winners),
            )?;
            d.meta.commit(effective)?;
            d.ticks_since_ckpt += 1;
            want_ckpt = d.checkpoint_every > 0 && d.ticks_since_ckpt >= d.checkpoint_every;
        }
        Ok(want_ckpt)
    }

    /// Restores the pre-tick state captured by
    /// [`VpIndex::apply_updates`]: every touched partition's sub-index
    /// is *reconciled* object by object against the snapshot (so the
    /// undo is correct whether a partition applied fully, partially,
    /// or not at all — each object is compared to its desired pre-tick
    /// state and fixed only if it diverged), then the routing
    /// metadata and histograms are swapped back wholesale.
    fn rollback_tick(
        &mut self,
        prior: &HashMap<ObjectId, Option<(MovingObject, PartitionId)>>,
        hist_snapshot: Vec<CumulativeHistogram>,
        removals: &[Vec<ObjectId>],
        upserts: &[Vec<MovingObject>],
    ) -> IndexResult<()>
    where
        I: MovingObjectIndex,
    {
        for p in 0..self.specs.len() {
            let ids = removals[p]
                .iter()
                .copied()
                .chain(upserts[p].iter().map(|o| o.id));
            for id in ids {
                // Pre-tick, partition p held the object iff the
                // snapshot places it there.
                let desired: Option<MovingObject> = match prior.get(&id) {
                    Some(Some((o, q))) if *q == p => Some(o.to_frame(&self.specs[p].frame)),
                    _ => None,
                };
                let current = self.indexes[p].get_object(id)?;
                match (desired, current) {
                    (Some(want), Some(cur)) => {
                        if cur != want {
                            self.indexes[p].update(want)?;
                        }
                    }
                    (Some(want), None) => self.indexes[p].insert(want)?,
                    (None, Some(_)) => self.indexes[p].delete(id)?,
                    (None, None) => {}
                }
            }
        }
        for (&id, pr) in prior {
            match pr {
                Some((o, q)) => {
                    Arc::make_mut(&mut self.objects).insert(id, *o);
                    self.assignment.insert(id, *q);
                }
                None => {
                    Arc::make_mut(&mut self.objects).remove(&id);
                    self.assignment.remove(&id);
                }
            }
        }
        self.perp_hists = hist_snapshot;
        Ok(())
    }

    /// One worker's handling of one partition: log *and commit* the
    /// batch on the partition's stream (durable mode), then apply it.
    /// Committing here — on the worker, concurrently across
    /// partitions — is what keeps an fsync-per-partition policy from
    /// serializing on the coordinator.
    fn run_job(
        job: PartitionJob<'_, I>,
        seq: Option<u64>,
        policy: Option<SyncPolicy>,
    ) -> IndexResult<()>
    where
        I: MovingObjectIndex,
    {
        if let Some((wal, world)) = job.wal {
            let payload = durable::encode_tick_part(job.partition, job.removals, world);
            wal.append(
                seq.expect("a WAL stream implies a reserved seq"),
                durable::KIND_TICK_PART,
                &payload,
            )?;
            wal.commit(policy.expect("a WAL stream implies a policy"))?;
        }
        Self::apply_partition(job.index, job.removals, job.upserts)
    }

    /// Applies one partition's share of a tick: removals (migrations
    /// away) first, then upserts.
    pub(crate) fn apply_partition(
        index: &mut I,
        removals: &[ObjectId],
        upserts: &[MovingObject],
    ) -> IndexResult<()>
    where
        I: MovingObjectIndex,
    {
        if !removals.is_empty() {
            index.remove_batch(removals)?;
        }
        if !upserts.is_empty() {
            index.update_batch(upserts)?;
        }
        Ok(())
    }

    /// The query in partition `p`'s coordinate frame (identity for
    /// the outlier partition).
    fn query_in_frame(&self, p: usize, query: &RangeQuery) -> RangeQuery {
        let spec = &self.specs[p];
        if spec.is_outlier {
            *query
        } else {
            query.to_frame(&spec.frame)
        }
    }

    /// Answers a whole batch of range queries with per-partition
    /// fan-out: every partition transforms the full batch into its
    /// frame once and answers it through the sub-index's batched path
    /// ([`MovingObjectIndex::range_query_batch`] — one shared leaf
    /// sweep / traversal per partition instead of one scan per
    /// query), then exact-filters its candidates in world space.
    ///
    /// ## Parallelism
    ///
    /// Partitions are read-only and disjoint, so partition groups are
    /// dispatched onto up to [`VpConfig::tick_workers`] scoped worker
    /// threads (grouped longest-first by partition size, like the
    /// tick workers). With `tick_workers == 1` everything runs
    /// sequentially on the calling thread. Results are **identical
    /// either way**: each partition's answer is computed by exactly
    /// one thread and the per-query merges concatenate in ascending
    /// partition order, so the output is schedule-invariant —
    /// bit-identical to the sequential run, and set-equal to looping
    /// [`MovingObjectIndex::range_query`].
    pub fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>>
    where
        I: MovingObjectIndex + Sync,
    {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let parts = self.specs.len();
        // One partition's share: transform, batched sub-query, exact
        // world-space filter (on the worker, where the parallelism is).
        let run = |p: usize| -> IndexResult<BatchResults> {
            let local: Vec<RangeQuery> =
                queries.iter().map(|q| self.query_in_frame(p, q)).collect();
            let candidates = self.indexes[p].range_query_batch(&local)?;
            let mut out: Vec<Vec<ObjectId>> = vec![Vec::new(); queries.len()];
            for (qi, ids) in candidates.into_iter().enumerate() {
                for id in ids {
                    if let Some(obj) = self.objects.get(&id) {
                        if queries[qi].matches(obj) {
                            out[qi].push(id);
                        }
                    }
                }
            }
            Ok(out)
        };

        // LPT by partition population — the same schedule-only
        // heuristic as the tick workers, through the shared read-side
        // fan-out (results come back in partition order).
        let per_part: Vec<IndexResult<BatchResults>> = crate::fanout::lpt_fan_out(
            (0..parts).collect(),
            self.config.tick_workers,
            |&p| self.indexes[p].len(),
            run,
        );

        // Merge in ascending partition order: schedule-invariant.
        let mut merged: Vec<Vec<ObjectId>> = vec![Vec::new(); queries.len()];
        for part in per_part {
            for (qi, ids) in part?.into_iter().enumerate() {
                merged[qi].extend(ids);
            }
        }
        Ok(merged)
    }

    /// Answers a batch of kNN queries, dispatching query groups onto
    /// up to [`VpConfig::tick_workers`] scoped worker threads (the
    /// queries — not the partitions — are the parallel axis here,
    /// because each kNN search is an adaptive enlargement loop of its
    /// own). Each search runs the incremental [`crate::knn::knn_at`]
    /// against `&self`; results are returned in query order and are
    /// identical to looping `knn_at`, regardless of worker count.
    pub fn knn_batch(
        &self,
        queries: &[crate::knn::KnnQuery],
        domain: &Rect,
    ) -> IndexResult<Vec<Vec<crate::knn::Neighbor>>>
    where
        I: MovingObjectIndex + Send + Sync,
    {
        crate::knn::knn_batch(self, queries, domain, self.config.tick_workers)
    }

    /// Returns which histogram recorded which value, so a failed
    /// mutation can subtract its sample again
    /// ([`CumulativeHistogram::remove`]).
    pub(crate) fn record_perp_speed(&mut self, vel: Vec2) -> Option<(usize, f64)> {
        // Track the perpendicular speed against the *closest* DVA — the
        // candidate population of that DVA's τ decision.
        let outlier = self.specs.len() - 1;
        let mut best: Option<(usize, f64)> = None;
        for (i, spec) in self.specs[..outlier].iter().enumerate() {
            let d = vel.perp_distance_to_axis(spec.frame.axis());
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        if let Some((i, d)) = best {
            self.perp_hists[i].add(d);
        }
        best
    }
}

impl<I: MovingObjectIndex + Send + Sync> MovingObjectIndex for VpIndex<I> {
    /// On a durable index the insert is applied first and logged
    /// second (logging a precondition-checked op that then failed
    /// would poison replay). If the *log* append/commit itself fails —
    /// disk full, I/O error — the in-memory insert is **undone** and
    /// the call returns the structured error with the index unchanged
    /// and still queryable; memory never runs ahead of the durable
    /// state. A failed fsync additionally demotes the index to
    /// read-only ([`Health`]). Same contract for `delete`; ticks via
    /// [`VpIndex::apply_updates`] have the analogous (snapshot-based)
    /// contract, documented there.
    fn insert(&mut self, obj: MovingObject) -> IndexResult<()> {
        self.check_writable()?;
        if self.assignment.contains_key(&obj.id) {
            return Err(IndexError::DuplicateObject(obj.id));
        }
        let p = self.choose_partition(obj.vel);
        let local = obj.to_frame(&self.specs[p].frame);
        self.indexes[p].insert(local)?;
        self.assignment.insert(obj.id, p);
        Arc::make_mut(&mut self.objects).insert(obj.id, obj);
        let sample = self.record_perp_speed(obj.vel);
        if let Err(e) = self.log_single(durable::KIND_INSERT, &durable::encode_object_record(&obj))
        {
            let undo = self.indexes[p].delete(obj.id);
            self.assignment.remove(&obj.id);
            Arc::make_mut(&mut self.objects).remove(&obj.id);
            if let Some((i, d)) = sample {
                self.perp_hists[i].remove(d);
            }
            return Err(self.handle_log_failure(undo, e));
        }
        Ok(())
    }

    fn delete(&mut self, id: ObjectId) -> IndexResult<()> {
        self.check_writable()?;
        let p = self
            .assignment
            .get(&id)
            .copied()
            .ok_or(IndexError::UnknownObject(id))?;
        self.indexes[p].delete(id)?;
        let obj = Arc::make_mut(&mut self.objects).remove(&id);
        self.assignment.remove(&id);
        if let Err(e) = self.log_single(durable::KIND_DELETE, &durable::encode_delete_record(id)) {
            let undo = match obj {
                Some(o) => {
                    let r = self.indexes[p].insert(o.to_frame(&self.specs[p].frame));
                    if r.is_ok() {
                        Arc::make_mut(&mut self.objects).insert(id, o);
                        self.assignment.insert(id, p);
                    }
                    r
                }
                None => Ok(()),
            };
            return Err(self.handle_log_failure(undo, e));
        }
        Ok(())
    }

    /// Unlike the trait default (delete + insert — which on a durable
    /// index would log two *independently committed* records, so a
    /// crash between them would lose the object entirely), a VP
    /// update routes through the one-element tick path: a single,
    /// crash-atomic logged event. The index state produced is
    /// identical; the object must already exist, as the trait
    /// requires.
    fn update(&mut self, obj: MovingObject) -> IndexResult<()> {
        if !self.assignment.contains_key(&obj.id) {
            return Err(IndexError::UnknownObject(obj.id));
        }
        self.apply_updates(std::slice::from_ref(&obj))
    }

    fn update_batch(&mut self, updates: &[MovingObject]) -> IndexResult<()> {
        self.apply_updates(updates)
    }

    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        // Algorithm 3: query every partition in its own frame, merge,
        // and exact-filter in world space.
        let mut results = Vec::new();
        for (spec, index) in self.specs.iter().zip(&self.indexes) {
            let local = if spec.is_outlier {
                *query
            } else {
                query.to_frame(&spec.frame)
            };
            for id in index.range_query(&local)? {
                if let Some(obj) = self.objects.get(&id) {
                    if query.matches(obj) {
                        results.push(id);
                    }
                }
            }
        }
        Ok(results)
    }

    /// The batched fan-out path — see [`VpIndex::range_query_batch`].
    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        VpIndex::range_query_batch(self, queries)
    }

    /// Incremental kNN candidates: each partition answers the probe
    /// chain in its own frame through the sub-index's delta-ring path
    /// (the frame transform is deterministic, so a partition sees a
    /// consistent chain), unfiltered — the kNN driver evaluates every
    /// candidate's exact world-space distance itself.
    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        for (p, index) in self.indexes.iter().enumerate() {
            let local = self.query_in_frame(p, query);
            let local_covered = covered.map(|c| self.query_in_frame(p, c));
            out.extend(index.knn_candidates(&local, local_covered.as_ref())?);
        }
        Ok(out)
    }

    fn get_object(&self, id: ObjectId) -> IndexResult<Option<MovingObject>> {
        Ok(self.objects.get(&id).copied())
    }

    fn len(&self) -> usize {
        self.assignment.len()
    }

    fn io_stats(&self) -> IoStats {
        self.indexes
            .iter()
            .map(|i| i.io_stats())
            .fold(IoStats::zero(), |a, b| a + b)
    }

    fn reset_io_stats(&self) {
        for i in &self.indexes {
            i.reset_io_stats();
        }
    }

    fn flush_storage(&self) -> IndexResult<()> {
        for i in &self.indexes {
            i.flush_storage()?;
        }
        Ok(())
    }

    /// Publishes every sub-index's current state as its next committed
    /// snapshot epoch. [`VpIndex::apply_updates`] calls this
    /// automatically after each tick's WAL commit; call it manually
    /// after direct single-object mutations if snapshots should
    /// observe them before the next tick.
    fn publish_epoch(&self) {
        for i in &self.indexes {
            i.publish_epoch();
        }
    }
}

/// A point-in-time, read-only view of a [`VpIndex`]: per-partition
/// sub-index snapshots plus the world-space object table as of one
/// committed epoch.
///
/// Obtained via [`VpIndex::snapshot`]. Queries run against it with
/// **no tick coordination**: a concurrent [`VpIndex::apply_updates`]
/// on another thread neither blocks the snapshot's readers nor leaks
/// into their results — every query batch answers bit-identically to
/// the same batch against the (quiesced) live index at capture time.
/// The query hot path acquires no shared locks for pages resident at
/// capture; storage reclaims the page versions the snapshot pins once
/// it is dropped.
///
/// `VpSnapshot` also implements [`MovingObjectIndex`] (mutations
/// return [`IndexError::ReadOnly`]) so the incremental kNN driver
/// ([`crate::knn`]) and the benchmark harness run against snapshots
/// unchanged.
pub struct VpSnapshot<S> {
    specs: Vec<PartitionSpec>,
    indexes: Vec<S>,
    objects: Arc<HashMap<ObjectId, MovingObject>>,
    workers: usize,
}

impl<S: IndexSnapshot> VpSnapshot<S> {
    /// The query in partition `p`'s coordinate frame (identity for
    /// the outlier partition) — same transform as the live index.
    fn query_in_frame(&self, p: usize, query: &RangeQuery) -> RangeQuery {
        let spec = &self.specs[p];
        if spec.is_outlier {
            *query
        } else {
            query.to_frame(&spec.frame)
        }
    }

    /// Batched range queries with the same per-partition fan-out —
    /// and the same schedule-invariant, bit-identical results — as
    /// [`VpIndex::range_query_batch`], evaluated on the captured
    /// state.
    pub fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<BatchResults> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let parts = self.specs.len();
        let run = |p: usize| -> IndexResult<BatchResults> {
            let local: Vec<RangeQuery> =
                queries.iter().map(|q| self.query_in_frame(p, q)).collect();
            let candidates = self.indexes[p].range_query_batch(&local)?;
            let mut out: Vec<Vec<ObjectId>> = vec![Vec::new(); queries.len()];
            for (qi, ids) in candidates.into_iter().enumerate() {
                for id in ids {
                    if let Some(obj) = self.objects.get(&id) {
                        if queries[qi].matches(obj) {
                            out[qi].push(id);
                        }
                    }
                }
            }
            Ok(out)
        };
        let per_part: Vec<IndexResult<BatchResults>> = crate::fanout::lpt_fan_out(
            (0..parts).collect(),
            self.workers,
            |&p| self.indexes[p].len(),
            run,
        );
        let mut merged: Vec<Vec<ObjectId>> = vec![Vec::new(); queries.len()];
        for part in per_part {
            for (qi, ids) in part?.into_iter().enumerate() {
                merged[qi].extend(ids);
            }
        }
        Ok(merged)
    }

    /// Batched kNN over the captured state — same contract as
    /// [`VpIndex::knn_batch`].
    pub fn knn_batch(
        &self,
        queries: &[crate::knn::KnnQuery],
        domain: &Rect,
    ) -> IndexResult<Vec<Vec<crate::knn::Neighbor>>> {
        crate::knn::knn_batch(self, queries, domain, self.workers)
    }
}

impl<S: IndexSnapshot> MovingObjectIndex for VpSnapshot<S> {
    fn insert(&mut self, obj: MovingObject) -> IndexResult<()> {
        let _ = obj;
        Err(IndexError::ReadOnly("snapshot is read-only".into()))
    }

    fn delete(&mut self, id: ObjectId) -> IndexResult<()> {
        let _ = id;
        Err(IndexError::ReadOnly("snapshot is read-only".into()))
    }

    fn update(&mut self, obj: MovingObject) -> IndexResult<()> {
        let _ = obj;
        Err(IndexError::ReadOnly("snapshot is read-only".into()))
    }

    fn update_batch(&mut self, updates: &[MovingObject]) -> IndexResult<()> {
        let _ = updates;
        Err(IndexError::ReadOnly("snapshot is read-only".into()))
    }

    fn remove_batch(&mut self, ids: &[ObjectId]) -> IndexResult<()> {
        let _ = ids;
        Err(IndexError::ReadOnly("snapshot is read-only".into()))
    }

    /// Algorithm 3 on the captured state: query every partition in its
    /// own frame, merge, exact-filter in world space.
    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        let mut results = Vec::new();
        for (p, index) in self.indexes.iter().enumerate() {
            let local = self.query_in_frame(p, query);
            for id in index.range_query(&local)? {
                if let Some(obj) = self.objects.get(&id) {
                    if query.matches(obj) {
                        results.push(id);
                    }
                }
            }
        }
        Ok(results)
    }

    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        VpSnapshot::range_query_batch(self, queries)
    }

    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        for (p, index) in self.indexes.iter().enumerate() {
            let local = self.query_in_frame(p, query);
            let local_covered = covered.map(|c| self.query_in_frame(p, c));
            out.extend(index.knn_candidates(&local, local_covered.as_ref())?);
        }
        Ok(out)
    }

    fn get_object(&self, id: ObjectId) -> IndexResult<Option<MovingObject>> {
        Ok(self.objects.get(&id).copied())
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn io_stats(&self) -> IoStats {
        IoStats::zero()
    }

    fn reset_io_stats(&self) {}
}

impl<S: IndexSnapshot> IndexSnapshot for VpSnapshot<S> {
    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        MovingObjectIndex::range_query(self, query)
    }

    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        VpSnapshot::range_query_batch(self, queries)
    }

    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        MovingObjectIndex::knn_candidates(self, query, covered)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }
}

impl<I: SnapshotIndex> VpIndex<I> {
    /// Captures a point-in-time, read-only [`VpSnapshot`] of the whole
    /// partitioned index: one [`SnapshotIndex::snapshot`] per
    /// sub-index (pinning each at its last committed epoch) plus the
    /// world-space object table (an `Arc` bump — the live index
    /// copy-on-writes it under snapshots).
    ///
    /// Works on a read-only index too ([`Health::ReadOnly`] refuses
    /// mutations, not reads), so in-memory state stays queryable —
    /// and snapshot-queryable — through a demotion.
    pub fn snapshot(&self) -> IndexResult<VpSnapshot<I::Snapshot>> {
        let indexes = self
            .indexes
            .iter()
            .map(|i| i.snapshot())
            .collect::<IndexResult<Vec<_>>>()?;
        Ok(VpSnapshot {
            specs: self.specs.clone(),
            indexes,
            objects: Arc::clone(&self.objects),
            workers: self.config.tick_workers,
        })
    }
}

impl<I: SnapshotIndex + Send + Sync> SnapshotIndex for VpIndex<I> {
    type Snapshot = VpSnapshot<I::Snapshot>;

    fn snapshot(&self) -> IndexResult<Self::Snapshot> {
        VpIndex::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::VelocityAnalyzer;
    use crate::query::QueryRegion;
    use crate::traits::reference::ScanIndex;
    use vp_geom::{Circle, Point};

    fn sample() -> Vec<Point> {
        // Two roads at 0 and 90 degrees plus diagonal outliers.
        let mut pts = Vec::new();
        for i in 1..=300 {
            let s = 10.0 + (i % 90) as f64;
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            pts.push(Point::new(s * sign, (i % 5) as f64 * 0.2 - 0.4));
            pts.push(Point::new((i % 5) as f64 * 0.2 - 0.4, s * sign));
        }
        for i in 0..20 {
            pts.push(Point::new(40.0 + i as f64, 40.0 + i as f64));
        }
        pts
    }

    fn build_vp() -> VpIndex<ScanIndex> {
        build_vp_workers(1)
    }

    fn build_vp_workers(workers: usize) -> VpIndex<ScanIndex> {
        let cfg = VpConfig::default().with_tick_workers(workers);
        let analysis = VelocityAnalyzer::new(cfg.clone()).analyze(&sample());
        VpIndex::build(cfg, &analysis, |_spec| ScanIndex::new()).unwrap()
    }

    #[test]
    fn builds_k_plus_one_partitions() {
        let vp = build_vp();
        assert_eq!(vp.specs().len(), 3);
        assert_eq!(vp.dva_count(), 2);
        assert!(vp.specs()[2].is_outlier);
        assert!(vp.specs()[2].frame.is_identity());
        assert_eq!(vp.specs()[2].tau, f64::INFINITY);
        // DVA domains are the rotated world domain.
        assert!(vp.specs()[0].domain.area() >= vp.config.domain.area());
    }

    #[test]
    fn routes_by_direction_and_tau() {
        let vp = build_vp();
        // Identify which DVA is (near) horizontal.
        let horiz = (0..2)
            .min_by(|&a, &b| {
                vp.specs()[a]
                    .frame
                    .axis()
                    .y
                    .abs()
                    .total_cmp(&vp.specs()[b].frame.axis().y.abs())
            })
            .unwrap();
        let vert = 1 - horiz;
        assert_eq!(vp.choose_partition(Point::new(50.0, 0.05)), horiz);
        assert_eq!(vp.choose_partition(Point::new(-40.0, 0.0)), horiz);
        assert_eq!(vp.choose_partition(Point::new(0.05, 70.0)), vert);
        // Fast diagonal: far from both axes -> outlier.
        assert_eq!(vp.choose_partition(Point::new(60.0, 60.0)), 2);
    }

    #[test]
    fn insert_query_delete_round_trip() {
        let mut vp = build_vp();
        let objs = [
            MovingObject::new(
                1,
                Point::new(50_000.0, 50_000.0),
                Point::new(30.0, 0.1),
                0.0,
            ),
            MovingObject::new(
                2,
                Point::new(50_100.0, 50_000.0),
                Point::new(0.1, 30.0),
                0.0,
            ),
            MovingObject::new(
                3,
                Point::new(50_000.0, 50_100.0),
                Point::new(40.0, 40.0),
                0.0,
            ),
            MovingObject::new(
                4,
                Point::new(90_000.0, 90_000.0),
                Point::new(-30.0, 0.0),
                0.0,
            ),
        ];
        for o in objs {
            vp.insert(o).unwrap();
        }
        assert_eq!(vp.len(), 4);
        // Objects 1-3 are near (50k, 50k): a 300m circle finds them all,
        // regardless of partition.
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(50_000.0, 50_000.0), 300.0)),
            0.0,
        );
        let mut got = vp.range_query(&q).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);

        vp.delete(2).unwrap();
        let mut got = vp.range_query(&q).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
        assert!(matches!(vp.delete(2), Err(IndexError::UnknownObject(2))));
    }

    #[test]
    fn update_migrates_partitions() {
        let mut vp = build_vp();
        let o = MovingObject::new(
            7,
            Point::new(50_000.0, 50_000.0),
            Point::new(30.0, 0.0),
            0.0,
        );
        vp.insert(o).unwrap();
        let before = vp.partition_of(7).unwrap();
        // The object turns 90 degrees: must migrate to the other DVA.
        vp.update(MovingObject::new(
            7,
            Point::new(50_010.0, 50_000.0),
            Point::new(0.0, 30.0),
            1.0,
        ))
        .unwrap();
        let after = vp.partition_of(7).unwrap();
        assert_ne!(before, after);
        assert_eq!(vp.len(), 1);
        // Still findable by query after migration.
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(50_010.0, 50_000.0), 50.0)),
            1.0,
        );
        assert_eq!(vp.range_query(&q).unwrap(), vec![7]);
    }

    #[test]
    fn predictive_query_crosses_partitions() {
        let mut vp = build_vp();
        // Two objects converging on (60k, 50k) at t=100 from different
        // directions/partitions.
        vp.insert(MovingObject::new(
            1,
            Point::new(59_000.0, 50_000.0),
            Point::new(10.0, 0.0),
            0.0,
        ))
        .unwrap();
        vp.insert(MovingObject::new(
            2,
            Point::new(60_000.0, 49_000.0),
            Point::new(0.0, 10.0),
            0.0,
        ))
        .unwrap();
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(60_000.0, 50_000.0), 100.0)),
            100.0,
        );
        let mut got = vp.range_query(&q).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        // At t=0 neither matches.
        let q0 = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(60_000.0, 50_000.0), 100.0)),
            0.0,
        );
        assert!(vp.range_query(&q0).unwrap().is_empty());
    }

    #[test]
    fn matches_reference_index_on_random_workload() {
        let mut vp = build_vp();
        let mut reference = ScanIndex::new();
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64 / 1_000_000.0
        };
        for id in 0..500u64 {
            let pos = Point::new(next() * 100_000.0, next() * 100_000.0);
            let ang = next() * std::f64::consts::TAU;
            let speed = next() * 100.0;
            let vel = Point::new(ang.cos() * speed, ang.sin() * speed);
            let o = MovingObject::new(id, pos, vel, 0.0);
            vp.insert(o).unwrap();
            reference.insert(o).unwrap();
        }
        for qi in 0..50 {
            let center = Point::new(next() * 100_000.0, next() * 100_000.0);
            let t = (qi % 10) as f64 * 12.0;
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, 2_000.0)), t);
            let mut a = vp.range_query(&q).unwrap();
            let mut b = MovingObjectIndex::range_query(&reference, &q).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {qi} diverged");
        }
    }

    #[test]
    fn apply_updates_matches_looped_single_ops() {
        let mut batched = build_vp();
        let mut looped = build_vp();
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64 / 1_000_000.0
        };
        // Seed population.
        let mut objs = Vec::new();
        for id in 0..300u64 {
            let o = MovingObject::new(
                id,
                Point::new(next() * 100_000.0, next() * 100_000.0),
                Point::new(next() * 120.0 - 60.0, next() * 120.0 - 60.0),
                0.0,
            );
            batched.insert(o).unwrap();
            looped.insert(o).unwrap();
            objs.push(o);
        }
        // Several ticks: moves, direction changes (migrations), and
        // brand-new ids (upserts).
        for tick in 1..=4 {
            let t = tick as f64 * 10.0;
            let mut updates = Vec::new();
            for o in objs.iter_mut() {
                if o.id % 3 == tick % 3 {
                    let turn = o.id % 2 == 0;
                    let vel = if turn {
                        Point::new(-o.vel.y, o.vel.x)
                    } else {
                        o.vel
                    };
                    *o = MovingObject::new(o.id, o.position_at(t), vel, t);
                    updates.push(*o);
                }
            }
            let fresh = MovingObject::new(
                10_000 + tick,
                Point::new(next() * 100_000.0, next() * 100_000.0),
                Point::new(30.0, 0.5),
                t,
            );
            updates.push(fresh);
            objs.push(fresh);

            batched.apply_updates(&updates).unwrap();
            for u in &updates {
                if looped.get_object(u.id).unwrap().is_some() {
                    looped.update(*u).unwrap();
                } else {
                    looped.insert(*u).unwrap();
                }
            }

            assert_eq!(batched.len(), looped.len(), "tick {tick}");
            for o in &objs {
                assert_eq!(
                    batched.partition_of(o.id),
                    looped.partition_of(o.id),
                    "tick {tick}, object {}",
                    o.id
                );
            }
            let q = RangeQuery::time_slice(
                QueryRegion::Circle(Circle::new(Point::new(50_000.0, 50_000.0), 40_000.0)),
                t,
            );
            let mut a = batched.range_query(&q).unwrap();
            let mut b = looped.range_query(&q).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "tick {tick}");
        }
    }

    #[test]
    fn parallel_apply_updates_matches_sequential() {
        let mut sequential = build_vp_workers(1);
        let mut parallel = build_vp_workers(4);
        let mut state = 0xFEED_F00D_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64 / 1_000_000.0
        };
        for tick in 0..6 {
            let t = tick as f64 * 10.0;
            let updates: Vec<MovingObject> = (0..400u64)
                .map(|id| {
                    let ang = next() * std::f64::consts::TAU;
                    let speed = next() * 80.0;
                    MovingObject::new(
                        id,
                        Point::new(next() * 100_000.0, next() * 100_000.0),
                        Point::new(ang.cos() * speed, ang.sin() * speed),
                        t,
                    )
                })
                .collect();
            sequential.apply_updates(&updates).unwrap();
            parallel.apply_updates(&updates).unwrap();
        }
        assert_eq!(sequential.len(), parallel.len());
        for id in 0..400u64 {
            assert_eq!(
                sequential.partition_of(id),
                parallel.partition_of(id),
                "object {id} routed differently"
            );
            assert_eq!(
                sequential.get_object(id).unwrap(),
                parallel.get_object(id).unwrap()
            );
        }
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(50_000.0, 50_000.0), 30_000.0)),
            60.0,
        );
        let mut a = sequential.range_query(&q).unwrap();
        let mut b = parallel.range_query(&q).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_updates_last_write_wins() {
        let mut vp = build_vp();
        let a = MovingObject::new(
            1,
            Point::new(10_000.0, 10_000.0),
            Point::new(30.0, 0.0),
            0.0,
        );
        let b = MovingObject::new(
            1,
            Point::new(90_000.0, 90_000.0),
            Point::new(0.0, 30.0),
            0.0,
        );
        vp.apply_updates(&[a, b]).unwrap();
        assert_eq!(vp.len(), 1);
        let got = vp.get_object(1).unwrap().unwrap();
        assert_eq!(got.pos.x, 90_000.0);
        // Only the winning update's partition holds the object.
        let sizes = vp.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1);
    }

    fn query_batch(n: usize, seed: u64) -> Vec<RangeQuery> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64 / 1_000_000.0
        };
        (0..n)
            .map(|qi| {
                let c = Point::new(next() * 100_000.0, next() * 100_000.0);
                match qi % 3 {
                    0 => RangeQuery::time_slice(
                        QueryRegion::Circle(Circle::new(c, 2_000.0 + next() * 8_000.0)),
                        (qi % 6) as f64 * 10.0,
                    ),
                    1 => RangeQuery::time_interval(
                        QueryRegion::Rect(vp_geom::Rect::centered(c, 9_000.0, 6_000.0)),
                        5.0,
                        40.0,
                    ),
                    _ => RangeQuery::moving(
                        QueryRegion::Circle(Circle::new(c, 4_000.0)),
                        Point::new(next() * 40.0 - 20.0, 15.0),
                        0.0,
                        30.0,
                    ),
                }
            })
            .collect()
    }

    fn populated_vp(workers: usize, seed: u64) -> VpIndex<ScanIndex> {
        let mut vp = build_vp_workers(workers);
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64 / 1_000_000.0
        };
        let objs: Vec<MovingObject> = (0..600u64)
            .map(|id| {
                let ang = next() * std::f64::consts::TAU;
                let speed = next() * 90.0;
                MovingObject::new(
                    id,
                    Point::new(next() * 100_000.0, next() * 100_000.0),
                    Point::new(ang.cos() * speed, ang.sin() * speed),
                    0.0,
                )
            })
            .collect();
        vp.apply_updates(&objs).unwrap();
        vp
    }

    #[test]
    fn range_query_batch_matches_looped_queries() {
        let vp = populated_vp(1, 0xFA7B);
        let queries = query_batch(30, 0x0B47);
        let batched = vp.range_query_batch(&queries).unwrap();
        assert_eq!(batched.len(), queries.len());
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(batched[qi], vp.range_query(q).unwrap(), "query {qi}");
        }
        assert!(
            batched.iter().any(|r| !r.is_empty()),
            "batch should have matches"
        );
        assert!(vp.range_query_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn parallel_range_query_batch_is_bit_identical() {
        let sequential = populated_vp(1, 0xFA7B);
        let parallel = populated_vp(4, 0xFA7B);
        let queries = query_batch(40, 0x77);
        let a = sequential.range_query_batch(&queries).unwrap();
        let b = parallel.range_query_batch(&queries).unwrap();
        assert_eq!(a, b, "worker count must not change any result or order");
    }

    #[test]
    fn knn_batch_matches_looped_knn() {
        use crate::knn::{knn_at, KnnQuery};
        let vp = populated_vp(3, 0x5EED7);
        let domain = vp.config().domain;
        let queries: Vec<KnnQuery> = (0..12)
            .map(|i| KnnQuery {
                center: Point::new(
                    10_000.0 + (i as f64) * 7_000.0,
                    90_000.0 - (i as f64) * 6_500.0,
                ),
                k: 1 + i % 7,
                t: (i % 4) as f64 * 15.0,
            })
            .collect();
        let batched = vp.knn_batch(&queries, &domain).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let looped = knn_at(&vp, q.center, q.k, q.t, &domain).unwrap();
            assert_eq!(batched[i], looped, "knn query {i}");
            assert_eq!(batched[i].len(), q.k.min(vp.len()), "knn query {i} arity");
        }
    }

    #[test]
    fn snapshot_isolated_from_later_ticks_and_read_only() {
        let mut vp = populated_vp(2, 0xBEEF);
        let queries = query_batch(25, 0xABC);
        let baseline = vp.range_query_batch(&queries).unwrap();
        let domain = vp.config().domain;
        let knn_queries: Vec<crate::knn::KnnQuery> = (0..6)
            .map(|i| crate::knn::KnnQuery {
                center: Point::new(20_000.0 + i as f64 * 12_000.0, 50_000.0),
                k: 3 + i,
                t: 10.0,
            })
            .collect();
        let knn_baseline = vp.knn_batch(&knn_queries, &domain).unwrap();

        let snap = vp.snapshot().unwrap();
        assert_eq!(MovingObjectIndex::len(&snap), vp.len());

        // Tick the live index forward and mutate it; the snapshot must
        // keep answering from the captured state.
        let moved: Vec<MovingObject> = (0..600u64)
            .filter_map(|id| vp.get_object(id).unwrap())
            .map(|o| MovingObject::new(o.id, o.position_at(50.0), o.vel, 50.0))
            .collect();
        vp.apply_updates(&moved).unwrap();
        vp.delete(0).unwrap();

        assert_eq!(snap.range_query_batch(&queries).unwrap(), baseline);
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                MovingObjectIndex::range_query(&snap, q).unwrap(),
                baseline[qi],
                "query {qi}"
            );
        }
        assert_eq!(snap.knn_batch(&knn_queries, &domain).unwrap(), knn_baseline);
        assert_eq!(snap.get_object(0).unwrap().map(|o| o.id), Some(0));

        // Snapshots refuse mutations.
        let mut snap = snap;
        let o = MovingObject::new(7_777, Point::new(1.0, 1.0), Point::ZERO, 0.0);
        assert!(matches!(snap.insert(o), Err(IndexError::ReadOnly(_))));
        assert!(matches!(snap.delete(1), Err(IndexError::ReadOnly(_))));
        assert!(matches!(snap.update(o), Err(IndexError::ReadOnly(_))));
        assert!(matches!(
            snap.update_batch(&[o]),
            Err(IndexError::ReadOnly(_))
        ));
        assert!(matches!(
            snap.remove_batch(&[1]),
            Err(IndexError::ReadOnly(_))
        ));

        // A fresh snapshot observes the post-tick state.
        let snap2 = vp.snapshot().unwrap();
        assert_eq!(
            snap2.range_query_batch(&queries).unwrap(),
            vp.range_query_batch(&queries).unwrap()
        );
    }

    #[test]
    fn snapshot_readable_while_writer_thread_ticks() {
        let mut vp = populated_vp(2, 0x0DDB);
        let queries = query_batch(10, 0x515);
        let baseline = vp.range_query_batch(&queries).unwrap();
        let snap = vp.snapshot().unwrap();

        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..10 {
                    assert_eq!(snap.range_query_batch(&queries).unwrap(), baseline);
                }
            });
            for round in 1..=4 {
                let at = round as f64 * 15.0;
                let moved: Vec<MovingObject> = (0..600u64)
                    .filter_map(|id| vp.get_object(id).unwrap())
                    .map(|o| MovingObject::new(o.id, o.position_at(at), o.vel, at))
                    .collect();
                vp.apply_updates(&moved).unwrap();
            }
        });
        assert_eq!(vp.len(), 600);
    }

    #[test]
    fn refresh_tau_tracks_speed_drift() {
        let mut vp = build_vp();
        let tau0 = vp.specs()[0].tau;
        // Feed many inserts whose perpendicular speeds are tiny: τ should
        // tighten (or at least not blow up) after refresh.
        for id in 0..2000u64 {
            let o = MovingObject::new(
                id,
                Point::new(50_000.0, 50_000.0),
                Point::new(20.0 + (id % 50) as f64, 0.01),
                0.0,
            );
            vp.insert(o).unwrap();
        }
        let taus = vp.refresh_tau().unwrap();
        assert_eq!(taus.len(), 2);
        let tau1 = vp.specs()[0].tau.min(vp.specs()[1].tau);
        assert!(tau1.is_finite());
        // With a nearly perfectly 1-D feed, τ should not exceed the
        // original by much.
        assert!(tau1 <= tau0.max(1.0) * 4.0);
    }

    #[test]
    fn build_rejects_empty_analysis() {
        let cfg = VpConfig::default();
        let analysis = VelocityAnalyzer::new(cfg.clone()).analyze(&[]);
        let r: IndexResult<VpIndex<ScanIndex>> =
            VpIndex::build(cfg, &analysis, |_s| ScanIndex::new());
        assert!(matches!(r, Err(IndexError::Config(_))));
    }
}
