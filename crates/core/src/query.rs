//! Range query types.
//!
//! The paper supports three range query flavors (Section 2.1), all
//! represented by [`RangeQuery`]:
//!
//! * **time slice** — `t_start == t_end`: report objects inside the
//!   region at one (possibly future) timestamp;
//! * **time interval** — `t_start < t_end`, zero query velocity;
//! * **moving range** — the region itself translates with `velocity`.
//!
//! Regions are circles (the paper's default; used by the kNN filter
//! step) or rectangles.

use vp_geom::{Circle, Frame, MovingCircle, MovingRect, Point, Rect, Tpbr, Vbr, Vec2};

use crate::object::MovingObject;

/// The spatial shape of a range query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRegion {
    /// Circular range (center, radius).
    Circle(Circle),
    /// Rectangular range.
    Rect(Rect),
}

impl QueryRegion {
    /// The axis-aligned bounding rectangle of the region.
    pub fn bounding_rect(&self) -> Rect {
        match self {
            QueryRegion::Circle(c) => c.bounding_rect(),
            QueryRegion::Rect(r) => *r,
        }
    }

    /// True when the region contains `p`.
    pub fn contains_point(&self, p: Point) -> bool {
        match self {
            QueryRegion::Circle(c) => c.contains_point(p),
            QueryRegion::Rect(r) => r.contains_point(p),
        }
    }

    /// True when the region contains the whole rectangle (used by
    /// incremental kNN to prune subtrees already swept by an earlier,
    /// smaller probe — see
    /// [`crate::traits::MovingObjectIndex::knn_candidates`]). Both
    /// shapes are convex, so corner containment suffices.
    pub fn contains_rect(&self, r: &Rect) -> bool {
        match self {
            QueryRegion::Circle(c) => r.corners().iter().all(|p| c.contains_point(*p)),
            QueryRegion::Rect(outer) => outer.contains_rect(r),
        }
    }
}

/// A (possibly predictive, possibly moving) range query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// The query region, valid at `region_ref_time`.
    pub region: QueryRegion,
    /// Velocity of the region (zero for static queries).
    pub velocity: Vec2,
    /// Time at which `region` is anchored.
    pub region_ref_time: f64,
    /// Start of the query time window.
    pub t_start: f64,
    /// End of the query time window (equal to `t_start` for time slice
    /// queries).
    pub t_end: f64,
}

impl RangeQuery {
    /// A time slice query: objects inside `region` at time `t`.
    pub fn time_slice(region: QueryRegion, t: f64) -> RangeQuery {
        RangeQuery {
            region,
            velocity: Point::ZERO,
            region_ref_time: t,
            t_start: t,
            t_end: t,
        }
    }

    /// A time interval query: objects inside the static `region` at any
    /// time in `[t1, t2]`.
    pub fn time_interval(region: QueryRegion, t1: f64, t2: f64) -> RangeQuery {
        debug_assert!(t2 >= t1);
        RangeQuery {
            region,
            velocity: Point::ZERO,
            region_ref_time: t1,
            t_start: t1,
            t_end: t2,
        }
    }

    /// A moving range query: the region translates with `velocity`
    /// (anchored at `t1`); objects intersecting it at any time in
    /// `[t1, t2]` are reported.
    pub fn moving(region: QueryRegion, velocity: Vec2, t1: f64, t2: f64) -> RangeQuery {
        debug_assert!(t2 >= t1);
        RangeQuery {
            region,
            velocity,
            region_ref_time: t1,
            t_start: t1,
            t_end: t2,
        }
    }

    /// True for time slice queries.
    #[inline]
    pub fn is_time_slice(&self) -> bool {
        self.t_start == self.t_end
    }

    /// The time-parameterized bounding rectangle of the query region —
    /// what tree traversals prune against.
    pub fn tpbr(&self) -> Tpbr {
        Tpbr::new(
            self.region.bounding_rect(),
            Vbr::from_velocity(self.velocity),
            self.region_ref_time,
        )
    }

    /// Exact predicate: does this query match the given moving object?
    /// This is the authoritative filter applied to leaf entries (and by
    /// the VP manager after frame transformation, Algorithm 3 line 8).
    pub fn matches(&self, obj: &MovingObject) -> bool {
        match self.region {
            QueryRegion::Circle(c) => MovingCircle::new(c, self.velocity, self.region_ref_time)
                .contains_moving_point_during(
                    obj.pos,
                    obj.vel,
                    obj.ref_time,
                    self.t_start,
                    self.t_end,
                ),
            QueryRegion::Rect(r) => MovingRect::new(r, self.velocity, self.region_ref_time)
                .contains_moving_point_during(
                    obj.pos,
                    obj.vel,
                    obj.ref_time,
                    self.t_start,
                    self.t_end,
                ),
        }
    }

    /// The query expressed in a DVA coordinate frame: the region is
    /// transformed and bounded by an axis-aligned *rectangle* in frame
    /// space (circles stay circles under rotation; rectangles get their
    /// rotated corners bounded — Algorithm 3, lines 3–4). The result is
    /// a conservative superset query; exact filtering happens in world
    /// space via [`RangeQuery::matches`].
    pub fn to_frame(&self, frame: &Frame) -> RangeQuery {
        let region = match self.region {
            QueryRegion::Circle(c) => {
                // Rotation preserves circles exactly.
                QueryRegion::Circle(Circle::new(frame.to_frame(c.center), c.radius))
            }
            QueryRegion::Rect(r) => QueryRegion::Rect(frame.rect_to_frame_mbr(&r)),
        };
        RangeQuery {
            region,
            velocity: frame.vel_to_frame(self.velocity),
            region_ref_time: self.region_ref_time,
            t_start: self.t_start,
            t_end: self.t_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(x: f64, y: f64, vx: f64, vy: f64, t: f64) -> MovingObject {
        MovingObject::new(1, Point::new(x, y), Point::new(vx, vy), t)
    }

    #[test]
    fn time_slice_circle_matches() {
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(0.0, 0.0), 5.0)),
            10.0,
        );
        assert!(q.is_time_slice());
        // Object at (20, 0) at t=0 moving left at 2: at t=10 it is at 0.
        assert!(q.matches(&obj(20.0, 0.0, -2.0, 0.0, 0.0)));
        // Same object queried at its start position: outside.
        let q0 = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(0.0, 0.0), 5.0)),
            0.0,
        );
        assert!(!q0.matches(&obj(20.0, 0.0, -2.0, 0.0, 0.0)));
    }

    #[test]
    fn time_interval_rect_matches() {
        let q = RangeQuery::time_interval(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 10.0, 10.0)),
            0.0,
            5.0,
        );
        // Passes through the rect during [0,5].
        assert!(q.matches(&obj(-5.0, 5.0, 2.0, 0.0, 0.0)));
        // Reaches the rect only after t=5.
        assert!(!q.matches(&obj(-20.0, 5.0, 2.0, 0.0, 0.0)));
    }

    #[test]
    fn moving_query_matches() {
        // Query circle chasing an object moving the same way never
        // catches it; chasing faster does.
        let region = QueryRegion::Circle(Circle::new(Point::new(0.0, 0.0), 1.0));
        let slow = RangeQuery::moving(region, Point::new(1.0, 0.0), 0.0, 100.0);
        let fast = RangeQuery::moving(region, Point::new(3.0, 0.0), 0.0, 100.0);
        let target = obj(10.0, 0.0, 1.0, 0.0, 0.0);
        assert!(!slow.matches(&target));
        assert!(fast.matches(&target));
    }

    #[test]
    fn tpbr_bounds_region() {
        let q = RangeQuery::moving(
            QueryRegion::Circle(Circle::new(Point::new(5.0, 5.0), 2.0)),
            Point::new(1.0, 0.0),
            1.0,
            3.0,
        );
        let b = q.tpbr();
        assert_eq!(b.rect, Rect::from_bounds(3.0, 3.0, 7.0, 7.0));
        assert_eq!(b.ref_time, 1.0);
        assert_eq!(b.vbr.hi, Point::new(1.0, 0.0));
    }

    #[test]
    fn frame_transform_is_conservative() {
        // A rotated query matched in world space must also be matched by
        // the frame-space query against the frame-space object.
        let frame = Frame::new(Point::new(1.0, 1.0), Point::new(50.0, 50.0));
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(40.0, 40.0, 60.0, 60.0)),
            4.0,
        );
        let qf = q.to_frame(&frame);
        for (x, y) in [(45.0, 45.0), (41.0, 59.0), (59.0, 41.0)] {
            let o = obj(x, y, 0.5, -0.5, 4.0);
            if q.matches(&o) {
                assert!(
                    qf.matches(&o.to_frame(&frame)),
                    "not conservative at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn circle_stays_exact_under_rotation() {
        // For circles, the frame query is exact (not just conservative):
        // matches in frame space iff matches in world space.
        let frame = Frame::new(Point::new(2.0, 1.0), Point::new(10.0, 10.0));
        // Radius chosen so no integer-lattice point sits exactly on the
        // boundary (rotation would make such ties float-order dependent).
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(12.0, 9.0), 2.75)),
            0.0,
        );
        let qf = q.to_frame(&frame);
        for i in 0..100 {
            let x = 6.0 + (i % 10) as f64;
            let y = 5.0 + (i / 10) as f64;
            let o = obj(x, y, 0.0, 0.0, 0.0);
            assert_eq!(q.matches(&o), qf.matches(&o.to_frame(&frame)), "({x},{y})");
        }
    }
}
