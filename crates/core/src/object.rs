//! Moving object representation.
//!
//! Following the linear model used by the paper (Section 2.1), a moving
//! object is a point with a position sampled at a reference time and a
//! velocity vector; its predicted position at time `t` is
//! `pos + vel * (t - ref_time)`. Objects issue updates when their
//! velocity changes, which indexes process as a delete followed by an
//! insert.

use vp_geom::{Frame, Point, Vec2};

/// Unique identifier of a moving object.
pub type ObjectId = u64;

/// A moving point: position at `ref_time` plus a constant velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingObject {
    pub id: ObjectId,
    /// Position at `ref_time`.
    pub pos: Point,
    /// Velocity (distance units per timestamp).
    pub vel: Vec2,
    /// Time at which `pos` was sampled.
    pub ref_time: f64,
}

impl MovingObject {
    /// Creates a moving object.
    #[inline]
    pub fn new(id: ObjectId, pos: Point, vel: Vec2, ref_time: f64) -> Self {
        MovingObject {
            id,
            pos,
            vel,
            ref_time,
        }
    }

    /// Predicted position at absolute time `t` under the linear model.
    #[inline]
    pub fn position_at(&self, t: f64) -> Point {
        self.pos.advance(self.vel, t - self.ref_time)
    }

    /// Current speed (velocity magnitude).
    #[inline]
    pub fn speed(&self) -> f64 {
        self.vel.norm()
    }

    /// The same object expressed in a DVA coordinate [`Frame`]:
    /// position and velocity rotated into the frame, id and reference
    /// time unchanged.
    pub fn to_frame(&self, frame: &Frame) -> MovingObject {
        MovingObject {
            id: self.id,
            pos: frame.to_frame(self.pos),
            vel: frame.vel_to_frame(self.vel),
            ref_time: self.ref_time,
        }
    }

    /// Inverse of [`MovingObject::to_frame`].
    pub fn from_frame(&self, frame: &Frame) -> MovingObject {
        MovingObject {
            id: self.id,
            pos: frame.from_frame(self.pos),
            vel: frame.vel_from_frame(self.vel),
            ref_time: self.ref_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_extrapolates() {
        let o = MovingObject::new(1, Point::new(10.0, 20.0), Point::new(2.0, -1.0), 5.0);
        assert_eq!(o.position_at(5.0), Point::new(10.0, 20.0));
        assert_eq!(o.position_at(8.0), Point::new(16.0, 17.0));
        assert_eq!(o.position_at(3.0), Point::new(6.0, 22.0));
        assert!((o.speed() - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn frame_round_trip_preserves_trajectory() {
        let o = MovingObject::new(9, Point::new(100.0, 50.0), Point::new(3.0, 4.0), 2.0);
        let f = Frame::new(Point::new(1.0, 1.0), Point::new(500.0, 500.0));
        let of = o.to_frame(&f);
        let back = of.from_frame(&f);
        assert!((back.pos.x - o.pos.x).abs() < 1e-9);
        assert!((back.vel.y - o.vel.y).abs() < 1e-9);
        // The frame-space trajectory is the transform of the world
        // trajectory at every time.
        for t in [2.0, 4.0, 10.0] {
            let world = o.position_at(t);
            let framed = of.position_at(t);
            let expect = f.to_frame(world);
            assert!((framed.x - expect.x).abs() < 1e-9);
            assert!((framed.y - expect.y).abs() < 1e-9);
        }
    }
}
