//! Tick-structured scenario generators for standing-query workloads.
//!
//! The [`generator`](crate::generator) module reproduces the paper's
//! *benchmark* traces (time-sorted update/query event streams). The
//! subscription engine instead consumes whole **ticks** — atomic
//! batches of re-reports — and cares about *where the action is*:
//! events per tick are driven by how much of the population churns
//! near the registered regions. The three scenarios here are the
//! ROADMAP's named workload shapes:
//!
//! * [`ScenarioKind::Hotspot`] — a skewed steady state: most objects
//!   orbit a handful of fixed attraction centers, the rest drift
//!   uniformly. Subscriptions on the centers see high churn;
//!   elsewhere, near none.
//! * [`ScenarioKind::FlashCrowd`] — a non-stationary ramp: objects
//!   start uniform, and tick by tick a growing fraction turns toward
//!   one rally point, so density (and event rate) there explodes over
//!   the run.
//! * [`ScenarioKind::RoadGrid`] — road-network-like correlated
//!   velocities: objects ride an axis-aligned grid of roads, so the
//!   velocity distribution concentrates on two dominant directions
//!   (the shape velocity partitioning exploits).
//!
//! Traces are fully materialized and deterministic per seed: tick 0
//! is the initial population (reference time 0), tick `i` re-reports
//! every object at time `i × tick_interval`. Each scenario also
//! suggests [`focus`](ScenarioTrace::focus) points — the natural
//! places to register subscriptions (hotspot centers, the rally
//! point, busy junctions).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vp_core::MovingObject;
use vp_geom::{Point, Rect};

/// Which workload shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Skewed steady state around fixed attraction centers.
    Hotspot,
    /// Population converging on one rally point over the run.
    FlashCrowd,
    /// Axis-aligned road grid with two dominant travel directions.
    RoadGrid,
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioKind::Hotspot => write!(f, "hotspot"),
            ScenarioKind::FlashCrowd => write!(f, "flash-crowd"),
            ScenarioKind::RoadGrid => write!(f, "road-grid"),
        }
    }
}

/// Generation parameters (defaults sized for tests; benches scale up).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Population size.
    pub n_objects: usize,
    /// Number of re-report ticks after the initial population.
    pub n_ticks: usize,
    /// Timestamps between consecutive ticks.
    pub tick_interval: f64,
    /// Maximum object speed in units/ts.
    pub max_speed: f64,
    /// Master seed; same seed → byte-identical trace.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_objects: 2_000,
            n_ticks: 10,
            tick_interval: 10.0,
            max_speed: 100.0,
            seed: 0x5CEA7,
        }
    }
}

/// A fully materialized scenario trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrace {
    /// The shape this trace was generated from.
    pub kind: ScenarioKind,
    /// The data domain every position stays inside.
    pub domain: Rect,
    /// `ticks[0]`: the initial population at reference time 0;
    /// `ticks[i]`: every object's re-report at time
    /// `i × tick_interval`. Each batch is ascending by object id.
    pub ticks: Vec<Vec<MovingObject>>,
    /// Where the action is — suggested subscription centers.
    pub focus: Vec<Point>,
}

impl ScenarioTrace {
    /// The time of tick `i` under the config that produced this trace.
    pub fn tick_time(&self, i: usize) -> f64 {
        self.ticks
            .get(i)
            .and_then(|b| b.first())
            .map_or(0.0, |o| o.ref_time)
    }
}

const DOMAIN_SIDE: f64 = 100_000.0;
/// Fraction of the hotspot population bound to a center.
const HOTSPOT_CLUSTERED: f64 = 0.7;
const HOTSPOT_CENTERS: usize = 4;

/// Generates the trace for one scenario shape.
pub fn generate(kind: ScenarioKind, cfg: &ScenarioConfig) -> ScenarioTrace {
    let domain = Rect::from_bounds(0.0, 0.0, DOMAIN_SIDE, DOMAIN_SIDE);
    match kind {
        ScenarioKind::Hotspot => hotspot(cfg, domain),
        ScenarioKind::FlashCrowd => flash_crowd(cfg, domain),
        ScenarioKind::RoadGrid => road_grid(cfg, domain),
    }
}

/// ~N(0,1) from three uniforms (Irwin–Hall, rescaled) — close enough
/// for cluster shapes and cheap in the rand shim.
fn gaussish(rng: &mut StdRng) -> f64 {
    let s: f64 = rng.random_range(0.0..1.0)
        + rng.random_range(0.0..1.0)
        + rng.random_range(0.0..1.0);
    (s - 1.5) * 2.0
}

fn clamp_to(domain: &Rect, p: Point) -> Point {
    Point::new(
        p.x.clamp(domain.lo.x, domain.hi.x),
        p.y.clamp(domain.lo.y, domain.hi.y),
    )
}

fn hotspot(cfg: &ScenarioConfig, domain: Rect) -> ScenarioTrace {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1407_5707);
    let side = domain.hi.x - domain.lo.x;
    // Fixed centers on a deterministic diagonal-ish layout.
    let focus: Vec<Point> = (0..HOTSPOT_CENTERS)
        .map(|i| {
            Point::new(
                domain.lo.x + side * (0.2 + 0.6 * i as f64 / (HOTSPOT_CENTERS - 1) as f64),
                domain.lo.y + side * (0.8 - 0.6 * i as f64 / (HOTSPOT_CENTERS - 1) as f64),
            )
        })
        .collect();
    let sigma = side * 0.03;
    let n_clustered = (cfg.n_objects as f64 * HOTSPOT_CLUSTERED) as usize;

    // Per-object home: Some(center) for clustered, None for drifters.
    let homes: Vec<Option<Point>> = (0..cfg.n_objects)
        .map(|i| {
            if i < n_clustered {
                Some(focus[rng.random_range(0..focus.len())])
            } else {
                None
            }
        })
        .collect();

    let mut positions: Vec<Point> = homes
        .iter()
        .map(|home| match home {
            Some(c) => clamp_to(
                &domain,
                Point::new(c.x + gaussish(&mut rng) * sigma, c.y + gaussish(&mut rng) * sigma),
            ),
            None => Point::new(
                rng.random_range(domain.lo.x..=domain.hi.x),
                rng.random_range(domain.lo.y..=domain.hi.y),
            ),
        })
        .collect();

    let mut ticks: Vec<Vec<MovingObject>> = Vec::with_capacity(cfg.n_ticks + 1);
    for tick in 0..=cfg.n_ticks {
        let t = tick as f64 * cfg.tick_interval;
        let mut batch = Vec::with_capacity(cfg.n_objects);
        for (id, home) in homes.iter().enumerate() {
            if tick > 0 {
                // Advance along the previous report's velocity.
                let prev = ticks[tick - 1][id];
                positions[id] =
                    clamp_to(&domain, prev.pos.advance(prev.vel, cfg.tick_interval));
            }
            let pos = positions[id];
            let vel = match home {
                Some(c) => {
                    // Steer toward a jittered point near home: orbiting
                    // churn that keeps the cluster tight.
                    let target = Point::new(
                        c.x + gaussish(&mut rng) * sigma,
                        c.y + gaussish(&mut rng) * sigma,
                    );
                    let d = pos.dist(target).max(1e-9);
                    // Cap at exact arrival by the next tick so the
                    // cluster stays `sigma`-tight at any tick length.
                    let speed = (rng.random_range(0.2..=1.0f64) * cfg.max_speed)
                        .min(d / cfg.tick_interval.max(1e-9));
                    (target - pos) / d * speed
                }
                None => {
                    let ang = rng.random_range(0.0..std::f64::consts::TAU);
                    let speed = rng.random_range(0.05..=1.0) * cfg.max_speed;
                    Point::new(ang.cos() * speed, ang.sin() * speed)
                }
            };
            batch.push(MovingObject::new(id as u64, pos, vel, t));
        }
        ticks.push(batch);
    }
    ScenarioTrace {
        kind: ScenarioKind::Hotspot,
        domain,
        ticks,
        focus,
    }
}

fn flash_crowd(cfg: &ScenarioConfig, domain: Rect) -> ScenarioTrace {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1A5_4C20);
    let side = domain.hi.x - domain.lo.x;
    let rally = Point::new(domain.lo.x + side * 0.5, domain.lo.y + side * 0.5);

    let mut positions: Vec<Point> = (0..cfg.n_objects)
        .map(|_| {
            Point::new(
                rng.random_range(domain.lo.x..=domain.hi.x),
                rng.random_range(domain.lo.y..=domain.hi.y),
            )
        })
        .collect();
    // Objects join the crowd in a deterministic-per-object order: the
    // lower the draw, the earlier they turn toward the rally point.
    let join_at: Vec<f64> = (0..cfg.n_objects)
        .map(|_| rng.random_range(0.0..1.0))
        .collect();

    let mut ticks: Vec<Vec<MovingObject>> = Vec::with_capacity(cfg.n_ticks + 1);
    for tick in 0..=cfg.n_ticks {
        let t = tick as f64 * cfg.tick_interval;
        // Ramp: by the last tick (almost) everyone has joined.
        let progress = if cfg.n_ticks == 0 {
            0.0
        } else {
            tick as f64 / cfg.n_ticks as f64
        };
        let mut batch = Vec::with_capacity(cfg.n_objects);
        for id in 0..cfg.n_objects {
            if tick > 0 {
                let prev = ticks[tick - 1][id];
                positions[id] =
                    clamp_to(&domain, prev.pos.advance(prev.vel, cfg.tick_interval));
            }
            let pos = positions[id];
            let vel = if join_at[id] < progress {
                // Converge: rush straight for the rally point at full
                // speed, braking on arrival so the crowd stays dense.
                let d = pos.dist(rally);
                let speed = cfg.max_speed.min(d / cfg.tick_interval.max(1e-9));
                if d > 1e-9 {
                    (rally - pos) / d * speed
                } else {
                    Point::ZERO
                }
            } else {
                let ang = rng.random_range(0.0..std::f64::consts::TAU);
                let speed = rng.random_range(0.05..=1.0) * cfg.max_speed;
                Point::new(ang.cos() * speed, ang.sin() * speed)
            };
            batch.push(MovingObject::new(id as u64, pos, vel, t));
        }
        ticks.push(batch);
    }
    ScenarioTrace {
        kind: ScenarioKind::FlashCrowd,
        domain,
        ticks,
        focus: vec![rally],
    }
}

const ROAD_LINES: usize = 16;
/// Per-tick probability of turning at the nearest junction.
const TURN_PROB: f64 = 0.25;

fn road_grid(cfg: &ScenarioConfig, domain: Rect) -> ScenarioTrace {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x60AD_6E1D);
    let side = domain.hi.x - domain.lo.x;
    let spacing = side / ROAD_LINES as f64;
    let line = |i: usize| domain.lo.x + (i as f64 + 0.5) * spacing;

    // State per object: horizontal? (moving along x), the cross-axis
    // line it rides, direction, position along the road.
    let mut horizontal: Vec<bool> = (0..cfg.n_objects).map(|_| rng.random::<bool>()).collect();
    let mut dir: Vec<f64> = (0..cfg.n_objects)
        .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let mut positions: Vec<Point> = (0..cfg.n_objects)
        .map(|i| {
            let on = line(rng.random_range(0..ROAD_LINES));
            let along = rng.random_range(domain.lo.x..=domain.hi.x);
            if horizontal[i] {
                Point::new(along, on)
            } else {
                Point::new(on, along)
            }
        })
        .collect();

    let nearest_line = |v: f64| {
        let i = ((v - domain.lo.x) / spacing - 0.5).round().clamp(0.0, (ROAD_LINES - 1) as f64);
        domain.lo.x + (i + 0.5) * spacing
    };

    let mut ticks: Vec<Vec<MovingObject>> = Vec::with_capacity(cfg.n_ticks + 1);
    for tick in 0..=cfg.n_ticks {
        let t = tick as f64 * cfg.tick_interval;
        let mut batch = Vec::with_capacity(cfg.n_objects);
        for id in 0..cfg.n_objects {
            if tick > 0 {
                let prev = ticks[tick - 1][id];
                let mut p = prev.pos.advance(prev.vel, cfg.tick_interval);
                // Bounce off the domain border: reverse travel.
                if p.x < domain.lo.x || p.x > domain.hi.x || p.y < domain.lo.y || p.y > domain.hi.y
                {
                    dir[id] = -dir[id];
                    p = clamp_to(&domain, p);
                }
                positions[id] = p;
                // Turn at (the nearest) junction with fixed chance:
                // swap travel axis, snap onto the crossing road.
                if rng.random_range(0.0..1.0) < TURN_PROB {
                    horizontal[id] = !horizontal[id];
                    dir[id] = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    positions[id] =
                        Point::new(nearest_line(positions[id].x), nearest_line(positions[id].y));
                }
            }
            let speed = rng.random_range(0.2..=1.0) * cfg.max_speed;
            let vel = if horizontal[id] {
                Point::new(dir[id] * speed, 0.0)
            } else {
                Point::new(0.0, dir[id] * speed)
            };
            batch.push(MovingObject::new(id as u64, positions[id], vel, t));
        }
        ticks.push(batch);
    }
    // Busy junctions: the central crossings.
    let mid = ROAD_LINES / 2;
    let focus = vec![
        Point::new(line(mid), line(mid)),
        Point::new(line(mid / 2), line(mid + mid / 2)),
    ];
    ScenarioTrace {
        kind: ScenarioKind::RoadGrid,
        domain,
        ticks,
        focus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ScenarioConfig {
        ScenarioConfig {
            n_objects: 800,
            n_ticks: 10,
            // Long ticks: enough travel budget for the flash crowd to
            // actually reach the rally point within the run.
            tick_interval: 100.0,
            ..ScenarioConfig::default()
        }
    }

    const ALL: [ScenarioKind; 3] = [
        ScenarioKind::Hotspot,
        ScenarioKind::FlashCrowd,
        ScenarioKind::RoadGrid,
    ];

    #[test]
    fn traces_are_deterministic_per_seed() {
        // Same seed → byte-identical streams; different seed → not.
        for kind in ALL {
            let a = generate(kind, &small_cfg());
            let b = generate(kind, &small_cfg());
            assert_eq!(a, b, "{kind}: same seed must reproduce exactly");
            let c = generate(
                kind,
                &ScenarioConfig {
                    seed: 0xD1FF,
                    ..small_cfg()
                },
            );
            assert_ne!(a.ticks, c.ticks, "{kind}: different seed, same trace");
        }
    }

    #[test]
    fn traces_are_well_formed() {
        for kind in ALL {
            let cfg = small_cfg();
            let w = generate(kind, &cfg);
            assert_eq!(w.ticks.len(), cfg.n_ticks + 1);
            assert!(!w.focus.is_empty());
            for (i, batch) in w.ticks.iter().enumerate() {
                assert_eq!(batch.len(), cfg.n_objects, "{kind}: tick {i} size");
                let t = i as f64 * cfg.tick_interval;
                for pair in batch.windows(2) {
                    assert!(pair[0].id < pair[1].id, "{kind}: ids ascending");
                }
                for o in batch {
                    assert_eq!(o.ref_time, t, "{kind}: tick {i} ref time");
                    assert!(w.domain.contains_point(o.pos), "{kind}: {:?}", o.pos);
                    assert!(
                        o.vel.x.abs() <= cfg.max_speed && o.vel.y.abs() <= cfg.max_speed,
                        "{kind}: speed bound"
                    );
                }
            }
            assert_eq!(w.tick_time(cfg.n_ticks), cfg.n_ticks as f64 * cfg.tick_interval);
        }
    }

    /// Fraction of `batch` within `r` of any focus point.
    fn near_focus(w: &ScenarioTrace, batch: &[MovingObject], r: f64) -> f64 {
        batch
            .iter()
            .filter(|o| w.focus.iter().any(|c| o.pos.dist(*c) <= r))
            .count() as f64
            / batch.len() as f64
    }

    #[test]
    fn hotspot_skews_toward_centers() {
        let w = generate(ScenarioKind::Hotspot, &small_cfg());
        let r = DOMAIN_SIDE * 0.1;
        // 4 focus discs of radius 10% of the side ≈ 12.6% of the area:
        // a uniform population would put ~1/8 of the objects there; the
        // hotspot shape must be several times denser, on every tick.
        for (i, batch) in w.ticks.iter().enumerate() {
            let frac = near_focus(&w, batch, r);
            assert!(
                frac > 0.5,
                "tick {i}: only {frac:.2} of objects near the centers"
            );
        }
    }

    #[test]
    fn flash_crowd_density_ramps_up() {
        let w = generate(ScenarioKind::FlashCrowd, &small_cfg());
        let r = DOMAIN_SIDE * 0.1;
        let start = near_focus(&w, &w.ticks[0], r);
        let end = near_focus(&w, w.ticks.last().unwrap(), r);
        // Starts uniform (~π% of the area ≈ 3%), ends crowded.
        assert!(start < 0.1, "tick 0 already crowded: {start:.2}");
        assert!(end > 0.5, "final tick not crowded: {end:.2}");
        assert!(end > start * 4.0, "no ramp: {start:.2} → {end:.2}");
    }

    #[test]
    fn road_grid_velocities_are_axis_aligned() {
        let w = generate(ScenarioKind::RoadGrid, &small_cfg());
        for batch in &w.ticks {
            let aligned = batch
                .iter()
                .filter(|o| o.vel.x == 0.0 || o.vel.y == 0.0)
                .count();
            assert!(
                aligned as f64 > batch.len() as f64 * 0.95,
                "only {aligned}/{} axis-aligned",
                batch.len()
            );
        }
        // And both axes are actually used (two dominant directions).
        let horiz = w.ticks[0].iter().filter(|o| o.vel.y == 0.0).count();
        let frac = horiz as f64 / w.ticks[0].len() as f64;
        assert!(
            (0.3..=0.7).contains(&frac),
            "axis mix degenerate: {frac:.2} horizontal"
        );
    }

    #[test]
    fn hotspot_is_skewed_but_uniform_baseline_is_not() {
        // The drifter fraction alone (last 30%) behaves ~uniformly:
        // cross-check the clustered fraction is what skews the total.
        let w = generate(ScenarioKind::Hotspot, &small_cfg());
        let n = w.ticks[0].len();
        let drifters: Vec<MovingObject> = w.ticks[0][(n as f64 * HOTSPOT_CLUSTERED) as usize..]
            .to_vec();
        let frac = near_focus(&w, &drifters, DOMAIN_SIDE * 0.1);
        assert!(
            frac < 0.35,
            "background population too clustered: {frac:.2}"
        );
    }
}
