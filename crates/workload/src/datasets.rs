//! Dataset presets.
//!
//! The paper evaluates on four OSM-derived road networks plus a
//! uniform synthetic dataset. The presets below encode the
//! characteristics Section 6 calls out:
//!
//! * **CH (Chicago)** — the most direction-skewed network; fewer
//!   nodes/edges (longer edges, fewer updates).
//! * **SA (San Francisco)** — skewed, slightly less than CH; similar
//!   density to CH. Rotated grid (San Francisco's famous off-north
//!   street angle).
//! * **MEL (Melbourne CBD)** — denser (more nodes/edges, more
//!   updates), moderate skew.
//! * **NY (New York CBD)** — densest, least skewed of the four.
//! * **Uniform** — no network: positions and directions uniform; the
//!   control case where VP has nothing to exploit.

use crate::network::NetworkParams;

/// The benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    Chicago,
    SanFrancisco,
    Melbourne,
    NewYork,
    Uniform,
}

impl Dataset {
    /// All datasets in the order the paper's Figure 19 lists them.
    pub const ALL: [Dataset; 5] = [
        Dataset::Chicago,
        Dataset::SanFrancisco,
        Dataset::Melbourne,
        Dataset::NewYork,
        Dataset::Uniform,
    ];

    /// The short label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Dataset::Chicago => "CH",
            Dataset::SanFrancisco => "SA",
            Dataset::Melbourne => "MEL",
            Dataset::NewYork => "NY",
            Dataset::Uniform => "uniform",
        }
    }

    /// Network generation parameters; `None` for the uniform dataset.
    pub fn network_params(&self, seed: u64) -> Option<NetworkParams> {
        let base = NetworkParams::default();
        match self {
            // jitter/diagonal_fraction encode the skew ordering
            // CH > SA > MEL > NY; streets_per_axis encodes density
            // (update frequency ordering NY ~ MEL > SA ~ CH).
            Dataset::Chicago => Some(NetworkParams {
                orientation: 0.0,
                streets_per_axis: 28,
                jitter: 0.02,
                diagonal_fraction: 0.02,
                seed,
                ..base
            }),
            Dataset::SanFrancisco => Some(NetworkParams {
                orientation: 0.18, // SF's grid sits ~10 degrees off north
                streets_per_axis: 30,
                jitter: 0.05,
                diagonal_fraction: 0.05,
                seed,
                ..base
            }),
            Dataset::Melbourne => Some(NetworkParams {
                orientation: 0.12,
                streets_per_axis: 48,
                jitter: 0.10,
                diagonal_fraction: 0.10,
                seed,
                ..base
            }),
            Dataset::NewYork => Some(NetworkParams {
                orientation: 0.50, // Manhattan's ~29-degree grid
                streets_per_axis: 52,
                jitter: 0.16,
                diagonal_fraction: 0.16,
                seed,
                ..base
            }),
            Dataset::Uniform => None,
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetwork;

    #[test]
    fn labels() {
        assert_eq!(Dataset::Chicago.label(), "CH");
        assert_eq!(Dataset::Uniform.to_string(), "uniform");
        assert_eq!(Dataset::ALL.len(), 5);
    }

    #[test]
    fn skew_ordering_holds() {
        // Generated networks must reproduce the paper's skew ordering
        // CH > SA > MEL > NY (measured as axis alignment).
        let mut scores = Vec::new();
        for ds in [
            Dataset::Chicago,
            Dataset::SanFrancisco,
            Dataset::Melbourne,
            Dataset::NewYork,
        ] {
            let p = ds.network_params(1).unwrap();
            let net = RoadNetwork::generate(&p);
            scores.push((ds.label(), net.axis_alignment(p.orientation, 0.08)));
        }
        for w in scores.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "skew ordering violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn density_ordering_holds() {
        let ch = RoadNetwork::generate(&Dataset::Chicago.network_params(1).unwrap());
        let ny = RoadNetwork::generate(&Dataset::NewYork.network_params(1).unwrap());
        assert!(ny.node_count() > ch.node_count() * 2);
        assert!(ny.mean_edge_length() < ch.mean_edge_length());
    }

    #[test]
    fn uniform_has_no_network() {
        assert!(Dataset::Uniform.network_params(1).is_none());
    }
}
