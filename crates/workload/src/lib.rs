//! # vp-workload — moving-object workload generation
//!
//! Reproduces the experimental setup of the paper (Section 6), which
//! used the Chen et al. benchmark generator fed with OpenStreetMap
//! road networks. OSM extracts are not available offline, so
//! [`network`] procedurally generates road networks with the exact
//! knobs the paper's datasets vary:
//!
//! * **direction skew** — how tightly edge directions hug the two
//!   dominant axes (CH most skewed > SA > MEL > NY), plus a fraction
//!   of off-axis "diagonal" connectors;
//! * **density** — nodes/edges per unit area; denser networks (MEL,
//!   NY) have shorter edges and therefore more frequent updates;
//! * **orientation** — the angle of the primary axis.
//!
//! [`generator`] simulates network-constrained movement: objects
//! travel along edges, turn (and report a velocity update) at nodes,
//! and are forced to report at least every maximum-update-interval.
//! [`datasets`] holds the per-city presets and the uniform synthetic
//! dataset; [`queries`] builds the benchmark's range-query streams.
//! [`scenarios`] adds tick-structured standing-query workloads
//! (hotspot, flash-crowd, road-grid correlated velocities) for the
//! subscription engine and its benches.

pub mod datasets;
pub mod generator;
pub mod network;
pub mod queries;
pub mod scenarios;

pub use datasets::Dataset;
pub use generator::{Workload, WorkloadConfig, WorkloadEvent};
pub use network::{NetworkParams, RoadNetwork};
pub use queries::{QueryShape, QuerySpec};
pub use scenarios::{ScenarioConfig, ScenarioKind, ScenarioTrace};
