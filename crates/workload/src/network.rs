//! Procedural road networks.
//!
//! A network is a jittered grid: two families of parallel streets
//! aligned with a (rotated) primary axis, intersecting at nodes, plus
//! a configurable fraction of off-axis diagonal connectors. Node
//! positions are perturbed so edge directions wobble around the two
//! dominant axes — the *direction skew* the paper's datasets differ
//! in. All coordinates stay inside the configured domain.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vp_geom::{Frame, Point, Rect};

/// Parameters of the procedural network generator.
#[derive(Debug, Clone)]
pub struct NetworkParams {
    /// World domain the network spans.
    pub domain: Rect,
    /// Angle (radians) of the primary street axis; the secondary axis
    /// is perpendicular.
    pub orientation: f64,
    /// Streets per axis — the grid is `streets × streets`.
    pub streets_per_axis: usize,
    /// Node position jitter as a fraction of street spacing (drives
    /// how far edge directions stray from the dominant axes).
    pub jitter: f64,
    /// Fraction of extra off-axis diagonal edges, relative to the
    /// number of grid edges.
    pub diagonal_fraction: f64,
    /// RNG seed — networks are fully deterministic per seed.
    pub seed: u64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            domain: Rect::from_bounds(0.0, 0.0, 100_000.0, 100_000.0),
            orientation: 0.0,
            streets_per_axis: 32,
            jitter: 0.05,
            diagonal_fraction: 0.05,
            seed: 0x0A0D,
        }
    }
}

/// An undirected road network embedded in the plane.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    /// Adjacency list; `adj[n]` lists the neighbor node ids of `n`.
    adj: Vec<Vec<u32>>,
    edge_count: usize,
    domain: Rect,
}

impl RoadNetwork {
    /// Generates a network from parameters.
    pub fn generate(params: &NetworkParams) -> RoadNetwork {
        assert!(params.streets_per_axis >= 2, "need at least a 2x2 grid");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = params.streets_per_axis;
        let d = &params.domain;
        let frame = Frame::new(
            Point::new(params.orientation.cos(), params.orientation.sin()),
            d.center(),
        );
        // Lay the grid out in the rotated frame, inset so rotation
        // keeps nodes inside the domain.
        let half = 0.5 / std::f64::consts::SQRT_2;
        let w = d.width() * half * 2.0;
        let h = d.height() * half * 2.0;
        let sx = w / (n - 1) as f64;
        let sy = h / (n - 1) as f64;

        let mut nodes = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                let jx = (rng.random::<f64>() - 0.5) * 2.0 * params.jitter * sx;
                let jy = (rng.random::<f64>() - 0.5) * 2.0 * params.jitter * sy;
                let fx = -w * 0.5 + i as f64 * sx + jx;
                let fy = -h * 0.5 + j as f64 * sy + jy;
                let p = frame.from_frame(Point::new(fx, fy));
                nodes.push(Point::new(
                    p.x.clamp(d.lo.x, d.hi.x),
                    p.y.clamp(d.lo.y, d.hi.y),
                ));
            }
        }

        let id = |i: usize, j: usize| (j * n + i) as u32;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n * n];
        let mut edge_count = 0usize;
        fn connect(adj: &mut [Vec<u32>], edge_count: &mut usize, a: u32, b: u32) {
            if a != b && !adj[a as usize].contains(&b) {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
                *edge_count += 1;
            }
        }
        for j in 0..n {
            for i in 0..n {
                if i + 1 < n {
                    connect(&mut adj, &mut edge_count, id(i, j), id(i + 1, j));
                }
                if j + 1 < n {
                    connect(&mut adj, &mut edge_count, id(i, j), id(i, j + 1));
                }
            }
        }
        // Off-axis diagonal connectors.
        let diagonals = (edge_count as f64 * params.diagonal_fraction) as usize;
        for _ in 0..diagonals {
            let i = rng.random_range(0..n - 1);
            let j = rng.random_range(0..n - 1);
            if rng.random::<bool>() {
                connect(&mut adj, &mut edge_count, id(i, j), id(i + 1, j + 1));
            } else {
                connect(&mut adj, &mut edge_count, id(i + 1, j), id(i, j + 1));
            }
        }

        RoadNetwork {
            nodes,
            adj,
            edge_count,
            domain: *d,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The network's domain.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Position of a node.
    pub fn node(&self, id: u32) -> Point {
        self.nodes[id as usize]
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, id: u32) -> &[u32] {
        &self.adj[id as usize]
    }

    /// A uniformly random directed edge `(from, to)`.
    pub fn random_edge(&self, rng: &mut StdRng) -> (u32, u32) {
        loop {
            let a = rng.random_range(0..self.nodes.len()) as u32;
            if let Some(&b) = pick(&self.adj[a as usize], rng) {
                return (a, b);
            }
        }
    }

    /// The next directed edge after arriving at `at` from `from`:
    /// a random outgoing edge, avoiding an immediate U-turn when any
    /// alternative exists.
    pub fn next_edge(&self, from: u32, at: u32, rng: &mut StdRng) -> (u32, u32) {
        let nbrs = &self.adj[at as usize];
        debug_assert!(!nbrs.is_empty(), "dangling node {at}");
        let choices: Vec<u32> = nbrs.iter().copied().filter(|&b| b != from).collect();
        let to = if choices.is_empty() {
            from // dead end: turn back
        } else {
            *pick(&choices, rng).expect("non-empty")
        };
        (at, to)
    }

    /// Average edge length — the main driver of update frequency.
    pub fn mean_edge_length(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (a, nbrs) in self.adj.iter().enumerate() {
            for &b in nbrs {
                if (a as u32) < b {
                    total += self.nodes[a].dist(self.nodes[b as usize]);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Histogram quality metric: the fraction of total edge length
    /// whose direction lies within `tol` radians of one of the two
    /// grid axes (modulo π). Higher = more direction-skewed network.
    pub fn axis_alignment(&self, orientation: f64, tol: f64) -> f64 {
        let mut aligned = 0.0;
        let mut total = 0.0;
        for (a, nbrs) in self.adj.iter().enumerate() {
            for &b in nbrs {
                if (a as u32) < b {
                    let v = self.nodes[b as usize] - self.nodes[a];
                    let len = v.norm();
                    if len <= 0.0 {
                        continue;
                    }
                    let ang = v.y.atan2(v.x);
                    let rel = (ang - orientation).rem_euclid(std::f64::consts::FRAC_PI_2);
                    let dev = rel.min(std::f64::consts::FRAC_PI_2 - rel);
                    total += len;
                    if dev <= tol {
                        aligned += len;
                    }
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            aligned / total
        }
    }
}

fn pick<'a, T>(slice: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.random_range(0..slice.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(jitter: f64, diag: f64) -> NetworkParams {
        NetworkParams {
            streets_per_axis: 16,
            jitter,
            diagonal_fraction: diag,
            seed: 7,
            ..NetworkParams::default()
        }
    }

    #[test]
    fn grid_structure() {
        let net = RoadNetwork::generate(&params(0.0, 0.0));
        assert_eq!(net.node_count(), 256);
        // 2 * n * (n-1) grid edges.
        assert_eq!(net.edge_count(), 2 * 16 * 15);
        // Interior nodes have 4 neighbors; corners 2.
        assert_eq!(net.neighbors(0).len(), 2);
        let interior = 5 * 16 + 5;
        assert_eq!(net.neighbors(interior).len(), 4);
    }

    #[test]
    fn nodes_inside_domain() {
        for orientation in [0.0, 0.4, 1.0] {
            let mut p = params(0.2, 0.1);
            p.orientation = orientation;
            let net = RoadNetwork::generate(&p);
            for i in 0..net.node_count() {
                assert!(net.domain().contains_point(net.node(i as u32)));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RoadNetwork::generate(&params(0.1, 0.05));
        let b = RoadNetwork::generate(&params(0.1, 0.05));
        assert_eq!(a.node_count(), b.node_count());
        for i in 0..a.node_count() {
            assert_eq!(a.node(i as u32), b.node(i as u32));
        }
    }

    #[test]
    fn jitter_reduces_axis_alignment() {
        let tight = RoadNetwork::generate(&params(0.01, 0.0));
        let loose = RoadNetwork::generate(&params(0.45, 0.0));
        let a_tight = tight.axis_alignment(0.0, 0.1);
        let a_loose = loose.axis_alignment(0.0, 0.1);
        assert!(a_tight > 0.95, "tight grid alignment {a_tight}");
        assert!(
            a_loose < a_tight,
            "jitter should reduce alignment: {a_loose} vs {a_tight}"
        );
    }

    #[test]
    fn diagonals_add_edges() {
        let plain = RoadNetwork::generate(&params(0.05, 0.0));
        let diag = RoadNetwork::generate(&params(0.05, 0.2));
        assert!(diag.edge_count() > plain.edge_count());
    }

    #[test]
    fn walks_never_dead_end() {
        let net = RoadNetwork::generate(&params(0.1, 0.05));
        let mut rng = StdRng::seed_from_u64(42);
        let (mut from, mut to) = net.random_edge(&mut rng);
        for _ in 0..1000 {
            let (f, t) = net.next_edge(from, to, &mut rng);
            assert_ne!(f, t, "self-loop");
            from = f;
            to = t;
        }
    }

    #[test]
    fn rotated_network_aligns_with_orientation() {
        let mut p = params(0.02, 0.0);
        p.orientation = 0.5;
        let net = RoadNetwork::generate(&p);
        assert!(net.axis_alignment(0.5, 0.1) > 0.9);
        assert!(net.axis_alignment(0.0, 0.1) < 0.5);
    }

    #[test]
    fn mean_edge_length_scales_with_density() {
        let sparse = RoadNetwork::generate(&NetworkParams {
            streets_per_axis: 8,
            ..params(0.05, 0.0)
        });
        let dense = RoadNetwork::generate(&NetworkParams {
            streets_per_axis: 32,
            ..params(0.05, 0.0)
        });
        assert!(sparse.mean_edge_length() > dense.mean_edge_length() * 2.0);
    }
}
