//! Query stream generation.

use rand::rngs::StdRng;
use rand::RngExt;
use vp_core::{QueryRegion, RangeQuery};
use vp_geom::{Circle, Point, Rect};

/// Shape of the benchmark queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// Circular range query of the given radius (the paper's default;
    /// Table 1 radius 100–1000 m, default 500 m).
    Circle { radius: f64 },
    /// Rectangular range query with the given side lengths (Section
    /// 6.8 uses 1000 m × 1000 m).
    Rect { width: f64, height: f64 },
}

/// Parameters of a query stream.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    pub shape: QueryShape,
    /// Offset added to the issue time to form the (future) query time
    /// — the paper's "query predictive time" (default 60 ts).
    pub predictive_time: f64,
    /// For time-interval / moving queries: the window length after the
    /// predictive time (0 = time slice).
    pub interval_len: f64,
    /// Velocity of a moving range query (zero = static).
    pub query_velocity: Point,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            shape: QueryShape::Circle { radius: 500.0 },
            predictive_time: 60.0,
            interval_len: 0.0,
            query_velocity: Point::ZERO,
        }
    }
}

impl QuerySpec {
    /// Builds one query issued at `issue_time` centered at `center`.
    pub fn build(&self, center: Point, issue_time: f64) -> RangeQuery {
        let region = match self.shape {
            QueryShape::Circle { radius } => QueryRegion::Circle(Circle::new(center, radius)),
            QueryShape::Rect { width, height } => {
                QueryRegion::Rect(Rect::centered(center, width * 0.5, height * 0.5))
            }
        };
        let t1 = issue_time + self.predictive_time;
        if self.interval_len <= 0.0 && self.query_velocity == Point::ZERO {
            RangeQuery::time_slice(region, t1)
        } else if self.query_velocity == Point::ZERO {
            RangeQuery::time_interval(region, t1, t1 + self.interval_len)
        } else {
            RangeQuery::moving(region, self.query_velocity, t1, t1 + self.interval_len)
        }
    }

    /// Builds one query with a uniformly random center in `domain`.
    pub fn random(&self, domain: &Rect, issue_time: f64, rng: &mut StdRng) -> RangeQuery {
        let c = Point::new(
            rng.random_range(domain.lo.x..=domain.hi.x),
            rng.random_range(domain.lo.y..=domain.hi.y),
        );
        self.build(c, issue_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn time_slice_circle() {
        let spec = QuerySpec::default();
        let q = spec.build(Point::new(10.0, 20.0), 5.0);
        assert!(q.is_time_slice());
        assert_eq!(q.t_start, 65.0);
        match q.region {
            QueryRegion::Circle(c) => {
                assert_eq!(c.center, Point::new(10.0, 20.0));
                assert_eq!(c.radius, 500.0);
            }
            _ => panic!("expected circle"),
        }
    }

    #[test]
    fn rect_interval_query() {
        let spec = QuerySpec {
            shape: QueryShape::Rect {
                width: 1000.0,
                height: 1000.0,
            },
            predictive_time: 20.0,
            interval_len: 10.0,
            query_velocity: Point::ZERO,
        };
        let q = spec.build(Point::new(0.0, 0.0), 0.0);
        assert!(!q.is_time_slice());
        assert_eq!((q.t_start, q.t_end), (20.0, 30.0));
        assert_eq!(
            q.region.bounding_rect(),
            Rect::from_bounds(-500.0, -500.0, 500.0, 500.0)
        );
    }

    #[test]
    fn moving_query() {
        let spec = QuerySpec {
            query_velocity: Point::new(5.0, 0.0),
            interval_len: 10.0,
            ..QuerySpec::default()
        };
        let q = spec.build(Point::ZERO, 0.0);
        assert_eq!(q.velocity, Point::new(5.0, 0.0));
        assert_eq!((q.t_start, q.t_end), (60.0, 70.0));
    }

    #[test]
    fn random_centers_in_domain() {
        let spec = QuerySpec::default();
        let domain = Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let q = spec.random(&domain, 0.0, &mut rng);
            let b = q.region.bounding_rect();
            assert!(domain.contains_point(b.center()));
        }
    }
}
