//! Network-constrained moving-object simulation (Chen et al.
//! benchmark style).
//!
//! Objects travel along road-network edges with per-leg speeds. An
//! object reports a velocity update when it reaches a node and turns,
//! and is forced to report at least once per maximum update interval
//! (Table 1: 120 ts). The uniform dataset skips the network: objects
//! move freely, redrawing direction and speed at random update times
//! and reflecting off the domain boundary.
//!
//! The generator materializes the whole trace up front — initial
//! inserts, a time-sorted stream of updates, and a query stream — so
//! every index sees byte-identical workloads.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vp_core::{MovingObject, RangeQuery};
use vp_geom::{Point, Rect, Vec2};

use crate::datasets::Dataset;
use crate::network::RoadNetwork;
use crate::queries::QuerySpec;

/// Workload generation parameters (defaults = paper Table 1 bold
/// values, scaled-down object count for unit tests).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of moving objects (paper default 100 K).
    pub n_objects: usize,
    /// Maximum object speed in m/ts (paper default 100).
    pub max_speed: f64,
    /// Simulated duration in timestamps (paper: 240).
    pub duration: f64,
    /// Maximum update interval (paper: 120 ts).
    pub max_update_interval: f64,
    /// Number of range queries spread over the run.
    pub n_queries: usize,
    /// Query shape/timing parameters.
    pub query: QuerySpec,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_objects: 100_000,
            max_speed: 100.0,
            duration: 240.0,
            max_update_interval: 120.0,
            n_queries: 200,
            query: QuerySpec::default(),
            seed: 0xBEEF,
        }
    }
}

/// One timed benchmark event.
#[derive(Debug, Clone)]
pub enum WorkloadEvent {
    /// A velocity update (delete + insert) of an existing object.
    Update(MovingObject),
    /// A range query to execute.
    Query(RangeQuery),
}

/// A fully materialized benchmark trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The dataset this trace was generated from.
    pub dataset: Dataset,
    /// The data domain.
    pub domain: Rect,
    /// Initial objects (reference time 0), inserted before the run.
    pub initial: Vec<MovingObject>,
    /// Time-sorted stream of updates and queries.
    pub events: Vec<(f64, WorkloadEvent)>,
}

impl Workload {
    /// Generates the trace for a dataset.
    pub fn generate(dataset: Dataset, cfg: &WorkloadConfig) -> Workload {
        let domain = Rect::from_bounds(0.0, 0.0, 100_000.0, 100_000.0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let network = dataset
            .network_params(cfg.seed ^ 0x5EED)
            .map(|p| RoadNetwork::generate(&p));

        let mut initial = Vec::with_capacity(cfg.n_objects);
        let mut events: Vec<(f64, WorkloadEvent)> = Vec::new();

        match &network {
            Some(net) => {
                for id in 0..cfg.n_objects as u64 {
                    simulate_network_object(id, net, cfg, &mut rng, &mut initial, &mut events);
                }
            }
            None => {
                for id in 0..cfg.n_objects as u64 {
                    simulate_free_object(id, &domain, cfg, &mut rng, &mut initial, &mut events);
                }
            }
        }

        // Query stream: evenly spaced issue times, uniform centers.
        for qi in 0..cfg.n_queries {
            let t = if cfg.n_queries <= 1 {
                0.0
            } else {
                cfg.duration * qi as f64 / (cfg.n_queries - 1) as f64
            };
            let q = cfg.query.random(&domain, t, &mut rng);
            events.push((t, WorkloadEvent::Query(q)));
        }

        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        Workload {
            dataset,
            domain,
            initial,
            events,
        }
    }

    /// A sample of `n` current velocities (from the initial objects) —
    /// the velocity analyzer's input (paper: 10,000 points).
    pub fn velocity_sample(&self, n: usize, seed: u64) -> Vec<Vec2> {
        let mut rng = StdRng::seed_from_u64(seed);
        if self.initial.is_empty() {
            return Vec::new();
        }
        (0..n.min(self.initial.len()))
            .map(|_| self.initial[rng.random_range(0..self.initial.len())].vel)
            .collect()
    }

    /// Total number of updates in the trace.
    pub fn update_count(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Update(_)))
            .count()
    }

    /// Total number of queries in the trace.
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Query(_)))
            .count()
    }
}

fn draw_speed(cfg: &WorkloadConfig, rng: &mut StdRng) -> f64 {
    // Speeds span (5%, 100%] of the maximum, as in the benchmark's
    // mixed speed classes.
    rng.random_range(0.05..=1.0) * cfg.max_speed
}

fn simulate_network_object(
    id: u64,
    net: &RoadNetwork,
    cfg: &WorkloadConfig,
    rng: &mut StdRng,
    initial: &mut Vec<MovingObject>,
    events: &mut Vec<(f64, WorkloadEvent)>,
) {
    let (mut from, mut to) = net.random_edge(rng);
    let a = net.node(from);
    let b = net.node(to);
    let u: f64 = rng.random_range(0.0..1.0);
    let mut pos = Point::new(a.x + (b.x - a.x) * u, a.y + (b.y - a.y) * u);
    let mut speed = draw_speed(cfg, rng);
    let mut t = 0.0_f64;
    let mut first = true;

    loop {
        let target = net.node(to);
        let dist = pos.dist(target);
        let dir = if dist > 1e-9 {
            (target - pos) / dist
        } else {
            Point::new(1.0, 0.0)
        };
        let vel = dir * speed;
        let obj = MovingObject::new(id, pos, vel, t);
        if first {
            initial.push(obj);
            first = false;
        } else {
            events.push((t, WorkloadEvent::Update(obj)));
        }

        // Next report: node arrival or forced update, whichever first.
        let t_arrive = t + dist / speed.max(1e-9);
        let t_forced = t + cfg.max_update_interval;
        if t_arrive.min(t_forced) > cfg.duration {
            break;
        }
        if t_arrive <= t_forced {
            // Reached the node: turn onto the next edge, redraw speed.
            t = t_arrive;
            pos = target;
            let (f, nto) = net.next_edge(from, to, rng);
            from = f;
            to = nto;
            speed = draw_speed(cfg, rng);
        } else {
            // Forced mid-edge report: redraw the speed (traffic),
            // keep heading to the same node.
            t = t_forced;
            pos = pos.advance(vel, cfg.max_update_interval);
            speed = draw_speed(cfg, rng);
        }
    }
}

fn simulate_free_object(
    id: u64,
    domain: &Rect,
    cfg: &WorkloadConfig,
    rng: &mut StdRng,
    initial: &mut Vec<MovingObject>,
    events: &mut Vec<(f64, WorkloadEvent)>,
) {
    let mut pos = Point::new(
        rng.random_range(domain.lo.x..=domain.hi.x),
        rng.random_range(domain.lo.y..=domain.hi.y),
    );
    let mut t = 0.0_f64;
    let mut first = true;
    loop {
        let ang = rng.random_range(0.0..std::f64::consts::TAU);
        let speed = draw_speed(cfg, rng);
        let vel = Point::new(ang.cos() * speed, ang.sin() * speed);
        let obj = MovingObject::new(id, pos, vel, t);
        if first {
            initial.push(obj);
            first = false;
        } else {
            events.push((t, WorkloadEvent::Update(obj)));
        }
        let dt: f64 = rng.random_range(1.0..=cfg.max_update_interval);
        if t + dt > cfg.duration {
            break;
        }
        t += dt;
        pos = reflect(pos.advance(vel, dt), domain);
    }
}

/// Reflects a position back into the domain (mirror at the borders).
fn reflect(p: Point, domain: &Rect) -> Point {
    let reflect1 = |mut v: f64, lo: f64, hi: f64| -> f64 {
        let w = hi - lo;
        if w <= 0.0 {
            return lo;
        }
        // Fold into [lo, lo + 2w), then mirror the upper half.
        v = (v - lo).rem_euclid(2.0 * w);
        if v > w {
            v = 2.0 * w - v;
        }
        lo + v
    };
    Point::new(
        reflect1(p.x, domain.lo.x, domain.hi.x),
        reflect1(p.y, domain.lo.y, domain.hi.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_core::MovingObjectIndex;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 500,
            n_queries: 20,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generates_expected_counts() {
        let w = Workload::generate(Dataset::Chicago, &small_cfg());
        assert_eq!(w.initial.len(), 500);
        assert_eq!(w.query_count(), 20);
        assert!(w.update_count() > 500, "expected several updates/object");
        // Events sorted by time.
        for pair in w.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn deterministic() {
        let a = Workload::generate(Dataset::SanFrancisco, &small_cfg());
        let b = Workload::generate(Dataset::SanFrancisco, &small_cfg());
        assert_eq!(a.initial.len(), b.initial.len());
        for (x, y) in a.initial.iter().zip(&b.initial) {
            assert_eq!(x, y);
        }
        assert_eq!(a.events.len(), b.events.len());
    }

    #[test]
    fn updates_respect_max_interval() {
        let w = Workload::generate(Dataset::Chicago, &small_cfg());
        // Per object, consecutive reports are at most max_update_interval
        // apart (within fp tolerance).
        let mut last: std::collections::HashMap<u64, f64> =
            w.initial.iter().map(|o| (o.id, 0.0)).collect();
        for (t, e) in &w.events {
            if let WorkloadEvent::Update(o) = e {
                let prev = last.insert(o.id, *t).unwrap();
                assert!(
                    *t - prev <= 120.0 + 1e-6,
                    "object {} waited {} ts",
                    o.id,
                    t - prev
                );
            }
        }
    }

    #[test]
    fn network_velocities_are_direction_skewed() {
        let w = Workload::generate(Dataset::Chicago, &small_cfg());
        let sample = w.velocity_sample(500, 1);
        // Most velocities near the two grid axes.
        let aligned = sample
            .iter()
            .filter(|v| {
                let ang = v.y.atan2(v.x).rem_euclid(std::f64::consts::FRAC_PI_2);
                ang.min(std::f64::consts::FRAC_PI_2 - ang) < 0.15
            })
            .count();
        assert!(
            aligned as f64 > sample.len() as f64 * 0.8,
            "only {aligned}/{} aligned",
            sample.len()
        );
    }

    #[test]
    fn uniform_velocities_are_isotropic() {
        let w = Workload::generate(Dataset::Uniform, &small_cfg());
        let sample = w.velocity_sample(500, 1);
        let aligned = sample
            .iter()
            .filter(|v| {
                let ang = v.y.atan2(v.x).rem_euclid(std::f64::consts::FRAC_PI_2);
                ang.min(std::f64::consts::FRAC_PI_2 - ang) < 0.15
            })
            .count();
        // ~19% of directions fall within 0.15 rad of an axis by chance.
        assert!(
            (aligned as f64) < sample.len() as f64 * 0.4,
            "{aligned}/{} aligned — too skewed for uniform",
            sample.len()
        );
    }

    #[test]
    fn positions_stay_in_domain() {
        for ds in [Dataset::NewYork, Dataset::Uniform] {
            let w = Workload::generate(ds, &small_cfg());
            for o in &w.initial {
                assert!(w.domain.contains_point(o.pos), "{ds}: {:?}", o.pos);
            }
            for (_, e) in &w.events {
                if let WorkloadEvent::Update(o) = e {
                    assert!(
                        w.domain.inflate(1.0, 1.0).contains_point(o.pos),
                        "{ds}: {:?}",
                        o.pos
                    );
                }
            }
        }
    }

    #[test]
    fn trace_replays_cleanly_on_an_index() {
        // End-to-end smoke: the trace applies without duplicate/unknown
        // id errors on a reference index.
        use vp_core::traits::reference::ScanIndex;
        let w = Workload::generate(Dataset::Melbourne, &small_cfg());
        let mut idx = ScanIndex::new();
        for o in &w.initial {
            idx.insert(*o).unwrap();
        }
        for (_, e) in &w.events {
            match e {
                WorkloadEvent::Update(o) => idx.update(*o).unwrap(),
                WorkloadEvent::Query(q) => {
                    idx.range_query(q).unwrap();
                }
            }
        }
        assert_eq!(idx.len(), 500);
    }

    #[test]
    fn reflect_folds_into_domain() {
        let d = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        assert_eq!(reflect(Point::new(5.0, 5.0), &d), Point::new(5.0, 5.0));
        assert_eq!(reflect(Point::new(12.0, 5.0), &d), Point::new(8.0, 5.0));
        assert_eq!(reflect(Point::new(-3.0, 5.0), &d), Point::new(3.0, 5.0));
        assert_eq!(reflect(Point::new(5.0, 27.0), &d), Point::new(5.0, 7.0));
    }

    #[test]
    fn velocity_sample_size() {
        let w = Workload::generate(Dataset::Uniform, &small_cfg());
        assert_eq!(w.velocity_sample(100, 2).len(), 100);
        assert_eq!(w.velocity_sample(10_000, 2).len(), 500);
    }
}
