//! # vp-bx — the Bx-tree
//!
//! The paper's second baseline index (Jensen, Lin, Ooi — VLDB 2004): a
//! B+-tree over a space-filling-curve linearization of the space,
//! partitioned into time buckets, with *query window enlargement*
//! driven by velocity histograms and the iterative-expansion
//! improvement of Jensen et al. (MDM 2006).
//!
//! * [`curve`] — Hilbert and Z-order curves with exact decomposition of
//!   a cell window into contiguous curve ranges (budgeted, so a query
//!   never degenerates into thousands of tiny scans).
//! * [`grid`] — the velocity histogram: per-cell min/max velocity
//!   components used to bound the enlargement (the paper's setup keeps
//!   a 1000×1000-cell histogram).
//! * [`tree`] — the Bx-tree proper, implementing
//!   [`vp_core::MovingObjectIndex`] over `vp-bptree`.

pub mod curve;
pub mod grid;
pub mod snapshot;
pub mod tree;

pub use curve::{CurveKind, HilbertCurve, SpaceFillingCurve, ZCurve};
pub use grid::VelocityGrid;
pub use snapshot::BxSnapshot;
pub use tree::{BxConfig, BxEnlargement, BxTree, EnlargedWindow};
