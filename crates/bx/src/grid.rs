//! Velocity histograms on a grid.
//!
//! The Bx-tree enlarges query windows by the maximum/minimum object
//! velocities. To avoid a few fast objects inflating *every* query, the
//! paper's implementation keeps "histograms on a grid base … for the
//! maximum/minimum velocity of different portions of the data space"
//! (Section 3.2; 1000×1000 cells in the experiments). This module is
//! that structure: per-cell min/max of each velocity component,
//! aggregated over any query rectangle.
//!
//! On top of the finest grid sits a **bounds pyramid**: each coarser
//! level halves the resolution and stores the min/max over its four
//! children. Query planners descend the pyramid and prune whole
//! regions whose (conservative, superset) bounds cannot reach the
//! query — the enlargement computation then costs O(qualifying
//! region) instead of O(window area). Levels run from 0 (finest,
//! `n × n`) up to [`VelocityGrid::levels`]` - 1` (a single root cell).
//!
//! Maintenance is insert-only (deletions leave bounds conservative —
//! still correct, just looser); [`VelocityGrid::reset`] supports the
//! periodic rebuild strategy.

use vp_geom::{Point, Rect, Vec2};

/// One resolution level of the bounds pyramid.
#[derive(Debug, Clone)]
struct Level {
    /// Cells per axis at this level: `((n - 1) >> level) + 1`.
    n: usize,
    min_vx: Vec<f32>,
    max_vx: Vec<f32>,
    min_vy: Vec<f32>,
    max_vy: Vec<f32>,
}

impl Level {
    fn new(n: usize) -> Level {
        Level {
            n,
            min_vx: vec![f32::INFINITY; n * n],
            max_vx: vec![f32::NEG_INFINITY; n * n],
            min_vy: vec![f32::INFINITY; n * n],
            max_vy: vec![f32::NEG_INFINITY; n * n],
        }
    }

    fn reset(&mut self) {
        self.min_vx.fill(f32::INFINITY);
        self.max_vx.fill(f32::NEG_INFINITY);
        self.min_vy.fill(f32::INFINITY);
        self.max_vy.fill(f32::NEG_INFINITY);
    }

    fn record(&mut self, cx: usize, cy: usize, vel: Vec2) {
        let i = cy * self.n + cx;
        self.min_vx[i] = self.min_vx[i].min(vel.x as f32);
        self.max_vx[i] = self.max_vx[i].max(vel.x as f32);
        self.min_vy[i] = self.min_vy[i].min(vel.y as f32);
        self.max_vy[i] = self.max_vy[i].max(vel.y as f32);
    }

    fn bounds(&self, cx: usize, cy: usize) -> Option<(Vec2, Vec2)> {
        let i = cy * self.n + cx;
        if self.max_vx[i] == f32::NEG_INFINITY {
            return None;
        }
        Some((
            Point::new(self.min_vx[i] as f64, self.min_vy[i] as f64),
            Point::new(self.max_vx[i] as f64, self.max_vy[i] as f64),
        ))
    }
}

/// Per-cell velocity bounds over a gridded domain, with a pruning
/// pyramid on top.
#[derive(Debug, Clone)]
pub struct VelocityGrid {
    domain: Rect,
    n: usize,
    /// `levels[0]` is the finest grid; each subsequent level halves
    /// the resolution (ceiling division) down to a single root cell.
    levels: Vec<Level>,
    /// Global fallback bounds (also insert-only).
    global: Option<(Vec2, Vec2)>,
}

impl VelocityGrid {
    /// Creates an empty grid with `n × n` cells over `domain`.
    pub fn new(domain: Rect, n: usize) -> VelocityGrid {
        assert!(n >= 1, "grid needs at least one cell");
        assert!(!domain.is_empty() && domain.area() > 0.0, "empty domain");
        let mut levels = vec![Level::new(n)];
        while levels.last().expect("non-empty").n > 1 {
            let prev = levels.last().expect("non-empty").n;
            levels.push(Level::new(((prev - 1) >> 1) + 1));
        }
        VelocityGrid {
            domain,
            n,
            levels,
            global: None,
        }
    }

    /// Cells per axis (finest level).
    pub fn cells_per_axis(&self) -> usize {
        self.n
    }

    /// Number of pyramid levels (level 0 = finest, `levels() - 1` =
    /// the single root cell).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Cells per axis at a pyramid level.
    pub fn cells_per_axis_at(&self, level: usize) -> usize {
        self.levels[level].n
    }

    /// The gridded domain.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Clears all recorded bounds (periodic rebuild entry point).
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.reset();
        }
        self.global = None;
    }

    /// Cell coordinates of a position (clamped into the domain).
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let fx = ((p.x - self.domain.lo.x) / self.domain.width()).clamp(0.0, 1.0);
        let fy = ((p.y - self.domain.lo.y) / self.domain.height()).clamp(0.0, 1.0);
        let cx = ((fx * self.n as f64) as usize).min(self.n - 1);
        let cy = ((fy * self.n as f64) as usize).min(self.n - 1);
        (cx, cy)
    }

    /// Records an object's velocity at its (indexed) position.
    pub fn record(&mut self, pos: Point, vel: Vec2) {
        let (cx, cy) = self.cell_of(pos);
        for (k, level) in self.levels.iter_mut().enumerate() {
            level.record(cx >> k, cy >> k, vel);
        }
        self.global = Some(match self.global {
            None => (vel, vel),
            Some((lo, hi)) => (lo.min(vel), hi.max(vel)),
        });
    }

    /// Velocity bounds `(min, max)` per component over all cells
    /// intersecting `window`. `None` when no object was ever recorded
    /// there.
    pub fn bounds_over(&self, window: &Rect) -> Option<(Vec2, Vec2)> {
        if window.is_empty() {
            return None;
        }
        let (cx0, cy0) = self.cell_of(window.lo);
        let (cx1, cy1) = self.cell_of(window.hi);
        let mut lo = Point::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let Some((l, h)) = self.levels[0].bounds(cx, cy) else {
                    continue;
                };
                any = true;
                lo = lo.min(l);
                hi = hi.max(h);
            }
        }
        if any {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Global (whole-domain) velocity bounds, if any object was
    /// recorded.
    pub fn global_bounds(&self) -> Option<(Vec2, Vec2)> {
        self.global
    }

    /// Velocity bounds `(min, max)` of one cell at one pyramid level,
    /// `None` when nothing was ever recorded under it. Coarse-level
    /// bounds are supersets of every descendant's bounds — the
    /// pruning invariant.
    pub fn cell_bounds_at(&self, level: usize, cx: usize, cy: usize) -> Option<(Vec2, Vec2)> {
        debug_assert!(cx < self.levels[level].n && cy < self.levels[level].n);
        self.levels[level].bounds(cx, cy)
    }

    /// Velocity bounds of one finest-level cell.
    pub fn cell_bounds(&self, cx: usize, cy: usize) -> Option<(Vec2, Vec2)> {
        self.cell_bounds_at(0, cx, cy)
    }

    /// The domain rectangle of one cell at one pyramid level (the
    /// union of its finest-level descendants; edge cells of uneven
    /// levels are clipped to the domain).
    pub fn cell_rect_at(&self, level: usize, cx: usize, cy: usize) -> Rect {
        let cw = self.domain.width() / self.n as f64;
        let ch = self.domain.height() / self.n as f64;
        let fine_x0 = cx << level;
        let fine_y0 = cy << level;
        let fine_x1 = ((cx + 1) << level).min(self.n);
        let fine_y1 = ((cy + 1) << level).min(self.n);
        Rect {
            lo: Point::new(
                self.domain.lo.x + fine_x0 as f64 * cw,
                self.domain.lo.y + fine_y0 as f64 * ch,
            ),
            hi: Point::new(
                self.domain.lo.x + fine_x1 as f64 * cw,
                self.domain.lo.y + fine_y1 as f64 * ch,
            ),
        }
    }

    /// The domain rectangle of one finest-level cell.
    pub fn cell_rect(&self, cx: usize, cy: usize) -> Rect {
        self.cell_rect_at(0, cx, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> VelocityGrid {
        VelocityGrid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 10)
    }

    #[test]
    fn cell_mapping() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(99.9, 99.9)), (9, 9));
        assert_eq!(g.cell_of(Point::new(100.0, 100.0)), (9, 9)); // clamp
        assert_eq!(g.cell_of(Point::new(-5.0, 50.0)), (0, 5)); // clamp
        assert_eq!(g.cell_of(Point::new(35.0, 72.0)), (3, 7));
    }

    #[test]
    fn bounds_localized() {
        let mut g = grid();
        g.record(Point::new(5.0, 5.0), Point::new(10.0, -3.0));
        g.record(Point::new(95.0, 95.0), Point::new(-50.0, 80.0));
        // Window covering only the first object's cell.
        let b = g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 9.0, 9.0))
            .unwrap();
        assert_eq!(b.0, Point::new(10.0, -3.0));
        assert_eq!(b.1, Point::new(10.0, -3.0));
        // Window covering both.
        let b = g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
            .unwrap();
        assert_eq!(b.0, Point::new(-50.0, -3.0));
        assert_eq!(b.1, Point::new(10.0, 80.0));
        // Empty corner.
        assert!(g
            .bounds_over(&Rect::from_bounds(50.0, 0.0, 60.0, 9.0))
            .is_none());
    }

    #[test]
    fn fast_outlier_contained_to_its_region() {
        // The motivating case: one fast object should not inflate
        // queries elsewhere.
        let mut g = grid();
        for i in 0..9 {
            g.record(Point::new(i as f64 * 10.0 + 5.0, 5.0), Point::new(1.0, 0.0));
        }
        g.record(Point::new(95.0, 5.0), Point::new(200.0, 0.0));
        let slow = g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 50.0, 9.0))
            .unwrap();
        assert_eq!(slow.1.x, 1.0);
        let fast = g
            .bounds_over(&Rect::from_bounds(90.0, 0.0, 99.0, 9.0))
            .unwrap();
        assert_eq!(fast.1.x, 200.0);
    }

    #[test]
    fn global_bounds_and_reset() {
        let mut g = grid();
        assert!(g.global_bounds().is_none());
        g.record(Point::new(1.0, 1.0), Point::new(3.0, 4.0));
        g.record(Point::new(99.0, 99.0), Point::new(-7.0, 1.0));
        let (lo, hi) = g.global_bounds().unwrap();
        assert_eq!(lo, Point::new(-7.0, 1.0));
        assert_eq!(hi, Point::new(3.0, 4.0));
        g.reset();
        assert!(g.global_bounds().is_none());
        assert!(g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
            .is_none());
        for level in 0..g.levels() {
            let n = g.cells_per_axis_at(level);
            for cy in 0..n {
                for cx in 0..n {
                    assert!(g.cell_bounds_at(level, cx, cy).is_none());
                }
            }
        }
    }

    #[test]
    fn positions_outside_domain_clamp() {
        let mut g = grid();
        g.record(Point::new(150.0, -20.0), Point::new(5.0, 5.0));
        let b = g
            .bounds_over(&Rect::from_bounds(90.0, 0.0, 100.0, 10.0))
            .unwrap();
        assert_eq!(b.1, Point::new(5.0, 5.0));
    }

    #[test]
    fn pyramid_levels_halve_down_to_a_root() {
        let g = grid(); // n = 10
        let sizes: Vec<usize> = (0..g.levels()).map(|k| g.cells_per_axis_at(k)).collect();
        assert_eq!(sizes, vec![10, 5, 3, 2, 1]);
        // Uneven level: cell rects still tile the domain exactly.
        for level in 0..g.levels() {
            let n = g.cells_per_axis_at(level);
            let mut area = 0.0;
            for cy in 0..n {
                for cx in 0..n {
                    area += g.cell_rect_at(level, cx, cy).area();
                }
            }
            assert!(
                (area - g.domain().area()).abs() < 1e-6,
                "level {level} does not tile the domain"
            );
        }
    }

    #[test]
    fn pyramid_bounds_dominate_children() {
        let mut g = grid();
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000) as f64 / 10.0
        };
        for _ in 0..200 {
            g.record(
                Point::new(next(), next()),
                Point::new(next() - 50.0, next() - 50.0),
            );
        }
        for level in 1..g.levels() {
            let n = g.cells_per_axis_at(level);
            let child_n = g.cells_per_axis_at(level - 1);
            for cy in 0..n {
                for cx in 0..n {
                    let parent = g.cell_bounds_at(level, cx, cy);
                    for dy in 0..2usize {
                        for dx in 0..2usize {
                            let (ccx, ccy) = (cx * 2 + dx, cy * 2 + dy);
                            if ccx >= child_n || ccy >= child_n {
                                continue;
                            }
                            if let Some((clo, chi)) = g.cell_bounds_at(level - 1, ccx, ccy) {
                                let (plo, phi) =
                                    parent.expect("parent of a non-empty child is non-empty");
                                assert!(plo.x <= clo.x && plo.y <= clo.y);
                                assert!(phi.x >= chi.x && phi.y >= chi.y);
                            }
                        }
                    }
                }
            }
        }
        // The root cell matches the global bounds (up to the f32
        // storage of the grid cells vs the f64 global).
        let root = g.levels() - 1;
        let (rlo, rhi) = g.cell_bounds_at(root, 0, 0).unwrap();
        let (glo, ghi) = g.global_bounds().unwrap();
        for (a, b) in [(rlo, glo), (rhi, ghi)] {
            assert!((a.x - b.x).abs() < 1e-3 && (a.y - b.y).abs() < 1e-3);
        }
    }
}
