//! Velocity histograms on a grid.
//!
//! The Bx-tree enlarges query windows by the maximum/minimum object
//! velocities. To avoid a few fast objects inflating *every* query, the
//! paper's implementation keeps "histograms on a grid base … for the
//! maximum/minimum velocity of different portions of the data space"
//! (Section 3.2; 1000×1000 cells in the experiments). This module is
//! that structure: per-cell min/max of each velocity component,
//! aggregated over any query rectangle.
//!
//! Maintenance is insert-only (deletions leave bounds conservative —
//! still correct, just looser); [`VelocityGrid::reset`] supports the
//! periodic rebuild strategy.

use vp_geom::{Point, Rect, Vec2};

/// Per-cell velocity bounds over a gridded domain.
#[derive(Debug, Clone)]
pub struct VelocityGrid {
    domain: Rect,
    n: usize,
    min_vx: Vec<f32>,
    max_vx: Vec<f32>,
    min_vy: Vec<f32>,
    max_vy: Vec<f32>,
    /// Global fallback bounds (also insert-only).
    global: Option<(Vec2, Vec2)>,
}

impl VelocityGrid {
    /// Creates an empty grid with `n × n` cells over `domain`.
    pub fn new(domain: Rect, n: usize) -> VelocityGrid {
        assert!(n >= 1, "grid needs at least one cell");
        assert!(!domain.is_empty() && domain.area() > 0.0, "empty domain");
        VelocityGrid {
            domain,
            n,
            min_vx: vec![f32::INFINITY; n * n],
            max_vx: vec![f32::NEG_INFINITY; n * n],
            min_vy: vec![f32::INFINITY; n * n],
            max_vy: vec![f32::NEG_INFINITY; n * n],
            global: None,
        }
    }

    /// Cells per axis.
    pub fn cells_per_axis(&self) -> usize {
        self.n
    }

    /// The gridded domain.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Clears all recorded bounds (periodic rebuild entry point).
    pub fn reset(&mut self) {
        self.min_vx.fill(f32::INFINITY);
        self.max_vx.fill(f32::NEG_INFINITY);
        self.min_vy.fill(f32::INFINITY);
        self.max_vy.fill(f32::NEG_INFINITY);
        self.global = None;
    }

    /// Cell coordinates of a position (clamped into the domain).
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let fx = ((p.x - self.domain.lo.x) / self.domain.width()).clamp(0.0, 1.0);
        let fy = ((p.y - self.domain.lo.y) / self.domain.height()).clamp(0.0, 1.0);
        let cx = ((fx * self.n as f64) as usize).min(self.n - 1);
        let cy = ((fy * self.n as f64) as usize).min(self.n - 1);
        (cx, cy)
    }

    /// Records an object's velocity at its (indexed) position.
    pub fn record(&mut self, pos: Point, vel: Vec2) {
        let (cx, cy) = self.cell_of(pos);
        let i = cy * self.n + cx;
        self.min_vx[i] = self.min_vx[i].min(vel.x as f32);
        self.max_vx[i] = self.max_vx[i].max(vel.x as f32);
        self.min_vy[i] = self.min_vy[i].min(vel.y as f32);
        self.max_vy[i] = self.max_vy[i].max(vel.y as f32);
        self.global = Some(match self.global {
            None => (vel, vel),
            Some((lo, hi)) => (lo.min(vel), hi.max(vel)),
        });
    }

    /// Velocity bounds `(min, max)` per component over all cells
    /// intersecting `window`. `None` when no object was ever recorded
    /// there.
    pub fn bounds_over(&self, window: &Rect) -> Option<(Vec2, Vec2)> {
        if window.is_empty() {
            return None;
        }
        let (cx0, cy0) = self.cell_of(window.lo);
        let (cx1, cy1) = self.cell_of(window.hi);
        let mut lo = Point::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for cy in cy0..=cy1 {
            let row = cy * self.n;
            for cx in cx0..=cx1 {
                let i = row + cx;
                if self.max_vx[i] == f32::NEG_INFINITY {
                    continue;
                }
                any = true;
                lo.x = lo.x.min(self.min_vx[i] as f64);
                hi.x = hi.x.max(self.max_vx[i] as f64);
                lo.y = lo.y.min(self.min_vy[i] as f64);
                hi.y = hi.y.max(self.max_vy[i] as f64);
            }
        }
        if any {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Global (whole-domain) velocity bounds, if any object was
    /// recorded.
    pub fn global_bounds(&self) -> Option<(Vec2, Vec2)> {
        self.global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> VelocityGrid {
        VelocityGrid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 10)
    }

    #[test]
    fn cell_mapping() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(99.9, 99.9)), (9, 9));
        assert_eq!(g.cell_of(Point::new(100.0, 100.0)), (9, 9)); // clamp
        assert_eq!(g.cell_of(Point::new(-5.0, 50.0)), (0, 5)); // clamp
        assert_eq!(g.cell_of(Point::new(35.0, 72.0)), (3, 7));
    }

    #[test]
    fn bounds_localized() {
        let mut g = grid();
        g.record(Point::new(5.0, 5.0), Point::new(10.0, -3.0));
        g.record(Point::new(95.0, 95.0), Point::new(-50.0, 80.0));
        // Window covering only the first object's cell.
        let b = g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 9.0, 9.0))
            .unwrap();
        assert_eq!(b.0, Point::new(10.0, -3.0));
        assert_eq!(b.1, Point::new(10.0, -3.0));
        // Window covering both.
        let b = g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
            .unwrap();
        assert_eq!(b.0, Point::new(-50.0, -3.0));
        assert_eq!(b.1, Point::new(10.0, 80.0));
        // Empty corner.
        assert!(g
            .bounds_over(&Rect::from_bounds(50.0, 0.0, 60.0, 9.0))
            .is_none());
    }

    #[test]
    fn fast_outlier_contained_to_its_region() {
        // The motivating case: one fast object should not inflate
        // queries elsewhere.
        let mut g = grid();
        for i in 0..9 {
            g.record(Point::new(i as f64 * 10.0 + 5.0, 5.0), Point::new(1.0, 0.0));
        }
        g.record(Point::new(95.0, 5.0), Point::new(200.0, 0.0));
        let slow = g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 50.0, 9.0))
            .unwrap();
        assert_eq!(slow.1.x, 1.0);
        let fast = g
            .bounds_over(&Rect::from_bounds(90.0, 0.0, 99.0, 9.0))
            .unwrap();
        assert_eq!(fast.1.x, 200.0);
    }

    #[test]
    fn global_bounds_and_reset() {
        let mut g = grid();
        assert!(g.global_bounds().is_none());
        g.record(Point::new(1.0, 1.0), Point::new(3.0, 4.0));
        g.record(Point::new(99.0, 99.0), Point::new(-7.0, 1.0));
        let (lo, hi) = g.global_bounds().unwrap();
        assert_eq!(lo, Point::new(-7.0, 1.0));
        assert_eq!(hi, Point::new(3.0, 4.0));
        g.reset();
        assert!(g.global_bounds().is_none());
        assert!(g
            .bounds_over(&Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
            .is_none());
    }

    #[test]
    fn positions_outside_domain_clamp() {
        let mut g = grid();
        g.record(Point::new(150.0, -20.0), Point::new(5.0, 5.0));
        let b = g
            .bounds_over(&Rect::from_bounds(90.0, 0.0, 100.0, 10.0))
            .unwrap();
        assert_eq!(b.1, Point::new(5.0, 5.0));
    }
}
