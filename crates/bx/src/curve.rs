//! Space-filling curves over a `2^order × 2^order` cell grid.
//!
//! The Bx-tree linearizes 2-D cell coordinates into 1-D keys with a
//! space-filling curve — the paper uses the Hilbert curve and mentions
//! the Z-curve as the alternative. Both are provided, plus the
//! operation queries depend on: decomposing a rectangular cell window
//! into contiguous curve-value ranges.
//!
//! Both curves share the property that any *aligned* `2^k × 2^k` quad
//! maps to one contiguous, `4^k`-aligned block of curve values, so the
//! decomposition is a quadtree descent. The descent is budgeted: when
//! the range budget runs out, partially covered quads are accepted
//! whole. That only over-approximates the window — harmless, since
//! query results are exact-filtered at the leaves.

/// Curve selection for [`crate::BxConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveKind {
    /// Hilbert curve (the paper's choice; better locality).
    Hilbert,
    /// Z-order (Morton) curve (cheaper encode/decode, worse locality).
    Z,
}

/// A space-filling curve over a square grid of `2^order` cells per
/// axis.
pub trait SpaceFillingCurve {
    /// Bits per axis.
    fn order(&self) -> u32;

    /// Cells per axis (`2^order`).
    fn side(&self) -> u32 {
        1 << self.order()
    }

    /// Maps cell coordinates to a curve value in `[0, 4^order)`.
    fn encode(&self, x: u32, y: u32) -> u64;

    /// Inverse of [`SpaceFillingCurve::encode`].
    fn decode(&self, d: u64) -> (u32, u32);

    /// Decomposes the inclusive cell window `[x0, x1] × [y0, y1]` into
    /// at most `max_ranges` disjoint, sorted, inclusive curve ranges
    /// whose union covers the window (and possibly a little more when
    /// the budget forces coarsening).
    fn ranges(&self, x0: u32, y0: u32, x1: u32, y1: u32, max_ranges: usize) -> Vec<(u64, u64)> {
        debug_assert!(x0 <= x1 && y0 <= y1);
        let side = self.side();
        debug_assert!(x1 < side && y1 < side);
        let mut out: Vec<(u64, u64)> = Vec::new();
        // Quadtree descent. Each frame: an aligned quad (qx, qy, size).
        let mut stack = vec![(0u32, 0u32, side)];
        let mut budget_frames = max_ranges.max(4).saturating_mul(4);
        while let Some((qx, qy, size)) = stack.pop() {
            // Disjoint?
            if qx > x1 || qy > y1 || qx + size - 1 < x0 || qy + size - 1 < y0 {
                continue;
            }
            let fully_inside = qx >= x0 && qy >= y0 && qx + size - 1 <= x1 && qy + size - 1 <= y1;
            let exhausted = budget_frames == 0 || size == 1;
            if fully_inside || (exhausted && size >= 1) {
                // An aligned quad is one contiguous 4^k-aligned block.
                let k2 = (size.trailing_zeros() * 2) as u64;
                let block = 1u64 << k2;
                let base = self.encode(qx, qy) & !(block - 1);
                out.push((base, base + block - 1));
                continue;
            }
            budget_frames -= 1;
            let h = size / 2;
            stack.push((qx, qy, h));
            stack.push((qx + h, qy, h));
            stack.push((qx, qy + h, h));
            stack.push((qx + h, qy + h, h));
        }
        out.sort_unstable();
        // Merge adjacent/overlapping ranges and enforce the budget by
        // bridging the smallest gaps if still over (rare).
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(out.len());
        for (a, b) in out {
            match merged.last_mut() {
                Some((_, pb)) if a <= *pb + 1 => *pb = (*pb).max(b),
                _ => merged.push((a, b)),
            }
        }
        while merged.len() > max_ranges.max(1) {
            // Bridge the smallest gap.
            let mut best = 1usize;
            let mut best_gap = u64::MAX;
            for i in 1..merged.len() {
                let gap = merged[i].0 - merged[i - 1].1;
                if gap < best_gap {
                    best_gap = gap;
                    best = i;
                }
            }
            let (_, b) = merged.remove(best);
            merged[best - 1].1 = merged[best - 1].1.max(b);
        }
        merged
    }
}

/// Z-order (Morton) curve: bit interleaving.
#[derive(Debug, Clone, Copy)]
pub struct ZCurve {
    order: u32,
}

impl ZCurve {
    /// Creates a Z curve with `order` bits per axis (max 31).
    pub fn new(order: u32) -> ZCurve {
        assert!((1..=31).contains(&order), "order out of range");
        ZCurve { order }
    }
}

/// Spreads the low 32 bits of `v` into the even bit positions.
#[inline]
fn interleave_zeros(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`interleave_zeros`].
#[inline]
fn compact_even_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

impl SpaceFillingCurve for ZCurve {
    fn order(&self) -> u32 {
        self.order
    }

    fn encode(&self, x: u32, y: u32) -> u64 {
        debug_assert!(x < self.side() && y < self.side());
        interleave_zeros(x) | (interleave_zeros(y) << 1)
    }

    fn decode(&self, d: u64) -> (u32, u32) {
        (compact_even_bits(d), compact_even_bits(d >> 1))
    }
}

/// Hilbert curve via the classic rotate-and-accumulate algorithm.
#[derive(Debug, Clone, Copy)]
pub struct HilbertCurve {
    order: u32,
}

impl HilbertCurve {
    /// Creates a Hilbert curve with `order` bits per axis (max 31).
    pub fn new(order: u32) -> HilbertCurve {
        assert!((1..=31).contains(&order), "order out of range");
        HilbertCurve { order }
    }

    #[inline]
    fn rot(n: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
        if ry == 0 {
            if rx == 1 {
                *x = n - 1 - *x;
                *y = n - 1 - *y;
            }
            std::mem::swap(x, y);
        }
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn order(&self) -> u32 {
        self.order
    }

    fn encode(&self, x: u32, y: u32) -> u64 {
        debug_assert!(x < self.side() && y < self.side());
        let n = self.side();
        let (mut x, mut y) = (x, y);
        let mut d: u64 = 0;
        let mut s = n / 2;
        while s > 0 {
            let rx = u32::from((x & s) > 0);
            let ry = u32::from((y & s) > 0);
            d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
            Self::rot(n, &mut x, &mut y, rx, ry);
            s /= 2;
        }
        d
    }

    fn decode(&self, d: u64) -> (u32, u32) {
        let n = self.side();
        let (mut x, mut y) = (0u32, 0u32);
        let mut t = d;
        let mut s = 1u32;
        while s < n {
            let rx = (1 & (t / 2)) as u32;
            let ry = (1 & (t ^ rx as u64)) as u32;
            Self::rot(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(c: &impl SpaceFillingCurve) {
        let side = c.side();
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = c.encode(x, y);
                assert!(d < (side as u64) * (side as u64));
                assert!(!seen[d as usize], "duplicate curve value {d}");
                seen[d as usize] = true;
                assert_eq!(c.decode(d), (x, y));
            }
        }
    }

    #[test]
    fn z_curve_bijective() {
        check_bijection(&ZCurve::new(4));
    }

    #[test]
    fn hilbert_bijective() {
        check_bijection(&HilbertCurve::new(4));
    }

    #[test]
    fn hilbert_is_continuous() {
        // Consecutive curve values are adjacent cells — the defining
        // locality property (Z-order does not have it).
        let c = HilbertCurve::new(5);
        let n = (c.side() as u64) * (c.side() as u64);
        let mut prev = c.decode(0);
        for d in 1..n {
            let cur = c.decode(d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(dist, 1, "discontinuity at {d}");
            prev = cur;
        }
    }

    #[test]
    fn z_curve_known_values() {
        let c = ZCurve::new(4);
        assert_eq!(c.encode(0, 0), 0);
        assert_eq!(c.encode(1, 0), 1);
        assert_eq!(c.encode(0, 1), 2);
        assert_eq!(c.encode(1, 1), 3);
        assert_eq!(c.encode(2, 0), 4);
    }

    fn check_ranges_cover(c: &impl SpaceFillingCurve, x0: u32, y0: u32, x1: u32, y1: u32) {
        let ranges = c.ranges(x0, y0, x1, y1, usize::MAX);
        // Disjoint + sorted.
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges overlap or unsorted");
        }
        // Exact cover (unbudgeted): every in-window cell in some range,
        // every range value in the window.
        let total: u64 = ranges.iter().map(|(a, b)| b - a + 1).sum();
        let expect = ((x1 - x0 + 1) as u64) * ((y1 - y0 + 1) as u64);
        assert_eq!(total, expect, "cover size mismatch");
        for x in x0..=x1 {
            for y in y0..=y1 {
                let d = c.encode(x, y);
                assert!(
                    ranges.iter().any(|(a, b)| d >= *a && d <= *b),
                    "cell ({x},{y}) missing"
                );
            }
        }
    }

    #[test]
    fn range_decomposition_exact_for_both_curves() {
        let h = HilbertCurve::new(4);
        let z = ZCurve::new(4);
        for (x0, y0, x1, y1) in [
            (0, 0, 15, 15),
            (3, 5, 9, 12),
            (0, 0, 0, 0),
            (7, 7, 8, 8),
            (0, 14, 15, 15),
            (5, 0, 5, 15),
        ] {
            check_ranges_cover(&h, x0, y0, x1, y1);
            check_ranges_cover(&z, x0, y0, x1, y1);
        }
    }

    #[test]
    fn budgeted_ranges_are_supersets() {
        let h = HilbertCurve::new(6);
        let exact = h.ranges(5, 9, 40, 47, usize::MAX);
        let budgeted = h.ranges(5, 9, 40, 47, 8);
        assert!(budgeted.len() <= 8);
        // Every exact value is inside some budgeted range.
        for (a, b) in &exact {
            for d in [*a, *b] {
                assert!(
                    budgeted.iter().any(|(x, y)| d >= *x && d <= *y),
                    "budgeted ranges dropped value {d}"
                );
            }
        }
    }

    #[test]
    fn hilbert_locality_beats_z() {
        // Average curve-range span for a small window: Hilbert should
        // need no more total span than Z for typical windows.
        let h = HilbertCurve::new(8);
        let z = ZCurve::new(8);
        let mut h_span = 0u64;
        let mut z_span = 0u64;
        for x in (10..200).step_by(37) {
            for y in (10..200).step_by(41) {
                let hr = h.ranges(x, y, x + 6, y + 6, usize::MAX);
                let zr = z.ranges(x, y, x + 6, y + 6, usize::MAX);
                h_span += hr.last().unwrap().1 - hr.first().unwrap().0;
                z_span += zr.last().unwrap().1 - zr.first().unwrap().0;
            }
        }
        assert!(
            h_span <= z_span * 2,
            "hilbert span {h_span} unexpectedly dwarfs z span {z_span}"
        );
    }
}
