//! The Bx-tree read path, shared between the live tree and its
//! lock-free snapshots.
//!
//! `BxView` (crate-private) bundles the query planner's state
//! (configuration, curve, velocity histogram, bucket census) with any
//! `BtreeRead`
//! implementor and runs the window-enlargement planning and the
//! single/batched/incremental query paths against it. The live
//! [`BxTree`] builds a view over its own `BPlusTree` for every query;
//! [`BxSnapshot`] owns a clone of the planner state plus a
//! [`BPlusTreeSnapshot`], so its queries touch no shared mutable state
//! at all and need no coordination with writers mutating the live
//! tree.
//!
//! [`BxTree`]: crate::tree::BxTree

use std::collections::BTreeMap;

use vp_bptree::{BPlusTree, BPlusTreeSnapshot, Key128, Value};
use vp_core::{IndexError, IndexResult, IndexSnapshot, MovingObject, ObjectId, RangeQuery};
use vp_geom::{Point, Rect};
use vp_storage::StorageResult;

use crate::grid::VelocityGrid;
use crate::tree::{subtract_ranges, BxConfig, BxEnlargement, BxTree, CellSpan, Curve};

/// Ordered key access to a B+-tree — implemented by the live
/// [`BPlusTree`] and by [`BPlusTreeSnapshot`], so the Bx-tree query
/// paths are written once and run against either.
pub(crate) trait BtreeRead {
    /// Visits every `(key, value)` with `lo <= key <= hi` in key order.
    fn scan(
        &self,
        lo: Key128,
        hi: Key128,
        f: &mut dyn FnMut(Key128, &Value),
    ) -> StorageResult<usize>;

    /// Answers many key ranges in one shared leaf-chain sweep; contract
    /// as [`BPlusTree::range_scan_batch`].
    fn scan_batch(
        &self,
        ranges: &[(Key128, Key128)],
        f: &mut dyn FnMut(usize, Key128, &Value),
    ) -> StorageResult<usize>;
}

impl BtreeRead for BPlusTree {
    fn scan(
        &self,
        lo: Key128,
        hi: Key128,
        f: &mut dyn FnMut(Key128, &Value),
    ) -> StorageResult<usize> {
        BPlusTree::range_scan(self, lo, hi, f)
    }

    fn scan_batch(
        &self,
        ranges: &[(Key128, Key128)],
        f: &mut dyn FnMut(usize, Key128, &Value),
    ) -> StorageResult<usize> {
        BPlusTree::range_scan_batch(self, ranges, f)
    }
}

impl BtreeRead for BPlusTreeSnapshot {
    fn scan(
        &self,
        lo: Key128,
        hi: Key128,
        f: &mut dyn FnMut(Key128, &Value),
    ) -> StorageResult<usize> {
        BPlusTreeSnapshot::range_scan(self, lo, hi, f)
    }

    fn scan_batch(
        &self,
        ranges: &[(Key128, Key128)],
        f: &mut dyn FnMut(usize, Key128, &Value),
    ) -> StorageResult<usize> {
        BPlusTreeSnapshot::range_scan_batch(self, ranges, f)
    }
}

/// Read-only Bx-tree operations over any `(planner state, B+-tree)`
/// pair: the live tree or a committed snapshot. Semantics (and code)
/// are identical either way — only where the state comes from differs.
pub(crate) struct BxView<'a, B> {
    pub config: &'a BxConfig,
    pub curve: &'a Curve,
    pub hist: &'a VelocityGrid,
    pub buckets: &'a BTreeMap<u64, usize>,
    pub btree: &'a B,
}

impl<'a, B> BxView<'a, B> {
    fn label_of(&self, seq: u64) -> f64 {
        BxTree::label_cfg(self.config, seq)
    }

    fn cell_of(&self, p: Point) -> (u32, u32) {
        BxTree::cell_cfg(self.config, p)
    }

    /// Clamps a window's corners into the domain (degenerating to an
    /// edge strip when fully outside — clamped object cells live there).
    fn clamp_window(&self, w: &Rect) -> Rect {
        let d = &self.config.domain;
        Rect {
            lo: w.lo.max(d.lo).min(d.hi),
            hi: w.hi.max(d.lo).min(d.hi),
        }
    }

    /// The domain rectangle of a histogram cell at a pyramid level,
    /// with edge cells extended to infinity — positions outside the
    /// domain clamp onto the boundary cells of both grids, so those
    /// cells stand in for everything beyond the edge.
    fn hist_cell_rect_extended(&self, level: usize, hx: usize, hy: usize) -> Rect {
        let mut r = self.hist.cell_rect_at(level, hx, hy);
        let n = self.hist.cells_per_axis_at(level);
        if hx == 0 {
            r.lo.x = f64::NEG_INFINITY;
        }
        if hy == 0 {
            r.lo.y = f64::NEG_INFINITY;
        }
        if hx + 1 == n {
            r.hi.x = f64::INFINITY;
        }
        if hy + 1 == n {
            r.hi.y = f64::INFINITY;
        }
        r
    }

    /// Collects the curve-grid regions that could hold a candidate for
    /// one bucket — see the long-form discussion on
    /// [`BxTree::enlarged_windows`] and the module docs of
    /// [`crate::tree`]. Descends the histogram's bounds pyramid,
    /// pruning regions whose coarse velocity bounds cannot reach the
    /// query, and yields each qualifying finest-level cell's curve
    /// cells as one inclusive rectangle.
    ///
    /// Returns `(cell rectangles, bounding box in domain space)`, or
    /// `None` when nothing qualifies.
    pub fn qualifying_regions(
        &self,
        query: &RangeQuery,
        label: f64,
    ) -> Option<(Vec<CellSpan>, Rect)> {
        let samples = BxTree::sample_rects(query, label);
        self.hist.global_bounds()?;
        let mut spans = Vec::new();
        let mut bbox = Rect::EMPTY;
        let root = self.hist.levels() - 1;
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, 0, 0)];
        while let Some((level, hx, hy)) = stack.pop() {
            let Some(bounds) = self.hist.cell_bounds_at(level, hx, hy) else {
                continue;
            };
            let reach = BxTree::reach_bbox(&samples, label, bounds);
            let region = self
                .hist_cell_rect_extended(level, hx, hy)
                .intersection(&reach);
            if region.is_empty() {
                continue;
            }
            if level > 0 {
                let child_n = self.hist.cells_per_axis_at(level - 1);
                for dy in 0..2usize {
                    for dx in 0..2usize {
                        let (cx, cy) = (hx * 2 + dx, hy * 2 + dy);
                        if cx < child_n && cy < child_n {
                            stack.push((level - 1, cx, cy));
                        }
                    }
                }
                continue;
            }
            // Clamping maps out-of-domain strips onto the boundary
            // cells, mirroring how label positions clamp.
            let clamped = self.clamp_window(&region);
            let (cx0, cy0) = self.cell_of(clamped.lo);
            let (cx1, cy1) = self.cell_of(clamped.hi);
            spans.push((cx0, cy0, cx1, cy1));
            bbox = bbox.union(&clamped);
        }
        if spans.is_empty() {
            None
        } else {
            Some((spans, bbox))
        }
    }

    /// The curve-value ranges a query scans in bucket `seq` — the
    /// qualifying-region computation plus the enlargement strategy's
    /// decomposition, shared by the single, batched, and incremental
    /// query paths (all three must agree exactly: the incremental kNN
    /// path subtracts an earlier probe's ranges by recomputing them
    /// through this function). Ranges are disjoint, merged, and
    /// ascending. `None` when no cell qualifies.
    fn scan_ranges(&self, query: &RangeQuery, seq: u64) -> Option<Vec<(u64, u64)>> {
        let label = self.label_of(seq);
        let (spans, _bbox) = self.qualifying_regions(query, label)?;
        let ranges = match self.config.enlargement {
            BxEnlargement::Window => {
                // The paper's single enlarged window: the bounding
                // rectangle of all qualifying cells, decomposed into
                // curve ranges.
                let (mut cx0, mut cy0, mut cx1, mut cy1) = spans[0];
                for &(ax0, ay0, ax1, ay1) in &spans {
                    cx0 = cx0.min(ax0);
                    cy0 = cy0.min(ay0);
                    cx1 = cx1.max(ax1);
                    cy1 = cy1.max(ay1);
                }
                self.curve
                    .ranges(cx0, cy0, cx1, cy1, self.config.max_scan_ranges)
            }
            BxEnlargement::CellSet => {
                // Ablation: linearize exactly the qualifying cells
                // (merge adjacent values; bridge the smallest gaps
                // down to the scan budget).
                let mut values: Vec<u64> = Vec::new();
                for &(ax0, ay0, ax1, ay1) in &spans {
                    for cy in ay0..=ay1 {
                        for cx in ax0..=ax1 {
                            values.push(self.curve.encode(cx, cy));
                        }
                    }
                }
                values.sort_unstable();
                values.dedup();
                let mut ranges: Vec<(u64, u64)> = Vec::new();
                for v in values {
                    match ranges.last_mut() {
                        Some((_, b)) if v <= *b + 1 => *b = (*b).max(v),
                        _ => ranges.push((v, v)),
                    }
                }
                while ranges.len() > self.config.max_scan_ranges.max(1) {
                    let mut best = 1usize;
                    let mut best_gap = u64::MAX;
                    for i in 1..ranges.len() {
                        let gap = ranges[i].0 - ranges[i - 1].1;
                        if gap < best_gap {
                            best_gap = gap;
                            best = i;
                        }
                    }
                    let (_, b) = ranges.remove(best);
                    ranges[best - 1].1 = ranges[best - 1].1.max(b);
                }
                ranges
            }
        };
        Some(ranges)
    }
}

impl<'a, B: BtreeRead> BxView<'a, B> {
    /// Exact range query; contract as
    /// [`vp_core::MovingObjectIndex::range_query`].
    pub fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        for &seq in self.buckets.keys() {
            let Some(ranges) = self.scan_ranges(query, seq) else {
                continue;
            };
            let seq_base = seq << (2 * self.config.lambda);
            for (a, b) in ranges {
                let lo = Key128::new(seq_base | a, 0);
                let hi = Key128::new(seq_base | b, u64::MAX);
                self.btree
                    .scan(lo, hi, &mut |k, v| {
                        let (pos, vel, lab) = BxTree::decode_value(v);
                        let obj = MovingObject::new(k.lo, pos, vel, lab);
                        if query.matches(&obj) {
                            out.push(k.lo);
                        }
                    })
                    .map_err(IndexError::from)?;
            }
        }
        Ok(out)
    }

    /// Shared leaf sweep over the whole batch: every query's curve
    /// ranges are gathered per time bucket and answered through one
    /// [`BPlusTree::range_scan_batch`]-style call, so a leaf page
    /// holding candidates for N overlapping queries is fetched and
    /// decoded once, not N times. Per query the result is identical to
    /// [`BxView::range_query`] — same candidates, same exact filter,
    /// same (key-ascending per bucket) order.
    pub fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        let mut results: Vec<Vec<ObjectId>> = vec![Vec::new(); queries.len()];
        for &seq in self.buckets.keys() {
            let seq_base = seq << (2 * self.config.lambda);
            let mut key_ranges: Vec<(Key128, Key128)> = Vec::new();
            let mut owner: Vec<usize> = Vec::new();
            for (qi, query) in queries.iter().enumerate() {
                let Some(ranges) = self.scan_ranges(query, seq) else {
                    continue;
                };
                for (a, b) in ranges {
                    key_ranges.push((
                        Key128::new(seq_base | a, 0),
                        Key128::new(seq_base | b, u64::MAX),
                    ));
                    owner.push(qi);
                }
            }
            if key_ranges.is_empty() {
                continue;
            }
            // The sweep reports an entry shared by several queries as
            // consecutive calls with the same key: decode it once.
            let mut last: Option<(Key128, MovingObject)> = None;
            self.btree
                .scan_batch(&key_ranges, &mut |ri, k, v| {
                    let qi = owner[ri];
                    let obj = match &last {
                        Some((lk, obj)) if *lk == k => *obj,
                        _ => {
                            let (pos, vel, lab) = BxTree::decode_value(v);
                            let obj = MovingObject::new(k.lo, pos, vel, lab);
                            last = Some((k, obj));
                            obj
                        }
                    };
                    if queries[qi].matches(&obj) {
                        results[qi].push(k.lo);
                    }
                })
                .map_err(IndexError::from)?;
        }
        Ok(results)
    }

    /// Incremental kNN candidates: scans only the **delta ring** — the
    /// current probe's curve ranges minus the ranges the `covered`
    /// probe already swept (recomputed, deterministically, rather than
    /// remembered) — and reports every id in it without exact
    /// filtering; contract as
    /// [`vp_core::MovingObjectIndex::knn_candidates`].
    pub fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        for &seq in self.buckets.keys() {
            let Some(ranges) = self.scan_ranges(query, seq) else {
                continue;
            };
            let ranges = match covered.and_then(|c| self.scan_ranges(c, seq)) {
                Some(done) => subtract_ranges(&ranges, &done),
                None => ranges,
            };
            let seq_base = seq << (2 * self.config.lambda);
            for (a, b) in ranges {
                let lo = Key128::new(seq_base | a, 0);
                let hi = Key128::new(seq_base | b, u64::MAX);
                self.btree
                    .scan(lo, hi, &mut |k, _v| out.push(k.lo))
                    .map_err(IndexError::from)?;
            }
        }
        Ok(out)
    }
}

/// A point-in-time, read-only handle on a [`BxTree`]: the query
/// planner's state as of snapshot creation plus a
/// [`BPlusTreeSnapshot`] serving that epoch's pages.
///
/// Queries run against it with no coordination with — and no
/// visibility into — writers mutating the live tree, and acquire **no
/// shared locks** for pages resident when the snapshot was taken. Safe
/// to share across reader threads. Obtained via
/// [`vp_core::SnapshotIndex::snapshot`] on [`BxTree`].
pub struct BxSnapshot {
    pub(crate) config: BxConfig,
    pub(crate) curve: Curve,
    pub(crate) hist: VelocityGrid,
    pub(crate) buckets: BTreeMap<u64, usize>,
    pub(crate) btree: BPlusTreeSnapshot,
    pub(crate) len: usize,
}

impl BxSnapshot {
    /// The committed pool epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.btree.epoch()
    }

    fn view(&self) -> BxView<'_, BPlusTreeSnapshot> {
        BxView {
            config: &self.config,
            curve: &self.curve,
            hist: &self.hist,
            buckets: &self.buckets,
            btree: &self.btree,
        }
    }
}

impl IndexSnapshot for BxSnapshot {
    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        self.view().range_query(query)
    }

    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        self.view().range_query_batch(queries)
    }

    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        self.view().knn_candidates(query, covered)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use vp_core::{MovingObjectIndex, QueryRegion, SnapshotIndex};
    use vp_geom::Circle;
    use vp_storage::{BufferPool, DiskManager};

    use super::*;
    use crate::tree::BxTree;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(512),
            64,
        ))
    }

    fn small_config() -> BxConfig {
        BxConfig {
            domain: Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0),
            lambda: 8,
            hist_cells: 64,
            ..BxConfig::default()
        }
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x % 1_000_000) as f64 / 1_000_000.0
        }
    }

    fn random_objects(n: usize, seed: u64, max_speed: f64, t: f64) -> Vec<MovingObject> {
        let mut rng = Rng(seed);
        (0..n)
            .map(|i| {
                MovingObject::new(
                    i as u64,
                    Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0),
                    Point::new(
                        (rng.next() - 0.5) * 2.0 * max_speed,
                        (rng.next() - 0.5) * 2.0 * max_speed,
                    ),
                    t,
                )
            })
            .collect()
    }

    fn queries(n: usize, seed: u64, t: f64) -> Vec<RangeQuery> {
        let mut rng = Rng(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
                RangeQuery::time_slice(QueryRegion::Circle(Circle::new(c, 1_100.0)), t)
            })
            .collect()
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BxSnapshot>();
    }

    #[test]
    fn snapshot_isolated_from_later_ticks() {
        let objs = random_objects(600, 0x5EED, 60.0, 0.0);
        let mut t = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let qs = queries(20, 0xCAFE, 10.0);
        let baseline = t.range_query_batch(&qs).unwrap();
        let knn_probe = &qs[0];
        let baseline_knn = t.knn_candidates(knn_probe, None).unwrap();

        let snap = t.snapshot().unwrap();
        assert_eq!(snap.len(), 600);

        // Move every object far into later buckets, add and remove some.
        let moved: Vec<MovingObject> = objs
            .iter()
            .map(|o| MovingObject::new(o.id, o.position_at(90.0), o.vel, 90.0))
            .collect();
        t.update_batch(&moved).unwrap();
        t.delete(0).unwrap();
        t.insert(MovingObject::new(
            7_777,
            Point::new(5_000.0, 5_000.0),
            Point::new(1.0, 1.0),
            90.0,
        ))
        .unwrap();

        // Bit-identical to the quiesced pre-tick answers: same ids,
        // same order.
        assert_eq!(snap.range_query_batch(&qs).unwrap(), baseline);
        for (q, want) in qs.iter().zip(&baseline) {
            assert_eq!(&IndexSnapshot::range_query(&snap, q).unwrap(), want);
        }
        assert_eq!(
            IndexSnapshot::knn_candidates(&snap, knn_probe, None).unwrap(),
            baseline_knn
        );
        assert_eq!(snap.len(), 600, "snapshot census unaffected");

        // A fresh snapshot observes the post-tick state.
        let snap2 = t.snapshot().unwrap();
        assert_eq!(snap2.len(), 600);
        assert_eq!(
            snap2.range_query_batch(&queries(20, 0xCAFE, 95.0)).unwrap(),
            t.range_query_batch(&queries(20, 0xCAFE, 95.0)).unwrap()
        );
    }

    #[test]
    fn snapshot_readable_while_writer_thread_ticks() {
        let objs = random_objects(400, 0xF00D, 50.0, 0.0);
        let mut t = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let qs = queries(8, 0xBEEF, 5.0);
        let baseline = t.range_query_batch(&qs).unwrap();
        let snap = t.snapshot().unwrap();

        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..12 {
                    assert_eq!(snap.range_query_batch(&qs).unwrap(), baseline);
                }
            });
            for round in 1..=5 {
                let at = round as f64 * 25.0;
                let moved: Vec<MovingObject> = objs
                    .iter()
                    .map(|o| MovingObject::new(o.id, o.position_at(at), o.vel, at))
                    .collect();
                t.update_batch(&moved).unwrap();
                t.publish_epoch();
            }
        });
        assert_eq!(t.len(), 400);
    }
}
