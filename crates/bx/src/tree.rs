//! The Bx-tree proper.
//!
//! Key construction (Section 3.2): time is partitioned into buckets of
//! `update_interval / num_buckets` timestamps. An object inserted at
//! time `t` belongs to the bucket containing `t`; its position is
//! projected forward to the bucket's *label timestamp* (the bucket's
//! end), mapped to a grid cell, and linearized by a space-filling
//! curve. The B+-tree key is `(bucket_seq ‖ curve_value, object_id)` —
//! packing the object id into the key's low half sidesteps duplicate
//! keys when objects share a cell.
//!
//! Queries enlarge their window per live bucket: the window is pushed
//! to the bucket's label time using min/max velocities from the
//! velocity histogram. Rather than one global enlargement, each
//! histogram cell is qualified with *its own* recorded velocity bounds
//! (the refinement spirit of Jensen et al., MDM 2006 — reference \[14\]
//! of the paper), so a distant speeder cannot inflate unrelated
//! queries. The qualifying cells decompose into contiguous curve
//! ranges scanned on the B+-tree, and candidates are exact-filtered.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use vp_bptree::{BPlusTree, BatchOp, Key128, Value};
use vp_core::{
    IndexError, IndexResult, MovingObject, MovingObjectIndex, ObjectId, RangeQuery, SnapshotIndex,
};
use vp_geom::{Point, Rect, Vec2};
use vp_storage::{BufferPool, IoStats};

use crate::curve::{CurveKind, HilbertCurve, SpaceFillingCurve, ZCurve};
use crate::grid::VelocityGrid;
use crate::snapshot::{BxSnapshot, BxView};

/// Bx-tree configuration.
#[derive(Debug, Clone)]
pub struct BxConfig {
    /// Data domain mapped onto the curve grid.
    pub domain: Rect,
    /// Bits per axis of the curve grid (`2^lambda` cells per axis).
    pub lambda: u32,
    /// Space-filling curve (the paper uses Hilbert).
    pub curve: CurveKind,
    /// Number of time buckets (the paper uses 2).
    pub num_buckets: u32,
    /// Maximum update interval Δt_mu (paper Table 1: 120 ts).
    pub update_interval: f64,
    /// Velocity histogram cells per axis (paper: 1000).
    pub hist_cells: usize,
    /// Budget of contiguous curve ranges scanned per bucket per query.
    pub max_scan_ranges: usize,
    /// How the enlarged region is turned into B+-tree scans.
    pub enlargement: BxEnlargement,
}

/// Strategy for scanning the velocity-enlarged query region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BxEnlargement {
    /// Scan the single bounding window of all qualifying cells — the
    /// paper's behaviour ("the enlarged query window"), including its
    /// drawback that a few fast objects make the window unnecessarily
    /// large for everyone else.
    Window,
    /// Scan only the qualifying cells themselves (tighter; an
    /// improvement over the paper, kept as an ablation).
    CellSet,
}

impl Default for BxConfig {
    fn default() -> Self {
        BxConfig {
            domain: Rect::from_bounds(0.0, 0.0, 100_000.0, 100_000.0),
            lambda: 10,
            curve: CurveKind::Hilbert,
            num_buckets: 2,
            update_interval: 120.0,
            hist_cells: 1000,
            max_scan_ranges: 16,
            enlargement: BxEnlargement::Window,
        }
    }
}

pub(crate) enum Curve {
    Hilbert(HilbertCurve),
    Z(ZCurve),
}

impl Curve {
    pub(crate) fn encode(&self, x: u32, y: u32) -> u64 {
        match self {
            Curve::Hilbert(c) => c.encode(x, y),
            Curve::Z(c) => c.encode(x, y),
        }
    }

    pub(crate) fn ranges(&self, x0: u32, y0: u32, x1: u32, y1: u32, max: usize) -> Vec<(u64, u64)> {
        match self {
            Curve::Hilbert(c) => c.ranges(x0, y0, x1, y1, max),
            Curve::Z(c) => c.ranges(x0, y0, x1, y1, max),
        }
    }
}

/// An inclusive rectangle of qualifying curve-grid cells,
/// `(cx0, cy0, cx1, cy1)`.
pub(crate) type CellSpan = (u32, u32, u32, u32);

/// One bucket's enlarged query window (diagnostics for the paper's
/// Figure 7: query expansion rates).
#[derive(Debug, Clone, Copy)]
pub struct EnlargedWindow {
    /// Bucket sequence number.
    pub bucket_seq: u64,
    /// The bucket's label timestamp.
    pub label: f64,
    /// Query window before enlargement.
    pub base: Rect,
    /// Window after velocity enlargement to the label timestamp.
    pub enlarged: Rect,
}

/// The Bx-tree, a [`MovingObjectIndex`] over a paged B+-tree.
pub struct BxTree {
    config: BxConfig,
    curve: Curve,
    btree: BPlusTree,
    hist: VelocityGrid,
    /// Live object count per bucket sequence number.
    buckets: BTreeMap<u64, usize>,
    /// Lookup table: object id -> its current B+-tree key.
    keys: HashMap<ObjectId, Key128>,
    now: f64,
}

impl BxTree {
    fn validate_config(config: &BxConfig) {
        assert!(
            config.lambda >= 1 && config.lambda <= 20,
            "lambda out of range"
        );
        assert!(config.num_buckets >= 1, "need at least one time bucket");
        assert!(
            config.update_interval > 0.0,
            "update interval must be positive"
        );
    }

    fn make_curve(config: &BxConfig) -> Curve {
        match config.curve {
            CurveKind::Hilbert => Curve::Hilbert(HilbertCurve::new(config.lambda)),
            CurveKind::Z => Curve::Z(ZCurve::new(config.lambda)),
        }
    }

    /// Creates an empty Bx-tree over the shared buffer pool.
    pub fn new(pool: Arc<BufferPool>, config: BxConfig) -> IndexResult<BxTree> {
        Self::validate_config(&config);
        let curve = Self::make_curve(&config);
        let hist = VelocityGrid::new(config.domain, config.hist_cells);
        let btree = BPlusTree::new(pool)?;
        Ok(BxTree {
            config,
            curve,
            btree,
            hist,
            buckets: BTreeMap::new(),
            keys: HashMap::new(),
            now: 0.0,
        })
    }

    /// Builds a Bx-tree from a snapshot of objects via B+-tree bulk
    /// loading: every object's key is computed up front, the entries
    /// are sorted once, and the underlying tree is packed
    /// left-to-right without any per-object root descent. Equivalent
    /// to inserting every object individually, much cheaper.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        config: BxConfig,
        objects: &[MovingObject],
    ) -> IndexResult<BxTree> {
        Self::validate_config(&config);
        let curve = Self::make_curve(&config);
        let mut hist = VelocityGrid::new(config.domain, config.hist_cells);
        let mut keys = HashMap::with_capacity(objects.len());
        let mut buckets = BTreeMap::new();
        let mut entries: Vec<(Key128, Value)> = Vec::with_capacity(objects.len());
        let mut now = 0.0f64;
        for obj in objects {
            now = now.max(obj.ref_time);
            let seq = Self::bucket_seq_cfg(&config, obj.ref_time);
            let label = Self::label_cfg(&config, seq);
            let pos_label = obj.position_at(label);
            let (cx, cy) = Self::cell_cfg(&config, pos_label);
            let key = Self::make_key_cfg(&config, seq, curve.encode(cx, cy), obj.id);
            if keys.insert(obj.id, key).is_some() {
                return Err(IndexError::DuplicateObject(obj.id));
            }
            *buckets.entry(seq).or_insert(0) += 1;
            hist.record(pos_label, obj.vel);
            entries.push((key, Self::encode_value(pos_label, obj.vel, label)));
        }
        entries.sort_unstable_by_key(|(k, _)| *k);
        let btree = BPlusTree::bulk_load(pool, entries).map_err(IndexError::from)?;
        Ok(BxTree {
            config,
            curve,
            btree,
            hist,
            buckets,
            keys,
            now,
        })
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BxConfig {
        &self.config
    }

    /// Height of the underlying B+-tree.
    pub fn btree_height(&self) -> u8 {
        self.btree.height()
    }

    /// Bucket duration Δt_mu / n.
    fn bucket_duration_cfg(config: &BxConfig) -> f64 {
        config.update_interval / config.num_buckets as f64
    }

    /// The bucket holding insertion time `t` (1-based so label > t - ε).
    fn bucket_seq_cfg(config: &BxConfig, t: f64) -> u64 {
        (t / Self::bucket_duration_cfg(config)).floor() as u64 + 1
    }

    fn bucket_seq(&self, t: f64) -> u64 {
        Self::bucket_seq_cfg(&self.config, t)
    }

    /// Label timestamp (end) of a bucket.
    pub(crate) fn label_cfg(config: &BxConfig, seq: u64) -> f64 {
        seq as f64 * Self::bucket_duration_cfg(config)
    }

    fn label_of(&self, seq: u64) -> f64 {
        Self::label_cfg(&self.config, seq)
    }

    /// Cell coordinates of a position on the curve grid (clamped).
    pub(crate) fn cell_cfg(config: &BxConfig, p: Point) -> (u32, u32) {
        let side = (1u32 << config.lambda) as f64;
        let d = &config.domain;
        let fx = ((p.x - d.lo.x) / d.width()).clamp(0.0, 1.0);
        let fy = ((p.y - d.lo.y) / d.height()).clamp(0.0, 1.0);
        let cx = ((fx * side) as u32).min(side as u32 - 1);
        let cy = ((fy * side) as u32).min(side as u32 - 1);
        (cx, cy)
    }

    fn cell_of(&self, p: Point) -> (u32, u32) {
        Self::cell_cfg(&self.config, p)
    }

    fn make_key_cfg(config: &BxConfig, seq: u64, curve_value: u64, id: ObjectId) -> Key128 {
        Key128::new((seq << (2 * config.lambda)) | curve_value, id)
    }

    fn make_key(&self, seq: u64, curve_value: u64, id: ObjectId) -> Key128 {
        Self::make_key_cfg(&self.config, seq, curve_value, id)
    }

    /// The bucket sequence number packed into a B+-tree key.
    fn seq_of_key(&self, key: Key128) -> u64 {
        key.hi >> (2 * self.config.lambda)
    }

    /// Drops one object from a bucket's live count.
    fn bucket_decrement(&mut self, seq: u64) {
        if let Some(n) = self.buckets.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                self.buckets.remove(&seq);
            }
        }
    }

    fn encode_value(pos: Point, vel: Vec2, label: f64) -> Value {
        let mut v = [0u8; vp_bptree::VALUE_LEN];
        v[0..8].copy_from_slice(&pos.x.to_le_bytes());
        v[8..16].copy_from_slice(&pos.y.to_le_bytes());
        v[16..24].copy_from_slice(&vel.x.to_le_bytes());
        v[24..32].copy_from_slice(&vel.y.to_le_bytes());
        v[32..40].copy_from_slice(&label.to_le_bytes());
        v
    }

    pub(crate) fn decode_value(v: &Value) -> (Point, Vec2, f64) {
        let f = |r: std::ops::Range<usize>| f64::from_le_bytes(v[r].try_into().unwrap());
        (
            Point::new(f(0..8), f(8..16)),
            Point::new(f(16..24), f(24..32)),
            f(32..40),
        )
    }

    /// Per-axis window enlargement: where must an object indexed at the
    /// label time have been, given it lies in `rect` at the query time
    /// and moves within `bounds`? (`s` = label − query time; both signs
    /// supported.)
    fn enlarge(rect: &Rect, s: f64, bounds: (Vec2, Vec2)) -> Rect {
        let (vlo, vhi) = bounds;
        let lo_shift = |vl: f64, vh: f64| (vl * s).min(vh * s);
        let hi_shift = |vl: f64, vh: f64| (vl * s).max(vh * s);
        Rect {
            lo: Point::new(
                rect.lo.x + lo_shift(vlo.x, vhi.x),
                rect.lo.y + lo_shift(vlo.y, vhi.y),
            ),
            hi: Point::new(
                rect.hi.x + hi_shift(vlo.x, vhi.x),
                rect.hi.y + hi_shift(vlo.y, vhi.y),
            ),
        }
    }

    /// Sample times at which the enlargement must be evaluated so that
    /// its bounding box covers every instant of the query window. The
    /// reach rectangle's corners are piecewise-linear in `t` with a
    /// single kink at `t = label` (where the enlargement changes sign),
    /// so the endpoints plus that kink suffice.
    pub(crate) fn sample_rects(query: &RangeQuery, label: f64) -> Vec<(f64, Rect)> {
        let region = query.region.bounding_rect();
        let rect_at = |te: f64| -> Rect {
            let d = query.velocity * (te - query.region_ref_time);
            Rect {
                lo: region.lo + d,
                hi: region.hi + d,
            }
        };
        let mut times = vec![query.t_start];
        if !query.is_time_slice() {
            times.push(query.t_end);
            if label > query.t_start && label < query.t_end {
                times.push(label);
            }
        }
        times.into_iter().map(|t| (t, rect_at(t))).collect()
    }

    /// Bounding box of the enlargement over all sample times for the
    /// given velocity bounds — a sound superset of where a candidate's
    /// label position can be.
    pub(crate) fn reach_bbox(samples: &[(f64, Rect)], label: f64, bounds: (Vec2, Vec2)) -> Rect {
        let mut w = Rect::EMPTY;
        for (te, r) in samples {
            w = w.union(&Self::enlarge(r, label - te, bounds));
        }
        w
    }

    /// A read view over the live planner state and B+-tree — the
    /// machinery shared with [`BxSnapshot`]; see [`crate::snapshot`].
    fn view(&self) -> BxView<'_, BPlusTree> {
        BxView {
            config: &self.config,
            curve: &self.curve,
            hist: &self.hist,
            buckets: &self.buckets,
            btree: &self.btree,
        }
    }

    /// The enlarged windows a query would scan, per live bucket —
    /// diagnostics for the paper's Figure 7 (query expansion rates).
    /// `enlarged` is the bounding box of the qualifying cells: a curve
    /// cell qualifies when an object indexed there (its label position
    /// falls in the cell) moving within the velocity bounds *recorded
    /// for its histogram cell* could intersect the query region at
    /// some endpoint — the "enlarge according to the max/min velocity
    /// in the region it covers" rule of Section 3.2, evaluated per
    /// histogram cell. This is sound (every candidate's label position
    /// lies in exactly one histogram cell, whose bounds cover its
    /// velocity) and keeps a distant speeder from inflating unrelated
    /// queries.
    pub fn enlarged_windows(&self, query: &RangeQuery) -> Vec<EnlargedWindow> {
        let region = query.region.bounding_rect();
        let view = self.view();
        self.buckets
            .keys()
            .filter_map(|&seq| {
                let label = self.label_of(seq);
                view.qualifying_regions(query, label)
                    .map(|(_, bbox)| EnlargedWindow {
                        bucket_seq: seq,
                        label,
                        base: region,
                        enlarged: bbox,
                    })
            })
            .collect()
    }

    /// Rebuilds the velocity histogram from the indexed objects
    /// (supports the periodic-rebuild maintenance strategy; deletions
    /// otherwise leave the histogram conservatively loose).
    pub fn rebuild_histogram(&mut self) -> IndexResult<()> {
        self.hist.reset();
        let mut records = Vec::with_capacity(self.keys.len());
        self.btree
            .range_scan(Key128::MIN, Key128::MAX, |_k, v| {
                let (pos, vel, _label) = Self::decode_value(v);
                records.push((pos, vel));
            })
            .map_err(IndexError::from)?;
        for (pos, vel) in records {
            self.hist.record(pos, vel);
        }
        Ok(())
    }
}

impl MovingObjectIndex for BxTree {
    fn insert(&mut self, obj: MovingObject) -> IndexResult<()> {
        if self.keys.contains_key(&obj.id) {
            return Err(IndexError::DuplicateObject(obj.id));
        }
        self.now = self.now.max(obj.ref_time);
        let seq = self.bucket_seq(obj.ref_time);
        let label = self.label_of(seq);
        let pos_label = obj.position_at(label);
        let (cx, cy) = self.cell_of(pos_label);
        let key = self.make_key(seq, self.curve.encode(cx, cy), obj.id);
        let value = Self::encode_value(pos_label, obj.vel, label);
        self.btree.insert(key, value).map_err(IndexError::from)?;
        self.keys.insert(obj.id, key);
        *self.buckets.entry(seq).or_insert(0) += 1;
        self.hist.record(pos_label, obj.vel);
        Ok(())
    }

    fn delete(&mut self, id: ObjectId) -> IndexResult<()> {
        let Some(key) = self.keys.remove(&id) else {
            return Err(IndexError::UnknownObject(id));
        };
        let found = self.btree.delete(key).map_err(IndexError::from)?;
        debug_assert!(found, "lookup table out of sync with B+-tree");
        let seq = self.seq_of_key(key);
        self.bucket_decrement(seq);
        Ok(())
    }

    /// Batched per-tick maintenance: the implied delete-old-key /
    /// insert-new-key pairs of the whole tick are gathered, sorted
    /// into B+-tree key order, and applied through
    /// [`BPlusTree::apply_batch`] — one descent and one page write per
    /// touched leaf instead of per object. Objects whose key is
    /// unchanged (same bucket, same curve cell) degenerate to an
    /// in-place value overwrite.
    fn update_batch(&mut self, updates: &[MovingObject]) -> IndexResult<()> {
        // Last write wins within one tick.
        let mut latest: HashMap<ObjectId, usize> = HashMap::with_capacity(updates.len());
        for (i, obj) in updates.iter().enumerate() {
            latest.insert(obj.id, i);
        }
        let mut ops: Vec<(Key128, BatchOp)> = Vec::with_capacity(updates.len() * 2);
        for (i, obj) in updates.iter().enumerate() {
            if latest[&obj.id] != i {
                continue;
            }
            self.now = self.now.max(obj.ref_time);
            let seq = self.bucket_seq(obj.ref_time);
            let label = self.label_of(seq);
            let pos_label = obj.position_at(label);
            let (cx, cy) = self.cell_of(pos_label);
            let new_key = self.make_key(seq, self.curve.encode(cx, cy), obj.id);
            let value = Self::encode_value(pos_label, obj.vel, label);
            match self.keys.insert(obj.id, new_key) {
                Some(old_key) if old_key != new_key => {
                    ops.push((old_key, BatchOp::Delete));
                    let old_seq = self.seq_of_key(old_key);
                    self.bucket_decrement(old_seq);
                    *self.buckets.entry(seq).or_insert(0) += 1;
                }
                Some(_) => {} // same cell and bucket: value overwrite
                None => *self.buckets.entry(seq).or_insert(0) += 1,
            }
            ops.push((new_key, BatchOp::Put(value)));
            self.hist.record(pos_label, obj.vel);
        }
        // Keys are unique across ops: every key carries its object id
        // in the low half, and per object old != new here.
        ops.sort_unstable_by_key(|(k, _)| *k);
        let out = self.btree.apply_batch(&ops).map_err(IndexError::from)?;
        debug_assert_eq!(out.missing, 0, "lookup table out of sync with B+-tree");
        Ok(())
    }

    /// Batched deletion: all doomed keys are sorted and removed in one
    /// leaf walk via [`BPlusTree::apply_batch`].
    fn remove_batch(&mut self, ids: &[ObjectId]) -> IndexResult<()> {
        // Resolve every id before mutating any bookkeeping, so an
        // unknown or duplicated id rejects the whole batch and leaves
        // the index untouched.
        let mut ops: Vec<(Key128, BatchOp)> = Vec::with_capacity(ids.len());
        for &id in ids {
            let Some(&key) = self.keys.get(&id) else {
                return Err(IndexError::UnknownObject(id));
            };
            ops.push((key, BatchOp::Delete));
        }
        ops.sort_unstable_by_key(|(k, _)| *k);
        if let Some(w) = ops.windows(2).find(|w| w[0].0 == w[1].0) {
            // Keys embed the object id, so equal keys = duplicated id.
            return Err(IndexError::DuplicateObject(w[0].0.lo));
        }
        for &id in ids {
            let key = self.keys.remove(&id).expect("resolved above");
            let seq = self.seq_of_key(key);
            self.bucket_decrement(seq);
        }
        let out = self.btree.apply_batch(&ops).map_err(IndexError::from)?;
        debug_assert_eq!(
            out.deleted,
            ops.len(),
            "lookup table out of sync with B+-tree"
        );
        Ok(())
    }

    fn range_query(&self, query: &RangeQuery) -> IndexResult<Vec<ObjectId>> {
        self.view().range_query(query)
    }

    /// Shared leaf sweep over the whole batch: every query's curve
    /// ranges are gathered per time bucket and answered through one
    /// [`BPlusTree::range_scan_batch`] call, so a leaf page holding
    /// candidates for N overlapping queries is fetched and decoded
    /// once, not N times. Per query the result is identical to
    /// [`MovingObjectIndex::range_query`] — same candidates, same
    /// exact filter, same (key-ascending per bucket) order.
    fn range_query_batch(&self, queries: &[RangeQuery]) -> IndexResult<Vec<Vec<ObjectId>>> {
        self.view().range_query_batch(queries)
    }

    /// Incremental kNN candidates: scans only the **delta ring** —
    /// the current probe's curve ranges minus the ranges the
    /// `covered` probe already swept (recomputed, deterministically,
    /// rather than remembered) — and reports every id in it without
    /// exact filtering. Everything inside the covered ranges was
    /// already reported by the earlier rounds of the chain, so the
    /// union-over-rounds contract of
    /// [`MovingObjectIndex::knn_candidates`] holds while each
    /// enlargement round reads only the pages of its ring.
    fn knn_candidates(
        &self,
        query: &RangeQuery,
        covered: Option<&RangeQuery>,
    ) -> IndexResult<Vec<ObjectId>> {
        self.view().knn_candidates(query, covered)
    }

    fn get_object(&self, id: ObjectId) -> IndexResult<Option<MovingObject>> {
        let Some(key) = self.keys.get(&id) else {
            return Ok(None);
        };
        // Propagate storage errors instead of collapsing them into
        // "absent": a known key whose leaf read fails is an I/O
        // failure, not a miss.
        let Some(value) = self.btree.get(*key).map_err(IndexError::from)? else {
            return Ok(None);
        };
        let (pos, vel, label) = Self::decode_value(&value);
        Ok(Some(MovingObject::new(id, pos, vel, label)))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn io_stats(&self) -> IoStats {
        self.btree.io_stats()
    }

    fn reset_io_stats(&self) {
        self.btree.reset_io_stats();
    }

    fn flush_storage(&self) -> IndexResult<()> {
        self.btree.checkpoint().map_err(IndexError::from)
    }

    fn publish_epoch(&self) {
        self.btree.publish_epoch();
    }
}

impl SnapshotIndex for BxTree {
    type Snapshot = BxSnapshot;

    /// Captures the tree's current state: the query planner's state
    /// (configuration, curve, velocity histogram, bucket census) is
    /// cloned under `&self`, and the underlying B+-tree publishes its
    /// writes as a fresh committed pool epoch and pins it. Cheap — no
    /// page copies; resident pages are shared by refcount.
    fn snapshot(&self) -> IndexResult<BxSnapshot> {
        Ok(BxSnapshot {
            config: self.config.clone(),
            curve: Self::make_curve(&self.config),
            hist: self.hist.clone(),
            buckets: self.buckets.clone(),
            btree: self.btree.snapshot(),
            len: self.keys.len(),
        })
    }
}

/// Interval-set difference `a \ b` over inclusive `(lo, hi)` u64
/// ranges. Both inputs must be disjoint and ascending (the shape
/// the scan-range decomposition produces); the result is too.
pub(crate) fn subtract_ranges(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(a.len());
    let mut bi = 0usize;
    for &(alo, ahi) in a {
        // Blockers entirely before this range can never matter again.
        while bi < b.len() && b[bi].1 < alo {
            bi += 1;
        }
        let mut lo = alo;
        let mut covered_tail = false;
        // A blocker may span several `a` ranges, so scan from `bi`
        // without consuming it.
        let mut j = bi;
        while let Some(&(blo, bhi)) = b.get(j) {
            if blo > ahi {
                break;
            }
            if lo < blo {
                out.push((lo, blo - 1));
            }
            if bhi >= ahi {
                covered_tail = true;
                break;
            }
            lo = bhi + 1;
            j += 1;
        }
        if !covered_tail && lo <= ahi {
            out.push((lo, ahi));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_core::QueryRegion;
    use vp_geom::Circle;
    use vp_storage::DiskManager;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_capacity(
            DiskManager::with_page_size(512),
            64,
        ))
    }

    fn small_config() -> BxConfig {
        BxConfig {
            domain: Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0),
            lambda: 8,
            hist_cells: 64,
            ..BxConfig::default()
        }
    }

    fn tree() -> BxTree {
        BxTree::new(pool(), small_config()).unwrap()
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BxTree>();
    }

    fn obj(id: u64, x: f64, y: f64, vx: f64, vy: f64, t: f64) -> MovingObject {
        MovingObject::new(id, Point::new(x, y), Point::new(vx, vy), t)
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x % 1_000_000) as f64 / 1_000_000.0
        }
    }

    fn random_objects(n: usize, seed: u64, max_speed: f64, t: f64) -> Vec<MovingObject> {
        let mut rng = Rng(seed);
        (0..n as u64)
            .map(|id| {
                let x = rng.next() * 10_000.0;
                let y = rng.next() * 10_000.0;
                let ang = rng.next() * std::f64::consts::TAU;
                let speed = rng.next() * max_speed;
                obj(id, x, y, ang.cos() * speed, ang.sin() * speed, t)
            })
            .collect()
    }

    #[test]
    fn bucket_and_label_arithmetic() {
        let t = tree();
        // Default: 120 / 2 = 60 ts buckets.
        assert_eq!(t.bucket_seq(0.0), 1);
        assert_eq!(t.label_of(t.bucket_seq(0.0)), 60.0);
        assert_eq!(t.bucket_seq(59.9), 1);
        assert_eq!(t.bucket_seq(60.0), 2);
        assert_eq!(t.label_of(t.bucket_seq(60.0)), 120.0);
    }

    #[test]
    fn insert_query_basic() {
        let mut t = tree();
        t.insert(obj(1, 5_000.0, 5_000.0, 10.0, 0.0, 0.0)).unwrap();
        t.insert(obj(2, 1_000.0, 1_000.0, 0.0, 0.0, 0.0)).unwrap();
        assert_eq!(t.len(), 2);
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 100.0)),
            0.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![1]);
        // Predictive query at t=50: object 1 has moved 500 m right.
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_500.0, 5_000.0), 100.0)),
            50.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![1]);
    }

    #[test]
    fn duplicate_and_unknown_errors() {
        let mut t = tree();
        t.insert(obj(1, 0.0, 0.0, 0.0, 0.0, 0.0)).unwrap();
        assert!(matches!(
            t.insert(obj(1, 1.0, 1.0, 0.0, 0.0, 0.0)),
            Err(IndexError::DuplicateObject(1))
        ));
        assert!(matches!(t.delete(7), Err(IndexError::UnknownObject(7))));
    }

    #[test]
    fn matches_scan_on_random_workload() {
        let mut t = tree();
        let objs = random_objects(500, 0xB0B, 100.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x9);
        for qi in 0..40 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let tq = (qi % 7) as f64 * 10.0;
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(c, 600.0)), tq);
            let mut got = t.range_query(&q).unwrap();
            let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} (t={tq}) diverged");
        }
    }

    #[test]
    fn objects_in_multiple_buckets() {
        let mut t = tree();
        // Insert at different times spanning several buckets.
        let mut all = Vec::new();
        for (i, ti) in [(0u64, 0.0), (1, 30.0), (2, 61.0), (3, 100.0), (4, 125.0)] {
            let o = obj(i, 3_000.0 + i as f64 * 10.0, 3_000.0, 5.0, 5.0, ti);
            t.insert(o).unwrap();
            all.push(o);
        }
        assert!(t.buckets.len() >= 2, "expected several live buckets");
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(3_700.0, 3_650.0), 800.0)),
            130.0,
        );
        let mut got = t.range_query(&q).unwrap();
        let mut want: Vec<u64> = all.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert!(!want.is_empty(), "test should have matches");
        assert_eq!(got, want);
    }

    #[test]
    fn interval_and_moving_queries() {
        let mut t = tree();
        let objs = random_objects(300, 0x77AA, 80.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x31337);
        for qi in 0..30 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let region = QueryRegion::Rect(Rect::centered(c, 400.0, 400.0));
            let q = if qi % 2 == 0 {
                RangeQuery::time_interval(region, 5.0, 40.0)
            } else {
                RangeQuery::moving(
                    region,
                    Point::new(rng.next() * 40.0 - 20.0, 10.0),
                    5.0,
                    40.0,
                )
            };
            let mut got = t.range_query(&q).unwrap();
            let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} diverged");
        }
    }

    #[test]
    fn update_migrates_to_new_bucket() {
        let mut t = tree();
        t.insert(obj(1, 5_000.0, 5_000.0, 20.0, 0.0, 10.0)).unwrap();
        let seq_before = *t.buckets.keys().next().unwrap();
        // Update well into a later bucket.
        t.update(obj(1, 6_400.0, 5_000.0, -20.0, 0.0, 80.0))
            .unwrap();
        let seq_after = *t.buckets.keys().next().unwrap();
        assert!(seq_after > seq_before);
        assert_eq!(t.len(), 1);
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(6_000.0, 5_000.0), 50.0)),
            100.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![1]);
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let objs = random_objects(700, 0xB17, 80.0, 15.0);
        let bulk = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let mut incr = tree();
        for o in &objs {
            incr.insert(*o).unwrap();
        }
        assert_eq!(bulk.len(), incr.len());
        let mut rng = Rng(0x41);
        for qi in 0..30 {
            let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
            let q = RangeQuery::time_slice(
                QueryRegion::Circle(Circle::new(c, 900.0)),
                20.0 + (qi % 5) as f64 * 10.0,
            );
            let mut a = bulk.range_query(&q).unwrap();
            let mut b = incr.range_query(&q).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {qi} diverged");
        }
        // Bulk-loaded trees accept further maintenance.
        let mut bulk = bulk;
        bulk.delete(0).unwrap();
        bulk.insert(obj(9_000, 5_000.0, 5_000.0, 1.0, 1.0, 15.0))
            .unwrap();
        assert_eq!(bulk.len(), incr.len());
    }

    #[test]
    fn bulk_load_rejects_duplicate_ids() {
        let objs = vec![
            obj(1, 100.0, 100.0, 1.0, 0.0, 0.0),
            obj(1, 200.0, 200.0, 0.0, 1.0, 0.0),
        ];
        assert!(matches!(
            BxTree::bulk_load(pool(), small_config(), &objs),
            Err(IndexError::DuplicateObject(1))
        ));
    }

    #[test]
    fn update_batch_matches_looped_updates() {
        let objs = random_objects(500, 0x600D, 60.0, 0.0);
        let mut batched = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let mut looped = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let mut current = objs;
        for tick in 1..=5 {
            let t = tick as f64 * 25.0; // crosses bucket boundaries
            let mut updates = Vec::new();
            for o in current.iter_mut() {
                if o.id % 4 == tick % 4 {
                    *o = MovingObject::new(o.id, o.position_at(t), o.vel, t);
                    updates.push(*o);
                }
            }
            // Plus a brand-new object (upsert path).
            let fresh = obj(10_000 + tick, 4_000.0, 4_000.0, 10.0, -5.0, t);
            updates.push(fresh);
            current.push(fresh);

            batched.update_batch(&updates).unwrap();
            for u in &updates {
                if looped.get_object(u.id).unwrap().is_some() {
                    looped.update(*u).unwrap();
                } else {
                    looped.insert(*u).unwrap();
                }
            }
            assert_eq!(batched.len(), looped.len(), "tick {tick}");

            let mut rng = Rng(tick * 77 + 1);
            for qi in 0..10 {
                let c = Point::new(rng.next() * 10_000.0, rng.next() * 10_000.0);
                let q =
                    RangeQuery::time_slice(QueryRegion::Circle(Circle::new(c, 1_200.0)), t + 5.0);
                let mut a = batched.range_query(&q).unwrap();
                let mut b = looped.range_query(&q).unwrap();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "tick {tick} query {qi} diverged");
            }
        }
    }

    #[test]
    fn update_batch_writes_fewer_pages_than_looped_updates() {
        let objs = random_objects(2_000, 0x10A, 50.0, 0.0);
        let mut batched = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let mut looped = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let updates: Vec<MovingObject> = objs
            .iter()
            .map(|o| MovingObject::new(o.id, o.position_at(70.0), o.vel, 70.0))
            .collect();

        batched.reset_io_stats();
        batched.update_batch(&updates).unwrap();
        let batch_writes = batched.io_stats().logical_writes;

        looped.reset_io_stats();
        for u in &updates {
            looped.update(*u).unwrap();
        }
        let loop_writes = looped.io_stats().logical_writes;
        assert!(
            batch_writes < loop_writes,
            "batched {batch_writes} page writes vs looped {loop_writes}"
        );
    }

    #[test]
    fn update_batch_last_write_wins() {
        let mut t = tree();
        t.update_batch(&[
            obj(7, 1_000.0, 1_000.0, 5.0, 0.0, 0.0),
            obj(7, 8_000.0, 8_000.0, 0.0, 5.0, 0.0),
        ])
        .unwrap();
        assert_eq!(t.len(), 1);
        let got = t.get_object(7).unwrap().unwrap();
        assert!(got.pos.x > 7_000.0, "last update should win: {got:?}");
    }

    #[test]
    fn remove_batch_clears_objects_and_buckets() {
        let objs = random_objects(300, 0xDEAD, 40.0, 0.0);
        let mut t = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        let doomed: Vec<u64> = (0..150).collect();
        t.remove_batch(&doomed).unwrap();
        assert_eq!(t.len(), 150);
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)),
            0.0,
        );
        let got = t.range_query(&q).unwrap();
        assert_eq!(got.len(), 150);
        assert!(got.iter().all(|id| *id >= 150));
        assert!(matches!(
            t.remove_batch(&[0]),
            Err(IndexError::UnknownObject(0))
        ));
    }

    #[test]
    fn remove_batch_is_atomic_on_bad_input() {
        let objs = random_objects(50, 0xA70, 30.0, 0.0);
        let mut t = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        // One unknown id: nothing may change.
        assert!(matches!(
            t.remove_batch(&[1, 2, 999]),
            Err(IndexError::UnknownObject(999))
        ));
        assert_eq!(t.len(), 50);
        assert!(t.get_object(1).unwrap().is_some() && t.get_object(2).unwrap().is_some());
        // A duplicated id: same guarantee.
        assert!(matches!(
            t.remove_batch(&[3, 4, 3]),
            Err(IndexError::DuplicateObject(3))
        ));
        assert_eq!(t.len(), 50);
        assert!(t.get_object(3).unwrap().is_some());
        // Queries still see everything.
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)),
            0.0,
        );
        assert_eq!(t.range_query(&q).unwrap().len(), 50);
    }

    #[test]
    fn delete_then_absent_from_queries() {
        let mut t = tree();
        let objs = random_objects(200, 0xD1E, 50.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        for o in objs.iter().take(100) {
            t.delete(o.id).unwrap();
        }
        assert_eq!(t.len(), 100);
        let q = RangeQuery::time_slice(
            QueryRegion::Rect(Rect::from_bounds(0.0, 0.0, 10_000.0, 10_000.0)),
            0.0,
        );
        let got = t.range_query(&q).unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.iter().all(|id| *id >= 100));
    }

    #[test]
    fn fast_outlier_far_away_does_not_bloat_local_queries() {
        // With the CellSet enlargement (our refinement), a single fast
        // object in a far corner shouldn't enlarge scans near slow
        // traffic. (The paper's Window enlargement *does* suffer from
        // this — its documented drawback — see the ablation benches.)
        let mut cfg = small_config();
        cfg.enlargement = BxEnlargement::CellSet;
        let mut slow_only = BxTree::new(pool(), cfg.clone()).unwrap();
        let mut with_fast = BxTree::new(pool(), cfg).unwrap();
        let mut objs = random_objects(300, 0xFA57, 10.0, 0.0);
        // Guarantee slow traffic right where the query looks, so the
        // enlargement windows are non-empty in both trees.
        for i in 0..20 {
            objs.push(obj(
                1_000 + i,
                1_900.0 + i as f64 * 10.0,
                2_000.0,
                5.0,
                0.0,
                0.0,
            ));
        }
        for o in &objs {
            slow_only.insert(*o).unwrap();
            with_fast.insert(*o).unwrap();
        }
        with_fast
            .insert(obj(9_999, 9_900.0, 9_900.0, 400.0, 400.0, 0.0))
            .unwrap();
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(2_000.0, 2_000.0), 300.0)),
            40.0,
        );
        assert!(!slow_only.enlarged_windows(&q).is_empty());
        // The relevant metric is the scan cost: the distant speeder may
        // add its own edge cells but must not multiply the local scan.
        slow_only.reset_io_stats();
        with_fast.reset_io_stats();
        let a = slow_only.range_query(&q).unwrap();
        let b = with_fast.range_query(&q).unwrap();
        assert_eq!(a.len(), b.len(), "same matches either way");
        let slow_io = slow_only.io_stats().logical_reads;
        let fast_io = with_fast.io_stats().logical_reads;
        assert!(
            fast_io <= slow_io * 3 + 20,
            "distant speeder bloated query I/O: {fast_io} vs {slow_io}"
        );
    }

    #[test]
    fn rebuild_histogram_tightens_after_deletes() {
        let mut t = tree();
        // A fast cohort that later disappears.
        for i in 0..50 {
            t.insert(obj(i, 5_000.0, 5_000.0, 300.0, 300.0, 0.0))
                .unwrap();
        }
        for i in 50..100 {
            t.insert(obj(i, 2_000.0, 2_000.0, 5.0, 5.0, 0.0)).unwrap();
        }
        for i in 0..50 {
            t.delete(i).unwrap();
        }
        // The slow cohort sits at (2000,2000) moving at (5,5): by t=50
        // it has reached (2250,2250).
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(2_250.0, 2_250.0), 200.0)),
            50.0,
        );
        let before: f64 = t
            .enlarged_windows(&q)
            .iter()
            .map(|w| w.enlarged.area())
            .sum();
        t.rebuild_histogram().unwrap();
        let after: f64 = t
            .enlarged_windows(&q)
            .iter()
            .map(|w| w.enlarged.area())
            .sum();
        assert!(after <= before, "rebuild should not loosen windows");
        // Queries still correct after rebuild.
        let got = t.range_query(&q).unwrap();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn z_curve_variant_matches_scan() {
        let mut cfg = small_config();
        cfg.curve = CurveKind::Z;
        let mut t = BxTree::new(pool(), cfg).unwrap();
        let objs = random_objects(300, 0x2222, 60.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(5_000.0, 5_000.0), 1_500.0)),
            30.0,
        );
        let mut got = t.range_query(&q).unwrap();
        let mut want: Vec<u64> = objs.iter().filter(|o| q.matches(o)).map(|o| o.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn objects_leaving_domain_remain_queryable() {
        let mut t = tree();
        // Heads out of the domain; its label position clamps to the edge.
        t.insert(obj(1, 9_950.0, 5_000.0, 100.0, 0.0, 0.0)).unwrap();
        let q = RangeQuery::time_slice(
            QueryRegion::Circle(Circle::new(Point::new(11_950.0, 5_000.0), 100.0)),
            20.0,
        );
        assert_eq!(t.range_query(&q).unwrap(), vec![1]);
    }

    #[test]
    fn subtract_ranges_cases() {
        let d = |a: &[(u64, u64)], b: &[(u64, u64)]| subtract_ranges(a, b);
        assert_eq!(d(&[(5, 10)], &[]), vec![(5, 10)]);
        assert_eq!(d(&[(5, 10)], &[(5, 10)]), vec![]);
        assert_eq!(d(&[(5, 10)], &[(0, 20)]), vec![]);
        assert_eq!(d(&[(5, 10)], &[(7, 8)]), vec![(5, 6), (9, 10)]);
        assert_eq!(d(&[(5, 10)], &[(0, 5)]), vec![(6, 10)]);
        assert_eq!(d(&[(5, 10)], &[(10, 12)]), vec![(5, 9)]);
        // One blocker spanning two ranges; blockers between ranges.
        assert_eq!(d(&[(0, 10), (20, 30)], &[(8, 25)]), vec![(0, 7), (26, 30)]);
        assert_eq!(
            d(&[(0, 10), (20, 30)], &[(12, 15)]),
            vec![(0, 10), (20, 30)]
        );
        // Multiple blockers inside one range.
        assert_eq!(
            d(&[(0, 100)], &[(10, 19), (30, 39), (90, 200)]),
            vec![(0, 9), (20, 29), (40, 89)]
        );
    }

    #[test]
    fn range_query_batch_matches_looped_queries() {
        let mut t = tree();
        let objs = random_objects(600, 0xBA7C, 80.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let mut rng = Rng(0x5EED5);
        // Overlapping hotspot circles plus a couple of far-away and
        // interval/moving queries in one batch.
        let mut queries = Vec::new();
        for qi in 0..24 {
            let c = Point::new(
                4_000.0 + rng.next() * 2_000.0,
                4_000.0 + rng.next() * 2_000.0,
            );
            let q = match qi % 3 {
                0 => RangeQuery::time_slice(
                    QueryRegion::Circle(Circle::new(c, 500.0 + rng.next() * 1_000.0)),
                    (qi % 5) as f64 * 10.0,
                ),
                1 => RangeQuery::time_interval(
                    QueryRegion::Rect(Rect::centered(c, 900.0, 600.0)),
                    5.0,
                    30.0,
                ),
                _ => RangeQuery::moving(
                    QueryRegion::Circle(Circle::new(c, 700.0)),
                    Point::new(rng.next() * 30.0 - 15.0, 10.0),
                    0.0,
                    25.0,
                ),
            };
            queries.push(q);
        }
        let batched = t.range_query_batch(&queries).unwrap();
        assert_eq!(batched.len(), queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let looped = t.range_query(q).unwrap();
            assert_eq!(batched[qi], looped, "query {qi} diverged (order included)");
        }
    }

    #[test]
    fn range_query_batch_reads_fewer_pages_than_looped_queries() {
        let objs = random_objects(3_000, 0x10AD, 60.0, 0.0);
        let t = BxTree::bulk_load(pool(), small_config(), &objs).unwrap();
        // A hotspot batch: many overlapping circles over one area.
        let queries: Vec<RangeQuery> = (0..32)
            .map(|i| {
                RangeQuery::time_slice(
                    QueryRegion::Circle(Circle::new(
                        Point::new(5_000.0 + (i % 8) as f64 * 60.0, 5_000.0),
                        1_200.0,
                    )),
                    10.0,
                )
            })
            .collect();

        t.reset_io_stats();
        let batched = t.range_query_batch(&queries).unwrap();
        let batched_reads = t.io_stats().logical_reads;

        t.reset_io_stats();
        let looped: Vec<Vec<u64>> = queries.iter().map(|q| t.range_query(q).unwrap()).collect();
        let looped_reads = t.io_stats().logical_reads;

        assert_eq!(batched, looped);
        assert!(
            batched_reads * 2 < looped_reads,
            "shared sweep should at least halve page reads: {batched_reads} vs {looped_reads}"
        );
    }

    #[test]
    fn knn_candidates_delta_rings_cover_matches() {
        let mut t = tree();
        let objs = random_objects(800, 0xD317A, 50.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        let center = Point::new(5_000.0, 5_000.0);
        let tq = 20.0;
        // An expanding probe chain, as knn_at issues it.
        let radii = [300.0, 700.0, 1_500.0, 3_200.0];
        let mut union: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut covered: Option<RangeQuery> = None;
        let mut delta_reads = Vec::new();
        for &r in &radii {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
            t.reset_io_stats();
            union.extend(t.knn_candidates(&q, covered.as_ref()).unwrap());
            delta_reads.push(t.io_stats().logical_reads);
            // The union over the chain covers the current probe's
            // exact matches.
            let want: std::collections::BTreeSet<u64> =
                t.range_query(&q).unwrap().into_iter().collect();
            assert!(
                union.is_superset(&want),
                "radius {r}: union misses {:?}",
                want.difference(&union).collect::<Vec<_>>()
            );
            covered = Some(q);
        }
        // And the delta rounds are cheaper than rescanning the full
        // final region from scratch.
        let final_q =
            RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, radii[3])), tq);
        t.reset_io_stats();
        t.knn_candidates(&final_q, None).unwrap();
        let full_reads = t.io_stats().logical_reads;
        assert!(
            *delta_reads.last().unwrap() < full_reads,
            "delta ring ({}) should read fewer pages than the full region ({full_reads})",
            delta_reads.last().unwrap()
        );
    }

    /// Pins the half of the `knn_candidates` contract that holds with
    /// no chain at all: a standalone call (covered = `None`) returns a
    /// superset of the exact matches, at every radius and probe time
    /// the kNN driver would use. The subscription engine's kNN path
    /// leans on this directly.
    #[test]
    fn knn_candidates_standalone_is_superset() {
        let mut t = tree();
        for o in random_objects(600, 0xCA17D, 50.0, 0.0) {
            t.insert(o).unwrap();
        }
        let center = Point::new(4_000.0, 6_000.0);
        for &tq in &[0.0, 20.0, 55.0] {
            for &r in &[250.0, 900.0, 2_500.0] {
                let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
                let got: std::collections::BTreeSet<u64> =
                    t.knn_candidates(&q, None).unwrap().into_iter().collect();
                let want: std::collections::BTreeSet<u64> =
                    t.range_query(&q).unwrap().into_iter().collect();
                assert!(
                    got.is_superset(&want),
                    "t={tq} r={r}: candidates miss {:?}",
                    want.difference(&got).collect::<Vec<_>>()
                );
            }
        }
    }

    /// Pins the omission rule verbatim: within one expanding chain, a
    /// call may omit an id matching its probe *only* if some earlier
    /// call of the chain already returned it — a sharper per-step
    /// check than the cumulative union-superset assertion above.
    #[test]
    fn knn_candidates_chain_omissions_were_previously_returned() {
        let mut t = tree();
        for o in random_objects(800, 0xFACE1, 50.0, 0.0) {
            t.insert(o).unwrap();
        }
        let center = Point::new(5_000.0, 5_000.0);
        let tq = 20.0;
        let mut earlier: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut covered: Option<RangeQuery> = None;
        for &r in &[300.0, 700.0, 1_500.0, 3_200.0] {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
            let returned: std::collections::BTreeSet<u64> = t
                .knn_candidates(&q, covered.as_ref())
                .unwrap()
                .into_iter()
                .collect();
            let want: std::collections::BTreeSet<u64> =
                t.range_query(&q).unwrap().into_iter().collect();
            let omitted: Vec<u64> = want.difference(&returned).copied().collect();
            assert!(
                omitted.iter().all(|id| earlier.contains(id)),
                "radius {r}: omitted ids never returned earlier: {:?}",
                omitted
                    .iter()
                    .filter(|id| !earlier.contains(id))
                    .collect::<Vec<_>>()
            );
            earlier.extend(returned);
            covered = Some(q);
        }
    }

    /// The chain contract only holds on an otherwise unmodified index;
    /// after a tick the consumer must restart with covered = `None`.
    /// Pins that a fresh chain over the post-update state is sound —
    /// what the subscription engine does on every tick.
    #[test]
    fn knn_candidates_fresh_chain_after_updates_is_sound() {
        let mut t = tree();
        let objs = random_objects(600, 0x0DDBA11, 50.0, 0.0);
        for o in &objs {
            t.insert(*o).unwrap();
        }
        // A tick: every third object re-reports near the query center.
        let moved: Vec<MovingObject> = objs
            .iter()
            .step_by(3)
            .enumerate()
            .map(|(i, o)| {
                obj(
                    o.id,
                    4_900.0 + (i % 40) as f64 * 5.0,
                    5_000.0,
                    10.0,
                    0.0,
                    10.0,
                )
            })
            .collect();
        t.update_batch(&moved).unwrap();
        let center = Point::new(5_000.0, 5_000.0);
        let tq = 15.0;
        let mut union: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut covered: Option<RangeQuery> = None;
        for &r in &[200.0, 600.0, 1_400.0] {
            let q = RangeQuery::time_slice(QueryRegion::Circle(Circle::new(center, r)), tq);
            union.extend(t.knn_candidates(&q, covered.as_ref()).unwrap());
            let want: std::collections::BTreeSet<u64> =
                t.range_query(&q).unwrap().into_iter().collect();
            assert!(
                union.is_superset(&want),
                "radius {r}: post-update chain misses {:?}",
                want.difference(&union).collect::<Vec<_>>()
            );
            covered = Some(q);
        }
    }

    #[test]
    fn io_stats_flow_through() {
        let mut t = tree();
        for o in random_objects(200, 0x5, 50.0, 0.0) {
            t.insert(o).unwrap();
        }
        assert!(t.io_stats().logical_reads > 0);
        t.reset_io_stats();
        assert_eq!(t.io_stats(), IoStats::zero());
    }
}
