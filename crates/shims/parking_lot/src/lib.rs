//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this workspace
//! ships a minimal API-compatible subset backed by `std::sync`. Unlike
//! `std`, `parking_lot` mutexes do not poison — this shim matches that
//! by recovering the guard from a poisoned `std` mutex.

use std::sync::{self, TryLockError};

/// A mutex with the `parking_lot` API (no poisoning, infallible lock).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
