//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! ships a small deterministic generator with the subset of the rand
//! 0.9 API the workload generator and examples use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling helpers
//! (`random::<T>()` and `random_range(..)`).
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fast,
//! well-distributed, and fully reproducible across platforms, which the
//! benchmark harness relies on.

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core generator interface: a stream of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their full domain by [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value uniformly over `T`'s domain (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for call sites written against the classic `Rng` name.
pub use RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.random_range(5..10usize);
            assert!((5..10).contains(&i));
            let j = rng.random_range(5..=10u32);
            assert!((5..=10).contains(&j));
            let x = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.random_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&y));
        }
    }

    #[test]
    fn bool_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!(trues > 300 && trues < 700, "suspicious bias: {trues}");
    }
}
