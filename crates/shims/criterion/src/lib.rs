//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace
//! ships a minimal wall-clock harness with criterion's bench-authoring
//! API surface: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and [`BenchmarkId`].
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a target measurement window; the
//! median of several samples is reported as ns/iter. No statistics
//! beyond that — the point is comparable relative numbers, offline.

use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records its per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run for ~50ms to stabilise caches and branch state.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters: u64 = 0;
        while Instant::now() < warmup_end {
            hint::black_box(routine());
            warmup_iters += 1;
        }
        // Choose an iteration count that fills ~40ms per sample.
        let per_iter = Duration::from_millis(50).as_nanos() as f64 / warmup_iters.max(1) as f64;
        let iters = ((40e6 / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / iters as f64);
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{name:<50} {:>14}/iter  [{} .. {}]",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark manager handed to every `criterion_group!` function.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_count: 7 }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher<'_>)) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
        });
        report(name, &mut samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.clamp(2, 100);
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_count: self.sample_count,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id), &mut samples);
        self
    }

    /// Benchmarks a function without an input.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
        });
        report(&format!("{}/{}", self.name, id), &mut samples);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
