//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! ships a compact property-testing harness with the proptest API
//! subset the test suite uses: the [`proptest!`] macro (including
//! `#![proptest_config(..)]`), range and tuple [`Strategy`] values,
//! [`Strategy::prop_map`], [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest: sampling is deterministic per test
//! name and case index (failures print the case number, which is
//! enough to reproduce), and there is **no shrinking** — a failing
//! input is reported as-is.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` and should not count.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Drives the case loop for one property test.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        TestRunner { config, name }
    }

    /// Runs `f` until `config.cases` cases are accepted; panics on the
    /// first failure. Rejections (via `prop_assume!`) retry with fresh
    /// inputs, up to a bounded budget.
    pub fn run(&mut self, f: &mut dyn FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let mut seed_base: u64 = 0xB07A_57A7_ED5E_ED00;
        for b in self.name.bytes() {
            seed_base = seed_base.wrapping_mul(0x100_0000_01b3) ^ b as u64;
        }
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        let budget = self.config.cases as u64 * 16 + 256;
        while accepted < self.config.cases {
            assert!(
                attempt < budget,
                "{}: gave up after {attempt} attempts ({accepted} accepted); \
                 prop_assume! rejects too much input",
                self.name
            );
            let mut rng = StdRng::seed_from_u64(seed_base.wrapping_add(attempt));
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{} failed at case {} (attempt {}): {}",
                        self.name, accepted, attempt, msg
                    );
                }
            }
            attempt += 1;
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A `Vec` strategy with lengths drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!sizes.is_empty(), "empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.sizes.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, TestRunner,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments are drawn from strategies: `fn t(x in 0..10u32) { .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(&mut |prop_rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            lhs
        );
    }};
}

/// Vetoes a case (retried with fresh input, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u32..100, y in -5.0..5.0f64) {
            prop_assert!(x < 100);
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_vec(v in collection::vec((0u8..4, 0u64..10).prop_map(|(a, b)| a as u64 + b), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 13));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4), "failures_panic");
        runner.run(&mut |_rng| Err(TestCaseError::fail("boom")));
    }
}
