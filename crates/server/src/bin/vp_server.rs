//! `vp-server` — serve a demo velocity-partitioned index over TCP.
//!
//! Builds an in-memory `VpIndex` (reference `ScanIndex` sub-indexes)
//! over a synthetic road-network population and serves it until a
//! client sends `Shutdown` (or the process is killed). Intended for
//! poking at the protocol with `VpClient` and for the quickstart
//! example; the integration tests and the load generator spawn the
//! server in-process instead.
//!
//! ```text
//! vp-server [--addr 127.0.0.1:7878] [--objects 10000]
//!           [--max-batch 32] [--window-us 200]
//! ```

use vp_core::traits::reference::ScanIndex;
use vp_core::{MovingObject, MovingObjectIndex, VelocityAnalyzer, VpConfig, VpIndex};
use vp_geom::Point;
use vp_server::{spawn, ServerConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic xorshift so runs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() % 1_000_000) as f64 / 1_000_000.0 * (hi - lo)
    }
}

/// Two orthogonal roads plus diagonal outliers — the same synthetic
/// shape the core tests use, sized by `n`.
fn population(n: usize) -> Vec<MovingObject> {
    let mut rng = Rng(0x5eed_cafe);
    let mut objs = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let speed = rng.uniform(10.0, 90.0);
        let sign = if rng.next().is_multiple_of(2) { 1.0 } else { -1.0 };
        let jitter = rng.uniform(-0.4, 0.4);
        let vel = match id % 10 {
            0..=3 => Point::new(speed * sign, jitter),
            4..=7 => Point::new(jitter, speed * sign),
            _ => Point::new(speed * sign * 0.7, speed * sign * 0.7),
        };
        let pos = Point::new(rng.uniform(100.0, 99_900.0), rng.uniform(100.0, 99_900.0));
        objs.push(MovingObject::new(id, pos, vel, 0.0));
    }
    objs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: String = parse_flag(&args, "--addr", "127.0.0.1:7878".to_string());
    let objects: usize = parse_flag(&args, "--objects", 10_000);
    let config = ServerConfig {
        max_batch: parse_flag(&args, "--max-batch", 32),
        window_us: parse_flag(&args, "--window-us", 200),
        ..ServerConfig::default()
    };

    let objs = population(objects);
    let cfg = VpConfig::default();
    let velocities: Vec<Point> = objs.iter().map(|o| o.vel).collect();
    let analysis = VelocityAnalyzer::new(cfg.clone()).analyze(&velocities);
    let mut index =
        VpIndex::build(cfg, &analysis, |_spec| ScanIndex::new()).expect("demo index build failed");
    for o in &objs {
        index.insert(*o).expect("demo insert failed");
    }

    let handle = spawn(index, addr.as_str(), config).expect("bind failed");
    println!(
        "vp-server listening on {} ({} objects, {} partitions); send Shutdown to stop",
        handle.addr(),
        objects,
        analysis.partitions.len() + 1
    );
    handle.join();
    println!("vp-server stopped");
}
