//! The threaded server: acceptor → connection threads → batch former
//! and writer.
//!
//! # Thread topology
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ conn thread (one per connection)
//!                                  │
//!                  Range/Knn ──────┼──try_send──▶ read queue ──▶ batch former
//!                  Insert/Delete/  │                               │ load()
//!                  Tick ───────────┼──try_send──▶ write queue      ▼
//!                  GetObject/Stats─┘               │          SnapshotCell
//!                  (answered inline                ▼               ▲
//!                   from the snapshot)          writer ──publish───┘
//!                                               (&mut VpIndex)
//! ```
//!
//! Reads never touch the live index: the batch former loads the
//! current [`SnapshotCell`] snapshot and executes a whole *window* of
//! coalesced requests through `range_query_batch` / `knn_batch`, so
//! the in-index batching wins apply to independent network clients. A
//! window closes when it holds [`ServerConfig::max_batch`] requests or
//! the oldest request has waited [`ServerConfig::window_us`],
//! whichever comes first. The single writer thread owns the `&mut`
//! [`VpIndex`]; after every committed mutation it publishes a fresh
//! snapshot, so the next read window observes it. Ticks and query
//! windows therefore never contend on anything.
//!
//! # Admission control
//!
//! Both queues are bounded (`queue_depth`). A full queue rejects the
//! request immediately with [`ErrorCode::Overloaded`] — the connection
//! stays open, nothing is buffered, and the client can retry. This is
//! the structured alternative to unbounded buildup: under overload the
//! server sheds load at the edge while in-flight windows keep their
//! latency.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use vp_core::{
    IndexError, IndexSnapshot, KnnQuery, MovingObjectIndex, RangeQuery, SnapshotCell,
    SnapshotIndex, SubEvent, SubEventKind, SubscriptionConfig, SubscriptionId, SubscriptionSet,
    TickDelta, VpIndex, VpSnapshot,
};
use vp_geom::Rect;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, StatsReply, SubscribeSpec,
};

/// Tuning knobs for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// A batch window closes once it holds this many read requests.
    pub max_batch: usize,
    /// … or once the oldest request in it has waited this long (µs).
    pub window_us: u64,
    /// Bound on each admission queue (reads and writes separately);
    /// a full queue yields [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Maximum number of ids per [`Response::Ids`] frame; larger range
    /// results stream as multiple chunks.
    pub max_frame: usize,
    /// Test/bench knob: artificial delay (µs) before executing each
    /// window. Lets tests fill the admission queue deterministically;
    /// leave at 0 in production.
    pub former_stall_us: u64,
    /// Prediction horizon (time units) for standing queries: how far a
    /// range subscription's cached candidate set stays valid before
    /// the writer refreshes it from the index.
    pub sub_horizon: f64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_batch: 32,
            window_us: 200,
            queue_depth: 1024,
            max_frame: 4096,
            former_stall_us: 0,
            sub_horizon: 60.0,
        }
    }
}

/// Counters shared by every thread; served to clients via
/// [`Request::Stats`].
struct Counters {
    read_only: AtomicBool,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    writes: AtomicU64,
    overloaded: AtomicU64,
}

/// Everything the connection threads and the former share. The
/// shutdown flag is its own `Arc` so the (non-generic)
/// [`ServerHandle`] can hold it too.
struct Shared<S> {
    cell: SnapshotCell<VpSnapshot<S>>,
    domain: Rect,
    partitions: u32,
    counters: Counters,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    /// Allocator for per-connection ids (used to route subscription
    /// event pushes back to the owning connection).
    next_conn: AtomicU64,
}

/// A connection's outgoing half, shared between its conn thread and
/// the writer thread (which pushes subscription event frames onto the
/// same stream). Every frame write takes this lock; multi-frame
/// sequences hold it across the whole sequence so pushed events never
/// interleave mid-response.
type ConnWriter = Arc<Mutex<BufWriter<TcpStream>>>;

type ConnId = u64;

enum ReadKind {
    Range(RangeQuery),
    Knn(KnnQuery),
}

struct ReadJob {
    kind: ReadKind,
    /// Receives the full frame sequence for this request (one frame
    /// for kNN; one or more chunks for range).
    reply: mpsc::Sender<Vec<Response>>,
}

enum WriteKind {
    Insert(vp_core::MovingObject),
    Delete(u64),
    Tick(Vec<vp_core::MovingObject>),
    /// Register a standing query. The writer thread answers on the
    /// connection's stream directly (`Subscribed` + backfill) so a
    /// concurrent tick's event push can never overtake the
    /// registration reply.
    Subscribe {
        spec: SubscribeSpec,
        conn: ConnId,
        writer: ConnWriter,
    },
    Unsubscribe(u64),
    /// Connection closed: drop every subscription it owned.
    Disconnect(ConnId),
}

struct WriteJob {
    kind: WriteKind,
    /// `Some(resp)` — the conn thread writes the reply itself;
    /// `None` — the writer thread already wrote the reply frames
    /// directly on the connection (Subscribe path).
    reply: mpsc::Sender<Option<Response>>,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send [`Request::Shutdown`] from
/// a client and [`ServerHandle::join`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the service threads to exit.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept loop.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Waits until a client-initiated [`Request::Shutdown`] (or an
    /// earlier [`ServerHandle::shutdown`]) has stopped the service
    /// threads.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and spawns the server over `index`.
///
/// The index is moved into the writer thread (the single `&mut`
/// owner); an initial snapshot seeds the [`SnapshotCell`] so reads can
/// be answered before the first write.
pub fn spawn<I, A>(index: VpIndex<I>, addr: A, config: ServerConfig) -> io::Result<ServerHandle>
where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync + 'static,
    A: ToSocketAddrs,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let snapshot = index
        .snapshot()
        .map_err(|e| io::Error::other(format!("initial snapshot failed: {e}")))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        cell: SnapshotCell::new(snapshot),
        domain: index.domain(),
        partitions: index.specs().len() as u32,
        counters: Counters {
            read_only: AtomicBool::new(index.is_read_only()),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
        },
        shutdown: Arc::clone(&shutdown),
        addr,
        next_conn: AtomicU64::new(0),
    });
    let depth = config.queue_depth.max(1);
    let (read_tx, read_rx) = mpsc::sync_channel::<ReadJob>(depth);
    let (write_tx, write_rx) = mpsc::sync_channel::<WriteJob>(depth);

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        let cfg = config.clone();
        threads.push(
            thread::Builder::new()
                .name("vp-former".into())
                .spawn(move || former_loop(read_rx, shared, cfg))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        let sub_horizon = config.sub_horizon;
        threads.push(
            thread::Builder::new()
                .name("vp-writer".into())
                .spawn(move || writer_loop(index, write_rx, shared, sub_horizon))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("vp-acceptor".into())
                .spawn(move || accept_loop(listener, shared, read_tx, write_tx))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shutdown,
        threads,
    })
}

// --- connection handling ---------------------------------------------------

fn accept_loop<S: IndexSnapshot + 'static>(
    listener: TcpListener,
    shared: Arc<Shared<S>>,
    read_tx: SyncSender<ReadJob>,
    write_tx: SyncSender<WriteJob>,
) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&shared);
        let read_tx = read_tx.clone();
        let write_tx = write_tx.clone();
        let _ = thread::Builder::new()
            .name("vp-conn".into())
            .spawn(move || {
                let _ = handle_conn(stream, conn_id, shared, read_tx, &write_tx);
                // However the connection ended, reclaim its standing
                // queries. (Errors mean the writer is gone too.)
                let (tx, _rx) = mpsc::channel();
                let _ = write_tx.send(WriteJob {
                    kind: WriteKind::Disconnect(conn_id),
                    reply: tx,
                });
            });
    }
}

fn overloaded() -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        message: "admission queue full, retry later".into(),
    }
}

fn internal(msg: &str) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        message: msg.into(),
    }
}

fn handle_conn<S>(
    stream: TcpStream,
    conn_id: ConnId,
    shared: Arc<Shared<S>>,
    read_tx: SyncSender<ReadJob>,
    write_tx: &SyncSender<WriteJob>,
) -> io::Result<()>
where
    S: IndexSnapshot + 'static,
{
    let mut reader = stream.try_clone()?;
    let writer: ConnWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
    while let Some(payload) = read_frame(&mut reader)? {
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                send_one(
                    &writer,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Range(q) => enqueue_read(&shared, &read_tx, ReadKind::Range(q), &writer)?,
            Request::Knn(q) => enqueue_read(&shared, &read_tx, ReadKind::Knn(q), &writer)?,
            Request::Insert(o) => {
                enqueue_write(&shared, write_tx, WriteKind::Insert(o), &writer)?
            }
            Request::Delete(id) => {
                enqueue_write(&shared, write_tx, WriteKind::Delete(id), &writer)?
            }
            Request::Tick(updates) => {
                enqueue_write(&shared, write_tx, WriteKind::Tick(updates), &writer)?
            }
            Request::Subscribe(spec) => {
                let kind = WriteKind::Subscribe {
                    spec,
                    conn: conn_id,
                    writer: Arc::clone(&writer),
                };
                enqueue_write(&shared, write_tx, kind, &writer)?
            }
            Request::Unsubscribe(id) => {
                enqueue_write(&shared, write_tx, WriteKind::Unsubscribe(id), &writer)?
            }
            Request::GetObject(id) => {
                let snap = shared.cell.load();
                let resp = match snap.get_object(id) {
                    Ok(o) => Response::Object(o),
                    Err(e) => error_response(&e),
                };
                send_one(&writer, &resp)?;
            }
            Request::Stats => {
                let snap = shared.cell.load();
                let c = &shared.counters;
                send_one(
                    &writer,
                    &Response::Stats(StatsReply {
                        objects: IndexSnapshot::len(&*snap) as u64,
                        partitions: shared.partitions,
                        read_only: c.read_only.load(Ordering::SeqCst),
                        batches: c.batches.load(Ordering::SeqCst),
                        batched_requests: c.batched_requests.load(Ordering::SeqCst),
                        writes: c.writes.load(Ordering::SeqCst),
                        overloaded: c.overloaded.load(Ordering::SeqCst),
                    }),
                )?;
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                send_one(&writer, &Response::Ok)?;
                // Wake the blocking accept() so the acceptor observes
                // the flag and exits.
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
        }
    }
    Ok(())
}

fn poisoned() -> io::Error {
    io::Error::other("connection writer poisoned")
}

fn send_one(w: &ConnWriter, resp: &Response) -> io::Result<()> {
    let mut w = w.lock().map_err(|_| poisoned())?;
    write_frame(&mut *w, &resp.encode())?;
    w.flush()
}

fn enqueue_read<S>(
    shared: &Shared<S>,
    read_tx: &SyncSender<ReadJob>,
    kind: ReadKind,
    w: &ConnWriter,
) -> io::Result<()> {
    let (reply_tx, reply_rx) = mpsc::channel();
    match read_tx.try_send(ReadJob {
        kind,
        reply: reply_tx,
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
            return send_one(w, &overloaded());
        }
        Err(TrySendError::Disconnected(_)) => {
            return send_one(w, &internal("server shutting down"));
        }
    }
    match reply_rx.recv() {
        Ok(frames) => {
            // Hold the lock across all chunks so a pushed Events frame
            // cannot split a chunked range reply.
            let mut w = w.lock().map_err(|_| poisoned())?;
            for f in &frames {
                write_frame(&mut *w, &f.encode())?;
            }
            w.flush()
        }
        // The former exited (shutdown) before answering.
        Err(_) => send_one(w, &internal("server shutting down")),
    }
}

fn enqueue_write<S>(
    shared: &Shared<S>,
    write_tx: &SyncSender<WriteJob>,
    kind: WriteKind,
    w: &ConnWriter,
) -> io::Result<()> {
    let (reply_tx, reply_rx) = mpsc::channel();
    match write_tx.try_send(WriteJob {
        kind,
        reply: reply_tx,
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
            return send_one(w, &overloaded());
        }
        Err(TrySendError::Disconnected(_)) => {
            return send_one(w, &internal("server shutting down"));
        }
    }
    match reply_rx.recv() {
        // The writer thread already answered on the stream itself.
        Ok(None) => Ok(()),
        Ok(Some(resp)) => send_one(w, &resp),
        Err(_) => send_one(w, &internal("server shutting down")),
    }
}

// --- batch former ----------------------------------------------------------

/// How often idle loops re-check the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(20);

fn former_loop<S>(rx: Receiver<ReadJob>, shared: Arc<Shared<S>>, cfg: ServerConfig)
where
    S: IndexSnapshot + 'static,
{
    let max_batch = cfg.max_batch.max(1);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Wait for the window's first request…
        let first = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // …then coalesce until the window is full or stale.
        let mut window = vec![first];
        let deadline = Instant::now() + Duration::from_micros(cfg.window_us);
        while window.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => window.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if cfg.former_stall_us > 0 {
            thread::sleep(Duration::from_micros(cfg.former_stall_us));
        }
        execute_window(window, &shared, cfg.max_frame.max(1));
    }
}

/// Splits a range result into `done`-terminated chunks of at most
/// `max_frame` ids (always at least one frame, so empty results still
/// answer).
fn chunk_ids(ids: Vec<u64>, max_frame: usize) -> Vec<Response> {
    if ids.len() <= max_frame {
        return vec![Response::Ids { done: true, ids }];
    }
    let mut frames = Vec::with_capacity(ids.len() / max_frame + 1);
    let mut chunks = ids.chunks(max_frame).peekable();
    while let Some(chunk) = chunks.next() {
        frames.push(Response::Ids {
            done: chunks.peek().is_none(),
            ids: chunk.to_vec(),
        });
    }
    frames
}

fn execute_window<S>(window: Vec<ReadJob>, shared: &Shared<S>, max_frame: usize)
where
    S: IndexSnapshot,
{
    let snap = shared.cell.load();
    shared.counters.batches.fetch_add(1, Ordering::SeqCst);
    shared
        .counters
        .batched_requests
        .fetch_add(window.len() as u64, Ordering::SeqCst);

    // Split the window by kind, remembering each job's slot.
    let mut range_qs = Vec::new();
    let mut range_jobs = Vec::new();
    let mut knn_qs = Vec::new();
    let mut knn_jobs = Vec::new();
    for job in window {
        match job.kind {
            ReadKind::Range(q) => {
                range_qs.push(q);
                range_jobs.push(job.reply);
            }
            ReadKind::Knn(q) => {
                knn_qs.push(q);
                knn_jobs.push(job.reply);
            }
        }
    }

    if !range_qs.is_empty() {
        match snap.range_query_batch(&range_qs) {
            Ok(results) => {
                for (reply, ids) in range_jobs.iter().zip(results) {
                    let _ = reply.send(chunk_ids(ids, max_frame));
                }
            }
            Err(e) => {
                for reply in &range_jobs {
                    let _ = reply.send(vec![error_response(&e)]);
                }
            }
        }
    }
    if !knn_qs.is_empty() {
        match snap.knn_batch(&knn_qs, &shared.domain) {
            Ok(results) => {
                for (reply, ns) in knn_jobs.iter().zip(results) {
                    let _ = reply.send(vec![Response::Neighbors(ns)]);
                }
            }
            Err(e) => {
                for reply in &knn_jobs {
                    let _ = reply.send(vec![error_response(&e)]);
                }
            }
        }
    }
}

// --- writer ----------------------------------------------------------------

/// The writer thread's registry of standing queries: the engine state
/// plus, per subscription, the connection that receives its events.
struct SubRegistry {
    subs: SubscriptionSet,
    routes: HashMap<SubscriptionId, (ConnId, ConnWriter)>,
    /// Largest commit time seen; used as "now" for registrations and
    /// as the evaluation time of pure-removal deltas.
    last_time: f64,
}

impl SubRegistry {
    /// Drops every subscription owned by `conn`.
    fn drop_conn(&mut self, conn: ConnId) {
        let ids: Vec<SubscriptionId> = self
            .routes
            .iter()
            .filter(|(_, (c, _))| *c == conn)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.routes.remove(&id);
            self.subs.unregister(id);
        }
    }

    /// Groups `events` by subscription and pushes one
    /// [`Response::Events`] frame per subscription onto its owning
    /// connection. A connection whose stream errors loses all its
    /// subscriptions (it is gone or unrecoverable).
    fn push_events(&mut self, time: f64, events: Vec<SubEvent>) {
        if events.is_empty() {
            return;
        }
        let mut by_sub: BTreeMap<SubscriptionId, Vec<(SubEventKind, u64)>> = BTreeMap::new();
        for e in events {
            by_sub.entry(e.sub).or_default().push((e.kind, e.id));
        }
        let mut dead: Vec<ConnId> = Vec::new();
        for (sub, events) in by_sub {
            let Some((conn, w)) = self.routes.get(&sub) else {
                continue;
            };
            if dead.contains(conn) {
                continue;
            }
            let frame = Response::Events { sub, time, events };
            if write_direct(w, &[frame]).is_err() {
                dead.push(*conn);
            }
        }
        for conn in dead {
            self.drop_conn(conn);
        }
    }
}

/// Writes `frames` to a connection under its lock, flushing once.
fn write_direct(w: &ConnWriter, frames: &[Response]) -> io::Result<()> {
    let mut w = w.lock().map_err(|_| poisoned())?;
    for f in frames {
        write_frame(&mut *w, &f.encode())?;
    }
    w.flush()
}

fn writer_loop<I>(
    mut index: VpIndex<I>,
    rx: Receiver<WriteJob>,
    shared: Arc<Shared<I::Snapshot>>,
    sub_horizon: f64,
) where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync,
{
    let mut reg = SubRegistry {
        subs: SubscriptionSet::new(
            SubscriptionConfig::new(index.domain()).with_horizon(sub_horizon),
        ),
        routes: HashMap::new(),
        last_time: 0.0,
    };
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // Subscription control plane: no index mutation involved.
        let kind = match job.kind {
            WriteKind::Subscribe { spec, conn, writer } => {
                let resp = handle_subscribe(&index, &mut reg, spec, conn, writer);
                let _ = job.reply.send(resp);
                continue;
            }
            WriteKind::Unsubscribe(id) => {
                reg.subs.unregister(id);
                reg.routes.remove(&id);
                let _ = job.reply.send(Some(Response::Ok));
                continue;
            }
            WriteKind::Disconnect(conn) => {
                reg.drop_conn(conn);
                continue;
            }
            other => other,
        };
        let result = match kind {
            WriteKind::Insert(o) => index.insert(o).map(|()| TickDelta::from_insert(o)),
            WriteKind::Delete(id) => index
                .delete(id)
                .map(|()| TickDelta::from_delete(id, reg.last_time)),
            WriteKind::Tick(updates) => index.apply_updates_delta(&updates),
            _ => unreachable!("control kinds handled above"),
        };
        let resp = match result {
            Ok(mut delta) => {
                // Commit time never runs backwards even if a client
                // reports a stale ref_time.
                delta.time = delta.time.max(reg.last_time);
                reg.last_time = delta.time;
                // Make the mutation snapshot-visible (ticks publish
                // their epoch during commit; single-object mutations
                // need the explicit publish) and hand the fresh
                // snapshot — with the change set that produced it —
                // to the read side.
                index.publish_epoch();
                // Evaluate standing queries against the committed
                // state before publishing, so a subscriber that reacts
                // to an event always finds a snapshot at least as new.
                let events = if reg.subs.is_empty() {
                    Vec::new()
                } else {
                    // An evaluation error (storage fault mid-scan)
                    // drops this tick's events; the next successful
                    // tick re-diffs against the stale result sets, so
                    // no Enter/Leave is lost permanently.
                    reg.subs.on_tick(&index, &delta).unwrap_or_default()
                };
                if let Ok(snap) = index.snapshot() {
                    shared.cell.publish_with_delta(snap, delta);
                }
                reg.push_events(reg.last_time, events);
                shared.counters.writes.fetch_add(1, Ordering::SeqCst);
                Response::Ok
            }
            Err(e) => {
                if index.is_read_only() {
                    shared.counters.read_only.store(true, Ordering::SeqCst);
                }
                error_response(&e)
            }
        };
        let _ = job.reply.send(Some(resp));
    }
}

/// Registers a standing query and answers on the connection stream
/// directly: `Subscribed(id)`, then a backfill `Events` frame when the
/// initial result set is non-empty. Returning `None` tells the conn
/// thread the reply is already on the wire — this is what makes the
/// registration handshake atomic with respect to event pushes from
/// subsequent ticks.
fn handle_subscribe<I>(
    index: &VpIndex<I>,
    reg: &mut SubRegistry,
    spec: SubscribeSpec,
    conn: ConnId,
    writer: ConnWriter,
) -> Option<Response>
where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync,
{
    let now = reg.last_time;
    let registered = match spec {
        SubscribeSpec::Range(s) => reg.subs.register_range(index, now, s),
        SubscribeSpec::Knn(s) => reg.subs.register_knn(index, now, s),
    };
    match registered {
        Ok((id, backfill)) => {
            let mut frames = vec![Response::Subscribed(id)];
            if !backfill.is_empty() {
                frames.push(Response::Events {
                    sub: id,
                    time: now,
                    events: backfill.iter().map(|e| (e.kind, e.id)).collect(),
                });
            }
            if write_direct(&writer, &frames).is_ok() {
                reg.routes.insert(id, (conn, writer));
            } else {
                // The client never saw the id; don't leak the sub.
                reg.subs.unregister(id);
            }
            None
        }
        Err(e) => Some(error_response(&e)),
    }
}

/// Maps an [`IndexError`] onto the protocol's typed error codes.
/// `WalPoisoned` is checked before the generic WAL arm so a demotion
/// in progress is distinguishable from an ordinary logging failure.
fn error_response(e: &IndexError) -> Response {
    let code = if e.is_wal_poisoned() {
        ErrorCode::WalPoisoned
    } else {
        match e {
            IndexError::ReadOnly(_) => ErrorCode::ReadOnly,
            IndexError::UnknownObject(_) => ErrorCode::UnknownObject,
            IndexError::DuplicateObject(_) => ErrorCode::DuplicateObject,
            IndexError::OutOfDomain(_) => ErrorCode::OutOfDomain,
            IndexError::Storage(_) | IndexError::Wal(_) => ErrorCode::Storage,
            IndexError::Config(_) => ErrorCode::Internal,
        }
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_all_ids_and_marks_last() {
        let ids: Vec<u64> = (0..10).collect();
        let frames = chunk_ids(ids.clone(), 3);
        assert_eq!(frames.len(), 4);
        let mut seen = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let Response::Ids { done, ids } = f else {
                panic!("not an Ids frame")
            };
            assert_eq!(*done, i == 3);
            seen.extend_from_slice(ids);
        }
        assert_eq!(seen, ids);

        // Empty and exact-fit results are a single final frame.
        assert_eq!(
            chunk_ids(vec![], 3),
            vec![Response::Ids {
                done: true,
                ids: vec![]
            }]
        );
        assert_eq!(chunk_ids((0..3).collect(), 3).len(), 1);
    }

    #[test]
    fn error_mapping_distinguishes_poisoned_wal() {
        let poisoned = IndexError::Wal("wal stream poisoned by failed fsync: disk".into());
        let Response::Error { code, .. } = error_response(&poisoned) else {
            panic!()
        };
        assert_eq!(code, ErrorCode::WalPoisoned);

        let plain = IndexError::Wal("disk full".into());
        let Response::Error { code, .. } = error_response(&plain) else {
            panic!()
        };
        assert_eq!(code, ErrorCode::Storage);

        let ro = IndexError::ReadOnly("poisoned earlier".into());
        let Response::Error { code, .. } = error_response(&ro) else {
            panic!()
        };
        assert_eq!(code, ErrorCode::ReadOnly);
    }
}
