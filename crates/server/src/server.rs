//! The threaded server: acceptor → connection threads → batch former
//! and writer.
//!
//! # Thread topology
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ conn thread (one per connection)
//!                                  │
//!                  Range/Knn ──────┼──try_send──▶ read queue ──▶ batch former
//!                  Insert/Delete/  │                               │ load()
//!                  Tick ───────────┼──try_send──▶ write queue      ▼
//!                  GetObject/Stats─┘               │          SnapshotCell
//!                  (answered inline                ▼               ▲
//!                   from the snapshot)          writer ──publish───┘
//!                                               (&mut VpIndex)
//! ```
//!
//! Reads never touch the live index: the batch former loads the
//! current [`SnapshotCell`] snapshot and executes a whole *window* of
//! coalesced requests through `range_query_batch` / `knn_batch`, so
//! the in-index batching wins apply to independent network clients. A
//! window closes when it holds [`ServerConfig::max_batch`] requests or
//! the oldest request has waited [`ServerConfig::window_us`],
//! whichever comes first. The single writer thread owns the `&mut`
//! [`VpIndex`]; after every committed mutation it publishes a fresh
//! snapshot, so the next read window observes it. Ticks and query
//! windows therefore never contend on anything.
//!
//! # Admission control
//!
//! Both queues are bounded (`queue_depth`). A full queue rejects the
//! request immediately with [`ErrorCode::Overloaded`] — the connection
//! stays open, nothing is buffered, and the client can retry after the
//! `retry_after_us` hint (current queue depth × batch window). This is
//! the structured alternative to unbounded buildup: under overload the
//! server sheds load at the edge while in-flight windows keep their
//! latency.
//!
//! # Failure model at the wire
//!
//! Every connection carries socket read/write timeouts, so a dead or
//! stalled peer can never pin a thread: reads go through the
//! incremental [`FrameReader`] (partial frames survive timeout ticks),
//! and a peer that stays silent — no frame, no [`Request::Ping`] —
//! beyond [`ServerConfig::idle_timeout_ms`] is evicted. Requests may
//! arrive wrapped in a [`Request::Deadline`] envelope; expired work is
//! dropped at admission, again when the batch former opens the window,
//! and once more before the reply is written, each time answered with
//! [`ErrorCode::DeadlineExceeded`].
//!
//! # Graceful drain
//!
//! [`ServerHandle::shutdown`] (and a client's [`Request::Shutdown`])
//! runs a two-phase drain rather than an abrupt stop: the acceptor
//! closes, new work is rejected with [`ErrorCode::Draining`],
//! already-admitted windows and mutations are answered, every routed
//! subscription receives a terminal `Events` frame with the `fin`
//! flag, a durable index is checkpointed (so the following start
//! replays nothing), and only then do the service threads exit.
//! [`ServerHandle::kill`] keeps the old abrupt path for tests.
//!
//! # Resumable subscriptions
//!
//! Each `Events` push carries the subscription's monotone sequence
//! number. When a subscriber's connection dies, its subscriptions
//! *detach* (stay registered, keep recording into their replay rings)
//! for [`ServerConfig::sub_linger_ms`]; a client that reconnects and
//! subscribes with a `resume` token gets a gap-free replay from the
//! ring, or — past the ring or past the linger window — a fresh
//! backfill flagged `reset`.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use vp_core::{
    IndexError, IndexSnapshot, KnnQuery, MovingObjectIndex, RangeQuery, RetainedBatch,
    SnapshotCell, SnapshotIndex, SubEvent, SubEventKind, SubscriptionConfig, SubscriptionId,
    SubscriptionSet, TickDelta, VpIndex, VpSnapshot,
};
use vp_geom::Rect;

use crate::protocol::{
    is_timeout, write_frame, ErrorCode, FrameReader, Request, Response, ResumeFrom, StatsReply,
    SubscribeSpec,
};

/// Tuning knobs for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// A batch window closes once it holds this many read requests.
    pub max_batch: usize,
    /// … or once the oldest request in it has waited this long (µs).
    pub window_us: u64,
    /// Bound on each admission queue (reads and writes separately);
    /// a full queue yields [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Maximum number of ids per [`Response::Ids`] frame; larger range
    /// results stream as multiple chunks.
    pub max_frame: usize,
    /// Test/bench knob: artificial delay (µs) before executing each
    /// window. Lets tests fill the admission queue deterministically;
    /// leave at 0 in production.
    pub former_stall_us: u64,
    /// Prediction horizon (time units) for standing queries: how far a
    /// range subscription's cached candidate set stays valid before
    /// the writer refreshes it from the index.
    pub sub_horizon: f64,
    /// Event batches retained per subscription for reconnect replay.
    pub sub_retain: usize,
    /// How long a subscription survives its connection (ms): within
    /// this window a resume replays from the ring; past it the
    /// subscription is reaped and a resume re-registers with `reset`.
    pub sub_linger_ms: u64,
    /// Socket read timeout (ms) — the cadence at which connection
    /// threads notice shutdown, drain, and idle peers. Never a
    /// correctness knob: partial frames survive timeout ticks.
    pub read_timeout_ms: u64,
    /// Socket write timeout (ms) — bounds how long a reply or event
    /// push can block on a peer that stopped reading; on expiry the
    /// connection is treated as dead.
    pub write_timeout_ms: u64,
    /// A connection that completes no frame for this long (ms) is
    /// evicted as half-open. Idle-but-healthy clients (e.g. passive
    /// subscribers) stay alive by sending [`Request::Ping`].
    pub idle_timeout_ms: u64,
    /// Upper bound (ms) each service thread spends draining its queue
    /// during graceful shutdown before giving up on the remainder.
    pub drain_budget_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_batch: 32,
            window_us: 200,
            queue_depth: 1024,
            max_frame: 4096,
            former_stall_us: 0,
            sub_horizon: 60.0,
            sub_retain: 64,
            sub_linger_ms: 10_000,
            read_timeout_ms: 50,
            write_timeout_ms: 5_000,
            idle_timeout_ms: 30_000,
            drain_budget_ms: 5_000,
        }
    }
}

/// Lifecycle phase, shared by every thread (and the handle) as an
/// atomic. Transitions only move forward: Running → Draining → Stopped
/// (or Running → Stopped on [`ServerHandle::kill`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Running,
    Draining,
    Stopped,
}

const MODE_RUNNING: u8 = 0;
const MODE_DRAINING: u8 = 1;
const MODE_STOPPED: u8 = 2;

fn load_mode(m: &AtomicU8) -> Mode {
    match m.load(Ordering::SeqCst) {
        MODE_RUNNING => Mode::Running,
        MODE_DRAINING => Mode::Draining,
        _ => Mode::Stopped,
    }
}

/// Counters shared by every thread; served to clients via
/// [`Request::Stats`].
struct Counters {
    read_only: AtomicBool,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    writes: AtomicU64,
    overloaded: AtomicU64,
    /// Jobs currently sitting in the read / write admission queues —
    /// feeds the `retry_after_us` hint on `Overloaded`.
    read_queued: AtomicU64,
    write_queued: AtomicU64,
}

/// Everything the connection threads and the former share. The mode
/// word is its own `Arc` so the (non-generic) [`ServerHandle`] can
/// hold it too.
struct Shared<S> {
    cell: SnapshotCell<VpSnapshot<S>>,
    domain: Rect,
    partitions: u32,
    counters: Counters,
    mode: Arc<AtomicU8>,
    addr: SocketAddr,
    cfg: ServerConfig,
    /// Allocator for per-connection ids (used to route subscription
    /// event pushes back to the owning connection).
    next_conn: AtomicU64,
    /// Service threads (former, writer) still draining; the last one
    /// out flips the mode to Stopped so connection threads exit.
    draining_threads: AtomicU64,
}

impl<S> Shared<S> {
    fn mode(&self) -> Mode {
        load_mode(&self.mode)
    }

    /// Called by the former and the writer when they finish (drain or
    /// plain exit); the second call stops the world.
    fn service_thread_done(&self) {
        if self.draining_threads.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.mode.store(MODE_STOPPED, Ordering::SeqCst);
        }
    }

    /// Queue-drain estimate (µs) used as the `Overloaded` back-off
    /// hint: full windows ahead of the caller × the window span.
    fn retry_after_us(&self, reads: bool) -> u64 {
        let queued = if reads {
            self.counters.read_queued.load(Ordering::SeqCst)
        } else {
            self.counters.write_queued.load(Ordering::SeqCst)
        };
        let windows = queued / self.cfg.max_batch.max(1) as u64 + 1;
        windows * self.cfg.window_us.max(1)
    }
}

/// A connection's outgoing half, shared between its conn thread and
/// the writer thread (which pushes subscription event frames onto the
/// same stream). Every frame write takes this lock; multi-frame
/// sequences hold it across the whole sequence so pushed events never
/// interleave mid-response.
type ConnWriter = Arc<Mutex<BufWriter<TcpStream>>>;

type ConnId = u64;

enum ReadKind {
    Range(RangeQuery),
    Knn(KnnQuery),
}

struct ReadJob {
    kind: ReadKind,
    /// Absolute expiry derived from a [`Request::Deadline`] envelope;
    /// the former drops the job (with `DeadlineExceeded`) instead of
    /// executing it once this passes.
    deadline: Option<Instant>,
    /// Receives the full frame sequence for this request (one frame
    /// for kNN; one or more chunks for range).
    reply: mpsc::Sender<Vec<Response>>,
}

enum WriteKind {
    Insert(vp_core::MovingObject),
    Delete(u64),
    Tick(Vec<vp_core::MovingObject>),
    /// Register (or resume) a standing query. The writer thread
    /// answers on the connection's stream directly (`Subscribed` +
    /// backfill/replay) so a concurrent tick's event push can never
    /// overtake the registration reply.
    Subscribe {
        spec: SubscribeSpec,
        resume: Option<ResumeFrom>,
        conn: ConnId,
        writer: ConnWriter,
    },
    Unsubscribe(u64),
    /// Connection closed: detach every subscription it owned (kept
    /// registered for `sub_linger_ms` so a reconnect can resume).
    Disconnect(ConnId),
}

struct WriteJob {
    kind: WriteKind,
    /// `Some(resp)` — the conn thread writes the reply itself;
    /// `None` — the writer thread already wrote the reply frames
    /// directly on the connection (Subscribe path).
    reply: mpsc::Sender<Option<Response>>,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send [`Request::Shutdown`] from
/// a client and [`ServerHandle::join`]).
pub struct ServerHandle {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful two-phase drain: stop accepting, reject new work with
    /// [`ErrorCode::Draining`], answer everything already admitted,
    /// push terminal `fin` event frames to every live subscription,
    /// checkpoint a durable index, then stop. Returns once the
    /// service threads have exited (bounded by
    /// [`ServerConfig::drain_budget_ms`] per thread).
    pub fn shutdown(mut self) {
        let _ = self.mode.compare_exchange(
            MODE_RUNNING,
            MODE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        // Wake the blocking accept loop.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Hard kill for tests: stop immediately without draining queues,
    /// pushing `fin` frames, or checkpointing.
    pub fn kill(mut self) {
        self.mode.store(MODE_STOPPED, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Waits until a client-initiated [`Request::Shutdown`] (or an
    /// earlier [`ServerHandle::shutdown`]) has stopped the service
    /// threads.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and spawns the server over `index`.
///
/// The index is moved into the writer thread (the single `&mut`
/// owner); an initial snapshot seeds the [`SnapshotCell`] so reads can
/// be answered before the first write.
pub fn spawn<I, A>(index: VpIndex<I>, addr: A, config: ServerConfig) -> io::Result<ServerHandle>
where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync + 'static,
    A: ToSocketAddrs,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let snapshot = index
        .snapshot()
        .map_err(|e| io::Error::other(format!("initial snapshot failed: {e}")))?;
    let mode = Arc::new(AtomicU8::new(MODE_RUNNING));
    let shared = Arc::new(Shared {
        cell: SnapshotCell::new(snapshot),
        domain: index.domain(),
        partitions: index.specs().len() as u32,
        counters: Counters {
            read_only: AtomicBool::new(index.is_read_only()),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            read_queued: AtomicU64::new(0),
            write_queued: AtomicU64::new(0),
        },
        mode: Arc::clone(&mode),
        addr,
        cfg: config.clone(),
        next_conn: AtomicU64::new(0),
        draining_threads: AtomicU64::new(2),
    });
    let depth = config.queue_depth.max(1);
    let (read_tx, read_rx) = mpsc::sync_channel::<ReadJob>(depth);
    let (write_tx, write_rx) = mpsc::sync_channel::<WriteJob>(depth);

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("vp-former".into())
                .spawn(move || former_loop(read_rx, shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("vp-writer".into())
                .spawn(move || writer_loop(index, write_rx, shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("vp-acceptor".into())
                .spawn(move || accept_loop(listener, shared, read_tx, write_tx))?,
        );
    }
    Ok(ServerHandle {
        addr,
        mode,
        threads,
    })
}

// --- connection handling ---------------------------------------------------

fn accept_loop<S: IndexSnapshot + 'static>(
    listener: TcpListener,
    shared: Arc<Shared<S>>,
    read_tx: SyncSender<ReadJob>,
    write_tx: SyncSender<WriteJob>,
) {
    loop {
        let conn = listener.accept();
        if shared.mode() != Mode::Running {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&shared);
        let read_tx = read_tx.clone();
        let write_tx = write_tx.clone();
        let _ = thread::Builder::new()
            .name("vp-conn".into())
            .spawn(move || {
                let _ = handle_conn(stream, conn_id, shared, read_tx, &write_tx);
                // However the connection ended, detach its standing
                // queries. (Errors mean the writer is gone too.)
                let (tx, _rx) = mpsc::channel();
                let _ = write_tx.send(WriteJob {
                    kind: WriteKind::Disconnect(conn_id),
                    reply: tx,
                });
            });
    }
}

fn overloaded(retry_after_us: u64) -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        message: "admission queue full, retry later".into(),
        retry_after_us,
    }
}

fn internal(msg: &str) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        message: msg.into(),
        retry_after_us: 0,
    }
}

fn draining() -> Response {
    Response::Error {
        code: ErrorCode::Draining,
        message: "server draining for shutdown".into(),
        retry_after_us: 0,
    }
}

fn deadline_exceeded(where_: &str) -> Response {
    Response::Error {
        code: ErrorCode::DeadlineExceeded,
        message: format!("deadline expired {where_}"),
        retry_after_us: 0,
    }
}

fn handle_conn<S>(
    stream: TcpStream,
    conn_id: ConnId,
    shared: Arc<Shared<S>>,
    read_tx: SyncSender<ReadJob>,
    write_tx: &SyncSender<WriteJob>,
) -> io::Result<()>
where
    S: IndexSnapshot + 'static,
{
    // Socket timeouts are the dead-peer bugfix: without them a silent
    // peer pins this thread (and a stopped-reading peer pins whoever
    // writes to it) forever.
    stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )))?;
    stream.set_write_timeout(Some(Duration::from_millis(
        shared.cfg.write_timeout_ms.max(1),
    )))?;
    let mut reader = stream.try_clone()?;
    let writer: ConnWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
    let mut frames = FrameReader::new();
    let idle_timeout = Duration::from_millis(shared.cfg.idle_timeout_ms.max(1));
    let mut last_frame = Instant::now();
    loop {
        if shared.mode() == Mode::Stopped {
            return Ok(());
        }
        let payload = match frames.read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean close at a frame boundary.
            Ok(None) => return Ok(()),
            Err(e) if is_timeout(&e) => {
                // Idle tick. A peer that completes no frame within the
                // idle window — whether silent or stalled mid-frame —
                // is treated as half-open and evicted. Live-but-quiet
                // clients refresh the window with Ping.
                if last_frame.elapsed() >= idle_timeout {
                    return Ok(());
                }
                continue;
            }
            // Torn frame, reset, or any other I/O failure: a clean
            // disconnect, never a panic.
            Err(_) => return Ok(()),
        };
        last_frame = Instant::now();
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                send_one(
                    &writer,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                        retry_after_us: 0,
                    },
                )?;
                continue;
            }
        };
        // Peel the deadline envelope; the budget becomes absolute at
        // decode time (it travelled as a duration, so clock skew
        // between client and server is irrelevant).
        let (budget_us, request) = request.into_parts();
        let deadline = budget_us.map(|us| Instant::now() + Duration::from_micros(us));

        // During drain only liveness probes and the (idempotent)
        // shutdown request are honored; everything else is new work.
        if shared.mode() != Mode::Running
            && !matches!(request, Request::Ping(_) | Request::Shutdown)
        {
            send_one(&writer, &draining())?;
            continue;
        }
        // First deadline gate: don't even admit expired work.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            send_one(&writer, &deadline_exceeded("before admission"))?;
            continue;
        }
        match request {
            Request::Range(q) => {
                enqueue_read(&shared, &read_tx, ReadKind::Range(q), deadline, &writer)?
            }
            Request::Knn(q) => {
                enqueue_read(&shared, &read_tx, ReadKind::Knn(q), deadline, &writer)?
            }
            Request::Insert(o) => enqueue_write(&shared, write_tx, WriteKind::Insert(o), &writer)?,
            Request::Delete(id) => {
                enqueue_write(&shared, write_tx, WriteKind::Delete(id), &writer)?
            }
            Request::Tick(updates) => {
                enqueue_write(&shared, write_tx, WriteKind::Tick(updates), &writer)?
            }
            Request::Subscribe { spec, resume } => {
                let kind = WriteKind::Subscribe {
                    spec,
                    resume,
                    conn: conn_id,
                    writer: Arc::clone(&writer),
                };
                enqueue_write(&shared, write_tx, kind, &writer)?
            }
            Request::Unsubscribe(id) => {
                enqueue_write(&shared, write_tx, WriteKind::Unsubscribe(id), &writer)?
            }
            Request::GetObject(id) => {
                let snap = shared.cell.load();
                let resp = match snap.get_object(id) {
                    Ok(o) => Response::Object(o),
                    Err(e) => error_response(&e),
                };
                send_one(&writer, &resp)?;
            }
            Request::Stats => {
                let snap = shared.cell.load();
                let c = &shared.counters;
                send_one(
                    &writer,
                    &Response::Stats(StatsReply {
                        objects: IndexSnapshot::len(&*snap) as u64,
                        partitions: shared.partitions,
                        read_only: c.read_only.load(Ordering::SeqCst),
                        batches: c.batches.load(Ordering::SeqCst),
                        batched_requests: c.batched_requests.load(Ordering::SeqCst),
                        writes: c.writes.load(Ordering::SeqCst),
                        overloaded: c.overloaded.load(Ordering::SeqCst),
                    }),
                )?;
            }
            Request::Ping(nonce) => {
                send_one(&writer, &Response::Pong(nonce))?;
            }
            Request::Shutdown => {
                let _ = shared.mode.compare_exchange(
                    MODE_RUNNING,
                    MODE_DRAINING,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                send_one(&writer, &Response::Ok)?;
                // Wake the blocking accept() so the acceptor observes
                // the mode and exits.
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
            Request::Deadline { .. } => unreachable!("peeled above; envelopes do not nest"),
        }
    }
}

fn poisoned() -> io::Error {
    io::Error::other("connection writer poisoned")
}

fn send_one(w: &ConnWriter, resp: &Response) -> io::Result<()> {
    let mut w = w.lock().map_err(|_| poisoned())?;
    write_frame(&mut *w, &resp.encode())?;
    w.flush()
}

fn enqueue_read<S>(
    shared: &Shared<S>,
    read_tx: &SyncSender<ReadJob>,
    kind: ReadKind,
    deadline: Option<Instant>,
    w: &ConnWriter,
) -> io::Result<()> {
    let (reply_tx, reply_rx) = mpsc::channel();
    match read_tx.try_send(ReadJob {
        kind,
        deadline,
        reply: reply_tx,
    }) {
        Ok(()) => {
            shared.counters.read_queued.fetch_add(1, Ordering::SeqCst);
        }
        Err(TrySendError::Full(_)) => {
            shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
            return send_one(w, &overloaded(shared.retry_after_us(true)));
        }
        Err(TrySendError::Disconnected(_)) => {
            return send_one(w, &internal("server shutting down"));
        }
    }
    match reply_rx.recv() {
        Ok(frames) => {
            // Last deadline gate: the result is ready, but if the
            // client's budget ran out while it was computed, the
            // answer is DeadlineExceeded (the client has already
            // abandoned the call; keep its stream in sync).
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return send_one(w, &deadline_exceeded("after execution"));
            }
            // Hold the lock across all chunks so a pushed Events frame
            // cannot split a chunked range reply.
            let mut w = w.lock().map_err(|_| poisoned())?;
            for f in &frames {
                write_frame(&mut *w, &f.encode())?;
            }
            w.flush()
        }
        // The former exited (shutdown) before answering.
        Err(_) => send_one(w, &internal("server shutting down")),
    }
}

fn enqueue_write<S>(
    shared: &Shared<S>,
    write_tx: &SyncSender<WriteJob>,
    kind: WriteKind,
    w: &ConnWriter,
) -> io::Result<()> {
    let (reply_tx, reply_rx) = mpsc::channel();
    match write_tx.try_send(WriteJob {
        kind,
        reply: reply_tx,
    }) {
        Ok(()) => {
            shared.counters.write_queued.fetch_add(1, Ordering::SeqCst);
        }
        Err(TrySendError::Full(_)) => {
            shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
            return send_one(w, &overloaded(shared.retry_after_us(false)));
        }
        Err(TrySendError::Disconnected(_)) => {
            return send_one(w, &internal("server shutting down"));
        }
    }
    match reply_rx.recv() {
        // The writer thread already answered on the stream itself.
        Ok(None) => Ok(()),
        Ok(Some(resp)) => send_one(w, &resp),
        Err(_) => send_one(w, &internal("server shutting down")),
    }
}

// --- batch former ----------------------------------------------------------

/// How often idle loops re-check the lifecycle mode.
const IDLE_POLL: Duration = Duration::from_millis(20);

fn former_loop<S>(rx: Receiver<ReadJob>, shared: Arc<Shared<S>>)
where
    S: IndexSnapshot + 'static,
{
    let cfg = shared.cfg.clone();
    let max_batch = cfg.max_batch.max(1);
    loop {
        match shared.mode() {
            Mode::Stopped => {
                shared.service_thread_done();
                return;
            }
            Mode::Draining => break,
            Mode::Running => {}
        }
        // Wait for the window's first request…
        let first = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                shared.service_thread_done();
                return;
            }
        };
        shared.counters.read_queued.fetch_sub(1, Ordering::SeqCst);
        // …then coalesce until the window is full or stale.
        let mut window = vec![first];
        let deadline = Instant::now() + Duration::from_micros(cfg.window_us);
        while window.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    shared.counters.read_queued.fetch_sub(1, Ordering::SeqCst);
                    window.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if cfg.former_stall_us > 0 {
            thread::sleep(Duration::from_micros(cfg.former_stall_us));
        }
        execute_window(window, &shared, cfg.max_frame.max(1));
    }
    // Drain: answer everything already admitted (new work is being
    // rejected at the edge), bounded by the drain budget.
    let drain_deadline = Instant::now() + Duration::from_millis(cfg.drain_budget_ms);
    loop {
        if Instant::now() >= drain_deadline {
            break;
        }
        let mut window = Vec::new();
        while window.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => {
                    shared.counters.read_queued.fetch_sub(1, Ordering::SeqCst);
                    window.push(job);
                }
                Err(_) => break,
            }
        }
        if window.is_empty() {
            break;
        }
        execute_window(window, &shared, cfg.max_frame.max(1));
    }
    shared.service_thread_done();
}

/// Splits a range result into `done`-terminated chunks of at most
/// `max_frame` ids (always at least one frame, so empty results still
/// answer).
fn chunk_ids(ids: Vec<u64>, max_frame: usize) -> Vec<Response> {
    if ids.len() <= max_frame {
        return vec![Response::Ids { done: true, ids }];
    }
    let mut frames = Vec::with_capacity(ids.len() / max_frame + 1);
    let mut chunks = ids.chunks(max_frame).peekable();
    while let Some(chunk) = chunks.next() {
        frames.push(Response::Ids {
            done: chunks.peek().is_none(),
            ids: chunk.to_vec(),
        });
    }
    frames
}

fn execute_window<S>(window: Vec<ReadJob>, shared: &Shared<S>, max_frame: usize)
where
    S: IndexSnapshot,
{
    let snap = shared.cell.load();
    shared.counters.batches.fetch_add(1, Ordering::SeqCst);
    shared
        .counters
        .batched_requests
        .fetch_add(window.len() as u64, Ordering::SeqCst);

    // Second deadline gate: drop entries whose budget expired while
    // they queued — their snapshot work would be wasted.
    let now = Instant::now();
    let mut range_qs = Vec::new();
    let mut range_jobs = Vec::new();
    let mut knn_qs = Vec::new();
    let mut knn_jobs = Vec::new();
    for job in window {
        if job.deadline.is_some_and(|d| now >= d) {
            let _ = job.reply.send(vec![deadline_exceeded("in queue")]);
            continue;
        }
        match job.kind {
            ReadKind::Range(q) => {
                range_qs.push(q);
                range_jobs.push(job.reply);
            }
            ReadKind::Knn(q) => {
                knn_qs.push(q);
                knn_jobs.push(job.reply);
            }
        }
    }

    if !range_qs.is_empty() {
        match snap.range_query_batch(&range_qs) {
            Ok(results) => {
                for (reply, ids) in range_jobs.iter().zip(results) {
                    let _ = reply.send(chunk_ids(ids, max_frame));
                }
            }
            Err(e) => {
                for reply in &range_jobs {
                    let _ = reply.send(vec![error_response(&e)]);
                }
            }
        }
    }
    if !knn_qs.is_empty() {
        match snap.knn_batch(&knn_qs, &shared.domain) {
            Ok(results) => {
                for (reply, ns) in knn_jobs.iter().zip(results) {
                    let _ = reply.send(vec![Response::Neighbors(ns)]);
                }
            }
            Err(e) => {
                for reply in &knn_jobs {
                    let _ = reply.send(vec![error_response(&e)]);
                }
            }
        }
    }
}

// --- writer ----------------------------------------------------------------

/// The writer thread's registry of standing queries: the engine state
/// plus, per subscription, the connection that receives its events.
struct SubRegistry {
    subs: SubscriptionSet,
    routes: HashMap<SubscriptionId, (ConnId, ConnWriter)>,
    /// Subscriptions whose connection died, with the detach instant.
    /// They keep recording into their replay rings until either a
    /// resume re-routes them or the linger window reaps them.
    detached: HashMap<SubscriptionId, Instant>,
    /// Largest commit time seen; used as "now" for registrations and
    /// as the evaluation time of pure-removal deltas.
    last_time: f64,
}

impl SubRegistry {
    /// Detaches every subscription owned by `conn`: the route is gone
    /// but the subscription state (and replay ring) survives for the
    /// linger window so a reconnect can resume gap-free.
    fn drop_conn(&mut self, conn: ConnId) {
        let ids: Vec<SubscriptionId> = self
            .routes
            .iter()
            .filter(|(_, (c, _))| *c == conn)
            .map(|(&id, _)| id)
            .collect();
        let now = Instant::now();
        for id in ids {
            self.routes.remove(&id);
            self.detached.insert(id, now);
        }
    }

    /// Reaps detached subscriptions whose linger window expired.
    fn reap_detached(&mut self, linger: Duration) {
        if self.detached.is_empty() {
            return;
        }
        let now = Instant::now();
        let expired: Vec<SubscriptionId> = self
            .detached
            .iter()
            .filter(|(_, &at)| now.duration_since(at) >= linger)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.detached.remove(&id);
            self.subs.unregister(id);
        }
    }

    /// Groups `events` by subscription and pushes one
    /// [`Response::Events`] frame per subscription onto its owning
    /// connection, stamped with the sequence number `on_tick` just
    /// recorded. A connection whose stream errors loses its route
    /// (the subscriptions detach and can be resumed).
    fn push_events(&mut self, time: f64, events: Vec<SubEvent>) {
        if events.is_empty() {
            return;
        }
        let mut by_sub: BTreeMap<SubscriptionId, Vec<(SubEventKind, u64)>> = BTreeMap::new();
        for e in events {
            by_sub.entry(e.sub).or_default().push((e.kind, e.id));
        }
        let mut dead: Vec<ConnId> = Vec::new();
        for (sub, events) in by_sub {
            let Some((conn, w)) = self.routes.get(&sub) else {
                continue;
            };
            if dead.contains(conn) {
                continue;
            }
            let seq = self.subs.last_seq(sub).unwrap_or(0);
            let frame = Response::Events {
                sub,
                time,
                seq,
                reset: false,
                fin: false,
                events,
            };
            if write_direct(w, &[frame]).is_err() {
                dead.push(*conn);
            }
        }
        for conn in dead {
            self.drop_conn(conn);
        }
    }

    /// Pushes the terminal drain frame (`fin`, no events) to every
    /// routed subscription: "this server will push nothing more —
    /// reconnect elsewhere and resume from the seq you have".
    fn push_fin(&mut self, time: f64) {
        for (&sub, (_, w)) in &self.routes {
            let frame = Response::Events {
                sub,
                time,
                seq: self.subs.last_seq(sub).unwrap_or(0),
                reset: false,
                fin: true,
                events: Vec::new(),
            };
            let _ = write_direct(w, &[frame]);
        }
        self.routes.clear();
    }
}

/// Writes `frames` to a connection under its lock, flushing once.
fn write_direct(w: &ConnWriter, frames: &[Response]) -> io::Result<()> {
    let mut w = w.lock().map_err(|_| poisoned())?;
    for f in frames {
        write_frame(&mut *w, &f.encode())?;
    }
    w.flush()
}

fn writer_loop<I>(mut index: VpIndex<I>, rx: Receiver<WriteJob>, shared: Arc<Shared<I::Snapshot>>)
where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync,
{
    let cfg = shared.cfg.clone();
    let linger = Duration::from_millis(cfg.sub_linger_ms);
    let mut reg = SubRegistry {
        subs: SubscriptionSet::new(
            SubscriptionConfig::new(index.domain())
                .with_horizon(cfg.sub_horizon)
                .with_retain(cfg.sub_retain),
        ),
        routes: HashMap::new(),
        detached: HashMap::new(),
        last_time: 0.0,
    };
    loop {
        match shared.mode() {
            Mode::Stopped => {
                // Hard kill: no drain, no fin frames, no checkpoint.
                shared.service_thread_done();
                return;
            }
            Mode::Draining => break,
            Mode::Running => {}
        }
        reg.reap_detached(linger);
        let job = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                shared.service_thread_done();
                return;
            }
        };
        shared.counters.write_queued.fetch_sub(1, Ordering::SeqCst);
        apply_write_job(&mut index, &mut reg, &shared, job);
    }
    // Drain: apply every already-admitted mutation (the edge rejects
    // new ones), bounded by the drain budget…
    let drain_deadline = Instant::now() + Duration::from_millis(cfg.drain_budget_ms);
    while Instant::now() < drain_deadline {
        match rx.try_recv() {
            Ok(job) => {
                shared.counters.write_queued.fetch_sub(1, Ordering::SeqCst);
                apply_write_job(&mut index, &mut reg, &shared, job);
            }
            Err(_) => break,
        }
    }
    // …tell every live subscriber this stream is over…
    reg.push_fin(reg.last_time);
    // …and leave a checkpoint so the next open replays nothing
    // (clean-restart equivalence). Checkpoint failure is tolerated:
    // the WAL still holds everything, recovery just replays it.
    if index.is_durable() && !index.is_read_only() {
        let _ = index.checkpoint();
    }
    shared.service_thread_done();
}

/// Applies one write-queue job: a mutation (tick/insert/delete, with
/// snapshot publish + standing-query evaluation) or a subscription
/// control operation.
fn apply_write_job<I>(
    index: &mut VpIndex<I>,
    reg: &mut SubRegistry,
    shared: &Shared<I::Snapshot>,
    job: WriteJob,
) where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync,
{
    // Subscription control plane: no index mutation involved.
    let kind = match job.kind {
        WriteKind::Subscribe {
            spec,
            resume,
            conn,
            writer,
        } => {
            let resp = handle_subscribe(index, reg, spec, resume, conn, writer);
            let _ = job.reply.send(resp);
            return;
        }
        WriteKind::Unsubscribe(id) => {
            reg.subs.unregister(id);
            reg.routes.remove(&id);
            reg.detached.remove(&id);
            let _ = job.reply.send(Some(Response::Ok));
            return;
        }
        WriteKind::Disconnect(conn) => {
            reg.drop_conn(conn);
            return;
        }
        other => other,
    };
    let result = match kind {
        WriteKind::Insert(o) => index.insert(o).map(|()| TickDelta::from_insert(o)),
        WriteKind::Delete(id) => index
            .delete(id)
            .map(|()| TickDelta::from_delete(id, reg.last_time)),
        WriteKind::Tick(updates) => index.apply_updates_delta(&updates),
        _ => unreachable!("control kinds handled above"),
    };
    let resp = match result {
        Ok(mut delta) => {
            // Commit time never runs backwards even if a client
            // reports a stale ref_time.
            delta.time = delta.time.max(reg.last_time);
            reg.last_time = delta.time;
            // Make the mutation snapshot-visible (ticks publish
            // their epoch during commit; single-object mutations
            // need the explicit publish) and hand the fresh
            // snapshot — with the change set that produced it —
            // to the read side.
            index.publish_epoch();
            // Evaluate standing queries against the committed
            // state before publishing, so a subscriber that reacts
            // to an event always finds a snapshot at least as new.
            let events = if reg.subs.is_empty() {
                Vec::new()
            } else {
                // An evaluation error (storage fault mid-scan)
                // drops this tick's events; the next successful
                // tick re-diffs against the stale result sets, so
                // no Enter/Leave is lost permanently.
                reg.subs.on_tick(&*index, &delta).unwrap_or_default()
            };
            if let Ok(snap) = index.snapshot() {
                shared.cell.publish_with_delta(snap, delta);
            }
            reg.push_events(reg.last_time, events);
            shared.counters.writes.fetch_add(1, Ordering::SeqCst);
            Response::Ok
        }
        Err(e) => {
            if index.is_read_only() {
                shared.counters.read_only.store(true, Ordering::SeqCst);
            }
            error_response(&e)
        }
    };
    let _ = job.reply.send(Some(resp));
}

/// Registers or resumes a standing query, answering on the connection
/// stream directly: `Subscribed(id)`, then replay/backfill `Events`
/// frames. Returning `None` tells the conn thread the reply is already
/// on the wire — this is what makes the registration handshake atomic
/// with respect to event pushes from subsequent ticks.
///
/// Resume contract (`resume: Some`):
/// * live (or detached) id + ring covers the gap → replay the retained
///   batches under their original sequence numbers (`reset == false`);
/// * live id, ring trimmed past the gap (or stale token) → full
///   re-backfill via `resnapshot` (`reset == true`);
/// * unknown id (reaped or never existed) → re-register under the
///   requested id and push the fresh backfill with `reset == true`;
/// * live id whose spec does not match the resume's spec → `BadRequest`
///   (the token belongs to a different query).
fn handle_subscribe<I>(
    index: &VpIndex<I>,
    reg: &mut SubRegistry,
    spec: SubscribeSpec,
    resume: Option<ResumeFrom>,
    conn: ConnId,
    writer: ConnWriter,
) -> Option<Response>
where
    I: MovingObjectIndex + SnapshotIndex + Send + Sync,
{
    let now = reg.last_time;
    let Some(resume) = resume else {
        // Fresh registration (the pre-resume path, unchanged).
        let registered = match spec {
            SubscribeSpec::Range(s) => reg.subs.register_range(index, now, s),
            SubscribeSpec::Knn(s) => reg.subs.register_knn(index, now, s),
        };
        return match registered {
            Ok((id, backfill)) => {
                let mut frames = vec![Response::Subscribed(id)];
                if !backfill.is_empty() {
                    frames.push(Response::Events {
                        sub: id,
                        time: now,
                        seq: reg.subs.last_seq(id).unwrap_or(0),
                        reset: false,
                        fin: false,
                        events: backfill.iter().map(|e| (e.kind, e.id)).collect(),
                    });
                }
                if write_direct(&writer, &frames).is_ok() {
                    reg.routes.insert(id, (conn, writer));
                } else {
                    // The client never saw the id; don't leak the sub.
                    reg.subs.unregister(id);
                }
                None
            }
            Err(e) => Some(error_response(&e)),
        };
    };

    let id = resume.sub;
    if reg.subs.contains(id) {
        // The subscription survived (possibly detached). The token
        // must belong to the same query.
        let matches = match spec {
            SubscribeSpec::Range(s) => reg.subs.range_spec(id) == Some(s),
            SubscribeSpec::Knn(s) => reg.subs.knn_spec(id) == Some(s),
        };
        if !matches {
            return Some(Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("resume token for subscription {id} does not match its spec"),
                retry_after_us: 0,
            });
        }
        let mut frames = vec![Response::Subscribed(id)];
        match reg.subs.retained_since(id, resume.after_seq) {
            Some(batches) => {
                // Gap-free replay under the original seq numbers.
                for b in batches {
                    frames.push(Response::Events {
                        sub: id,
                        time: b.time,
                        seq: b.seq,
                        reset: false,
                        fin: false,
                        events: b.events,
                    });
                }
            }
            None => {
                // Ring trimmed past the gap (or a stale token): full
                // re-backfill; the client discards its state.
                match reg.subs.resnapshot(index, id, now) {
                    Ok(Some(RetainedBatch { seq, time, events })) => {
                        frames.push(Response::Events {
                            sub: id,
                            time,
                            seq,
                            reset: true,
                            fin: false,
                            events,
                        });
                    }
                    Ok(None) => return Some(internal("subscription vanished during resume")),
                    Err(e) => return Some(error_response(&e)),
                }
            }
        }
        if write_direct(&writer, &frames).is_ok() {
            reg.detached.remove(&id);
            reg.routes.insert(id, (conn, writer));
        }
        return None;
    }

    // Reaped (or never existed): re-register under the requested id so
    // the client keeps a stable handle; the backfill is a reset.
    let registered = match spec {
        SubscribeSpec::Range(s) => reg.subs.register_range_as(index, now, s, id),
        SubscribeSpec::Knn(s) => reg.subs.register_knn_as(index, now, s, id),
    };
    match registered {
        Ok(backfill) => {
            let frames = vec![
                Response::Subscribed(id),
                Response::Events {
                    sub: id,
                    time: now,
                    seq: reg.subs.last_seq(id).unwrap_or(0),
                    reset: true,
                    fin: false,
                    events: backfill.iter().map(|e| (e.kind, e.id)).collect(),
                },
            ];
            if write_direct(&writer, &frames).is_ok() {
                reg.routes.insert(id, (conn, writer));
            } else {
                reg.subs.unregister(id);
            }
            None
        }
        Err(e) => Some(error_response(&e)),
    }
}

/// Maps an [`IndexError`] onto the protocol's typed error codes.
/// `WalPoisoned` is checked before the generic WAL arm so a demotion
/// in progress is distinguishable from an ordinary logging failure.
fn error_response(e: &IndexError) -> Response {
    let code = if e.is_wal_poisoned() {
        ErrorCode::WalPoisoned
    } else {
        match e {
            IndexError::ReadOnly(_) => ErrorCode::ReadOnly,
            IndexError::UnknownObject(_) => ErrorCode::UnknownObject,
            IndexError::DuplicateObject(_) => ErrorCode::DuplicateObject,
            IndexError::OutOfDomain(_) => ErrorCode::OutOfDomain,
            IndexError::Storage(_) | IndexError::Wal(_) => ErrorCode::Storage,
            IndexError::Config(_) => ErrorCode::Internal,
        }
    };
    Response::Error {
        code,
        message: e.to_string(),
        retry_after_us: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_all_ids_and_marks_last() {
        let ids: Vec<u64> = (0..10).collect();
        let frames = chunk_ids(ids.clone(), 3);
        assert_eq!(frames.len(), 4);
        let mut seen = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let Response::Ids { done, ids } = f else {
                panic!("not an Ids frame")
            };
            assert_eq!(*done, i == 3);
            seen.extend_from_slice(ids);
        }
        assert_eq!(seen, ids);

        // Empty and exact-fit results are a single final frame.
        assert_eq!(
            chunk_ids(vec![], 3),
            vec![Response::Ids {
                done: true,
                ids: vec![]
            }]
        );
        assert_eq!(chunk_ids((0..3).collect(), 3).len(), 1);
    }

    #[test]
    fn error_mapping_distinguishes_poisoned_wal() {
        let poisoned = IndexError::Wal("wal stream poisoned by failed fsync: disk".into());
        let Response::Error { code, .. } = error_response(&poisoned) else {
            panic!()
        };
        assert_eq!(code, ErrorCode::WalPoisoned);

        let plain = IndexError::Wal("disk full".into());
        let Response::Error { code, .. } = error_response(&plain) else {
            panic!()
        };
        assert_eq!(code, ErrorCode::Storage);

        let ro = IndexError::ReadOnly("poisoned earlier".into());
        let Response::Error { code, .. } = error_response(&ro) else {
            panic!()
        };
        assert_eq!(code, ErrorCode::ReadOnly);
    }

    #[test]
    fn retry_hint_scales_with_queue_depth() {
        let cfg = ServerConfig {
            max_batch: 8,
            window_us: 200,
            ..ServerConfig::default()
        };
        // windows-ahead = queued / max_batch + 1 → µs.
        let hint = |queued: u64| {
            let windows = queued / cfg.max_batch as u64 + 1;
            windows * cfg.window_us
        };
        assert_eq!(hint(0), 200, "empty queue: one window");
        assert_eq!(hint(7), 200);
        assert_eq!(hint(8), 400);
        assert_eq!(hint(80), 2200);
    }
}
