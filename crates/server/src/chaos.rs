//! Deterministic network chaos: an in-process TCP proxy that sits
//! between a client and a vp-server and mangles the byte stream.
//!
//! This is the wire-layer sibling of `vp_storage::FaultInjector`: the
//! same two fault sources — a **scripted schedule** (exact action per
//! forwarded chunk) and a **seeded random mode** (an xorshift64*
//! stream rolls per chunk; same seed + same traffic ⇒ same faults) —
//! applied to TCP instead of the page file. The faults it produces are
//! the ones real networks produce:
//!
//! * [`ChaosAction::Delay`] — the chunk sits in the proxy before it is
//!   forwarded (latency spike / congestion).
//! * [`ChaosAction::Split`] — the chunk is forwarded one byte at a
//!   time with `TCP_NODELAY`, maximally fragmenting frames (a
//!   middlebox or tiny MTU). Correct peers reassemble; peers that
//!   assume one `read` = one frame break instantly.
//! * [`ChaosAction::Truncate`] — a *prefix* of the chunk is forwarded
//!   and then the connection dies: the peer observes a torn frame
//!   (length prefix with a short body), exactly what a crashed proxy
//!   or yanked cable leaves behind.
//! * [`ChaosAction::Kill`] — the connection dies at a chunk boundary
//!   (clean FIN, no data loss beyond the cut).
//! * [`ChaosAction::Reset`] — like `Kill` but with `SO_LINGER 0`, so
//!   the peer sees ECONNRESET instead of EOF.
//!
//! Every connection through the proxy gets two *streams* (client →
//! server and server → client) with independent fault schedules; the
//! stream id and per-stream chunk counter feed the random roll, so a
//! run is reproducible from its seed alone. The proxy keeps accepting
//! new connections after a kill — reconnect-and-resume flows exercise
//! a fresh schedule on each attempt.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// What to do with one forwarded chunk (one upstream `read`'s worth of
/// bytes, at most `CHUNK` (4096) of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Forward unchanged.
    Forward,
    /// Sleep this many milliseconds, then forward.
    Delay(u64),
    /// Forward one byte at a time.
    Split,
    /// Forward only the first `n` bytes, then kill the connection
    /// (tears whatever frame the cut lands inside).
    Truncate(usize),
    /// Drop the chunk and kill the connection (clean FIN).
    Kill,
    /// Drop the chunk and kill the connection with RST.
    Reset,
}

/// Per-chunk fault policy. Scripted entries are consulted first (per
/// stream, by chunk index); past the script's end the seeded random
/// rolls decide. All probabilities are per-mille (‰).
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed for the per-chunk xorshift roll.
    pub seed: u64,
    /// Exact action for chunk `i` of *every* stream (both directions,
    /// every connection). Beyond the script, random mode applies.
    pub script: Vec<ChaosAction>,
    /// ‰ chance a chunk is delayed by `delay_ms`.
    pub delay_ppk: u32,
    /// Delay applied by the `Delay` roll (ms).
    pub delay_ms: u64,
    /// ‰ chance a chunk is forwarded byte-by-byte.
    pub split_ppk: u32,
    /// ‰ chance the connection is truncated at this chunk (a seeded
    /// prefix of it is forwarded first).
    pub truncate_ppk: u32,
    /// ‰ chance the connection is killed at this chunk boundary; the
    /// same roll decides FIN vs RST.
    pub kill_ppk: u32,
}

impl ChaosPlan {
    /// A proxy that forwards everything untouched (control runs).
    pub fn quiet() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// A scripted plan: action per chunk index, `Forward` beyond the
    /// end.
    pub fn scripted(script: Vec<ChaosAction>) -> ChaosPlan {
        ChaosPlan {
            script,
            ..ChaosPlan::default()
        }
    }

    /// Picks the action for chunk `chunk` of stream `stream`, which
    /// currently holds `len` bytes.
    fn action(&self, stream: u64, chunk: u64, len: usize) -> ChaosAction {
        if let Some(&a) = self.script.get(chunk as usize) {
            return a;
        }
        // xorshift64* over (seed, stream, chunk): deterministic and
        // independent per chunk, like FaultInjector's random mode.
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(chunk.wrapping_mul(0x94D0_49BB_1331_11EB))
            | 1;
        let mut roll = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let die = (roll() % 1000) as u32;
        let mut gate = self.kill_ppk;
        if die < gate {
            return if roll() % 2 == 0 {
                ChaosAction::Kill
            } else {
                ChaosAction::Reset
            };
        }
        gate += self.truncate_ppk;
        if die < gate {
            let keep = if len <= 1 { 0 } else { (roll() as usize) % len };
            return ChaosAction::Truncate(keep);
        }
        gate += self.split_ppk;
        if die < gate {
            return ChaosAction::Split;
        }
        gate += self.delay_ppk;
        if die < gate {
            return ChaosAction::Delay(self.delay_ms);
        }
        ChaosAction::Forward
    }
}

/// Largest chunk pulled from the source socket per action roll.
const CHUNK: usize = 4096;

/// A running chaos proxy. Connect clients to [`ChaosProxy::addr`];
/// every accepted connection is piped to the upstream address through
/// the fault plan. Dropping the handle leaves the proxy running;
/// call [`ChaosProxy::stop`].
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    /// Connections killed by a fault so far (Truncate/Kill/Reset).
    kills: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to
    /// `upstream`.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let kills = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let kills = Arc::clone(&kills);
            thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || {
                    let mut conn_idx: u64 = 0;
                    loop {
                        let Ok((down, _)) = listener.accept() else {
                            return;
                        };
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let Ok(up) = TcpStream::connect(upstream) else {
                            // Upstream gone (e.g. server shut down);
                            // drop the client and keep accepting.
                            conn_idx += 1;
                            continue;
                        };
                        let _ = down.set_nodelay(true);
                        let _ = up.set_nodelay(true);
                        spawn_pump(&down, &up, conn_idx * 2, plan.clone(), &kills);
                        spawn_pump(&up, &down, conn_idx * 2 + 1, plan.clone(), &kills);
                        conn_idx += 1;
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            kills,
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections a fault has killed so far (torn, FIN or RST).
    pub fn kill_count(&self) -> u64 {
        self.kills.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the acceptor. Established pumps die
    /// with their sockets (their peers close when client and server
    /// go away).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

/// Kills both sockets of a pump pair. `abortive` skips the read-side
/// half-close first, so any bytes the peer sends after the cut hit a
/// closed receive queue and elicit an RST (std has no stable
/// `SO_LINGER`, so this is the portable way to look like a reset
/// rather than a polite FIN; with no in-flight data it degrades to a
/// FIN, which peers must tolerate anyway).
fn kill_pair(src: &TcpStream, dst: &TcpStream, abortive: bool) {
    if !abortive {
        let _ = src.shutdown(Shutdown::Read);
        let _ = dst.shutdown(Shutdown::Read);
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// One direction of one proxied connection: read a chunk, roll the
/// plan, act.
fn spawn_pump(
    src: &TcpStream,
    dst: &TcpStream,
    stream_id: u64,
    plan: ChaosPlan,
    kills: &Arc<AtomicU64>,
) {
    let (Ok(mut src), Ok(mut dst)) = (src.try_clone(), dst.try_clone()) else {
        return;
    };
    let kills = Arc::clone(kills);
    let _ = thread::Builder::new()
        .name("chaos-pump".into())
        .spawn(move || {
            let mut buf = [0u8; CHUNK];
            let mut chunk: u64 = 0;
            loop {
                let n = match src.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        // Source side closed: propagate the close.
                        let _ = dst.shutdown(Shutdown::Both);
                        return;
                    }
                    Ok(n) => n,
                };
                match plan.action(stream_id, chunk, n) {
                    ChaosAction::Forward => {
                        if forward(&mut dst, &buf[..n]).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    ChaosAction::Delay(ms) => {
                        thread::sleep(Duration::from_millis(ms));
                        if forward(&mut dst, &buf[..n]).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    ChaosAction::Split => {
                        for b in &buf[..n] {
                            if forward(&mut dst, std::slice::from_ref(b)).is_err() {
                                let _ = src.shutdown(Shutdown::Both);
                                return;
                            }
                        }
                    }
                    ChaosAction::Truncate(keep) => {
                        let keep = keep.min(n);
                        let _ = forward(&mut dst, &buf[..keep]);
                        kills.fetch_add(1, Ordering::SeqCst);
                        kill_pair(&src, &dst, false);
                        return;
                    }
                    ChaosAction::Kill => {
                        kills.fetch_add(1, Ordering::SeqCst);
                        kill_pair(&src, &dst, false);
                        return;
                    }
                    ChaosAction::Reset => {
                        kills.fetch_add(1, Ordering::SeqCst);
                        kill_pair(&src, &dst, true);
                        return;
                    }
                }
                chunk += 1;
            }
        });
}

fn forward(dst: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    dst.write_all(bytes)?;
    dst.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// An upstream that echoes everything it receives.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => {
                                if s.write_all(&buf[..n]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, t)
    }

    #[test]
    fn quiet_proxy_is_transparent_even_with_split_writes() {
        let (upstream, _t) = echo_server();
        // Split every chunk: bytes arrive, just maximally fragmented.
        let proxy = ChaosProxy::spawn(
            upstream,
            ChaosPlan {
                split_ppk: 1000,
                ..ChaosPlan::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let msg = b"through the mangler";
        c.write_all(msg).unwrap();
        let mut got = vec![0u8; msg.len()];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, msg);
        assert_eq!(proxy.kill_count(), 0);
        proxy.stop();
    }

    #[test]
    fn scripted_truncate_tears_the_stream_and_counts_the_kill() {
        let (upstream, _t) = echo_server();
        // Chunk 0 (client→server) forwards 2 of the bytes, then the
        // connection dies in both directions.
        let proxy = ChaosProxy::spawn(
            upstream,
            ChaosPlan::scripted(vec![ChaosAction::Truncate(2)]),
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"doomed payload").unwrap();
        let mut got = Vec::new();
        // The echo of the surviving prefix may arrive; after that the
        // socket must report EOF or reset — never hang.
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let r = c.read_to_end(&mut got);
        assert!(r.is_ok() || r.is_err(), "read returned");
        assert!(got.len() <= 2, "at most the truncated prefix echoes back");
        assert_eq!(proxy.kill_count(), 1);
        proxy.stop();
    }

    #[test]
    fn seeded_rolls_are_deterministic() {
        let plan = ChaosPlan {
            seed: 42,
            delay_ppk: 100,
            split_ppk: 100,
            truncate_ppk: 50,
            kill_ppk: 50,
            delay_ms: 1,
            ..ChaosPlan::default()
        };
        for stream in 0..4u64 {
            for chunk in 0..64u64 {
                assert_eq!(
                    plan.action(stream, chunk, 100),
                    plan.action(stream, chunk, 100),
                    "same (seed, stream, chunk) must give the same action"
                );
            }
        }
        // And the script overrides the rolls.
        let scripted = ChaosPlan {
            script: vec![ChaosAction::Kill],
            ..plan
        };
        assert_eq!(scripted.action(3, 0, 10), ChaosAction::Kill);
    }
}
