//! A small blocking client for the vp-server protocol.
//!
//! One [`VpClient`] wraps one TCP connection and issues synchronous
//! request/response calls. It exists for the integration tests, the
//! load generator, and the quickstart example — it is intentionally
//! not a connection pool.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use vp_core::{KnnQuery, KnnSubSpec, MovingObject, Neighbor, RangeQuery, RangeSubSpec, SubEventKind};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, StatsReply, SubscribeSpec,
};

/// Client-side failure: transport, codec, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / framing failure (includes decode errors, which are
    /// `InvalidData` I/O errors).
    Io(io::Error),
    /// The server answered with a frame the call did not expect.
    Protocol(String),
    /// The server rejected the request with a typed error.
    Server {
        /// The protocol error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a typed rejection.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// One pushed [`Response::Events`] frame: the result-set changes of
/// one subscription at one commit time.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// The subscription the events belong to.
    pub sub: u64,
    /// Evaluation time of the tick that produced them.
    pub time: f64,
    /// `(kind, object id)` pairs, grouped by kind with ascending ids
    /// inside each group.
    pub events: Vec<(SubEventKind, u64)>,
}

/// A blocking connection to a vp-server.
pub struct VpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Event frames the server pushed while we were waiting for some
    /// other response; drained by [`VpClient::take_events`] /
    /// [`VpClient::wait_events`].
    pending_events: VecDeque<EventBatch>,
}

impl VpClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<VpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(VpClient {
            stream,
            reader,
            writer,
            pending_events: VecDeque::new(),
        })
    }

    fn send(&mut self, req: &Request) -> ClientResult<()> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next *non-event* response; pushed [`Response::Events`]
    /// frames that arrive in between are stashed for
    /// [`VpClient::take_events`].
    fn recv(&mut self) -> ClientResult<Response> {
        loop {
            match read_frame(&mut self.reader)? {
                Some(payload) => match Response::decode(&payload)? {
                    Response::Events { sub, time, events } => {
                        self.pending_events.push_back(EventBatch { sub, time, events });
                    }
                    other => return Ok(other),
                },
                None => {
                    return Err(ClientError::Protocol(
                        "server closed connection mid-request".into(),
                    ))
                }
            }
        }
    }

    fn expect_ok(&mut self) -> ClientResult<()> {
        match self.recv()? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Executes a range query; chunked responses are reassembled into
    /// one id list (see [`VpClient::range_frames`] to observe chunk
    /// boundaries).
    pub fn range(&mut self, query: &RangeQuery) -> ClientResult<Vec<u64>> {
        Ok(self.range_frames(query)?.into_iter().flatten().collect())
    }

    /// Executes a range query and returns each response chunk as its
    /// own vector, in arrival order. Tests use this to assert the
    /// streaming behavior; most callers want [`VpClient::range`].
    pub fn range_frames(&mut self, query: &RangeQuery) -> ClientResult<Vec<Vec<u64>>> {
        self.send(&Request::Range(*query))?;
        let mut frames = Vec::new();
        loop {
            match self.recv()? {
                Response::Ids { done, ids } => {
                    frames.push(ids);
                    if done {
                        return Ok(frames);
                    }
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        }
    }

    /// Executes a kNN query.
    pub fn knn(&mut self, query: &KnnQuery) -> ClientResult<Vec<Neighbor>> {
        self.send(&Request::Knn(*query))?;
        match self.recv()? {
            Response::Neighbors(ns) => Ok(ns),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Inserts one object.
    pub fn insert(&mut self, obj: MovingObject) -> ClientResult<()> {
        self.send(&Request::Insert(obj))?;
        self.expect_ok()
    }

    /// Deletes one object by id.
    pub fn delete(&mut self, id: u64) -> ClientResult<()> {
        self.send(&Request::Delete(id))?;
        self.expect_ok()
    }

    /// Applies one tick (an atomic batch of position re-reports).
    pub fn tick(&mut self, updates: &[MovingObject]) -> ClientResult<()> {
        self.send(&Request::Tick(updates.to_vec()))?;
        self.expect_ok()
    }

    /// Looks up an object's last reported state.
    pub fn get_object(&mut self, id: u64) -> ClientResult<Option<MovingObject>> {
        self.send(&Request::GetObject(id))?;
        match self.recv()? {
            Response::Object(o) => Ok(o),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches server + index statistics.
    pub fn stats(&mut self) -> ClientResult<StatsReply> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the server to shut down (acknowledged before it exits).
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.send(&Request::Shutdown)?;
        self.expect_ok()
    }

    // --- standing queries --------------------------------------------------

    fn subscribe(&mut self, spec: SubscribeSpec) -> ClientResult<u64> {
        self.send(&Request::Subscribe(spec))?;
        match self.recv()? {
            Response::Subscribed(id) => Ok(id),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers a standing range query. The initial result set
    /// arrives as an `Enter` backfill event batch (when non-empty);
    /// afterwards the server pushes result-set changes on this
    /// connection after every committed mutation.
    pub fn subscribe_range(&mut self, spec: RangeSubSpec) -> ClientResult<u64> {
        self.subscribe(SubscribeSpec::Range(spec))
    }

    /// Registers a standing kNN query (see [`VpClient::subscribe_range`]).
    pub fn subscribe_knn(&mut self, spec: KnnSubSpec) -> ClientResult<u64> {
        self.subscribe(SubscribeSpec::Knn(spec))
    }

    /// Drops a standing query. Event batches already in flight may
    /// still surface afterwards; none are produced by later ticks.
    pub fn unsubscribe(&mut self, sub: u64) -> ClientResult<()> {
        self.send(&Request::Unsubscribe(sub))?;
        self.expect_ok()
    }

    /// Drains the event batches already received (those that arrived
    /// interleaved with other responses). Does not touch the socket.
    pub fn take_events(&mut self) -> Vec<EventBatch> {
        self.pending_events.drain(..).collect()
    }

    /// Waits up to `timeout` for at least one event batch, then
    /// returns everything pending. An empty vector means the deadline
    /// passed without the server pushing anything.
    ///
    /// Uses a socket read timeout; intended for an idle connection
    /// (no concurrent request awaiting its reply).
    pub fn wait_events(&mut self, timeout: Duration) -> ClientResult<Vec<EventBatch>> {
        let deadline = Instant::now() + timeout;
        while self.pending_events.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            let got = read_frame(&mut self.reader);
            self.stream.set_read_timeout(None)?;
            match got {
                Ok(Some(payload)) => match Response::decode(&payload)? {
                    Response::Events { sub, time, events } => {
                        self.pending_events.push_back(EventBatch { sub, time, events });
                    }
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "unsolicited non-event frame {other:?}"
                        )))
                    }
                },
                Ok(None) => {
                    return Err(ClientError::Protocol(
                        "server closed connection while waiting for events".into(),
                    ))
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(self.take_events())
    }
}
