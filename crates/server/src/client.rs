//! A small blocking client for the vp-server protocol.
//!
//! One [`VpClient`] wraps one TCP connection and issues synchronous
//! request/response calls. It exists for the integration tests, the
//! load generator, and the quickstart example — it is intentionally
//! not a connection pool.
//!
//! # Robustness features
//!
//! * **Deadlines** — [`VpClient::set_deadline_budget`] makes every
//!   subsequent request travel inside a [`Request::Deadline`] envelope;
//!   the server answers [`ErrorCode::DeadlineExceeded`] instead of
//!   doing (or finishing) expired work.
//! * **Auto-reconnect** — with a [`RetryPolicy`] installed via
//!   [`VpClient::with_reconnect`], a transport failure on an
//!   *idempotent* call (range / knn / get / stats) redials with
//!   bounded exponential backoff and retries once. Mutations are never
//!   retried automatically: a lost reply leaves "applied or not"
//!   unknowable, so that decision stays with the caller.
//! * **Resumable subscriptions** — the client remembers every live
//!   subscription (spec + last sequence number seen). A reconnect
//!   re-subscribes each with a `resume` token; the server either
//!   replays the missed event batches gap-free or pushes a `reset`
//!   backfill. Duplicate frames (seq ≤ last seen) are dropped, so the
//!   caller observes each batch exactly once per reset epoch.
//! * **Heartbeats** — [`VpClient::ping`] round-trips a nonce; passive
//!   subscribers should call it within the server's idle window to
//!   avoid eviction.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use vp_core::{
    KnnQuery, KnnSubSpec, MovingObject, Neighbor, RangeQuery, RangeSubSpec, SubEventKind,
};
use vp_storage::RetryPolicy;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, ResumeFrom, StatsReply, SubscribeSpec,
};

/// Client-side failure: transport, codec, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / framing failure (includes decode errors, which are
    /// `InvalidData` I/O errors).
    Io(io::Error),
    /// The server answered with a frame the call did not expect.
    Protocol(String),
    /// The server rejected the request with a typed error.
    Server {
        /// The protocol error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Back-off hint in µs (0 = none); set on `Overloaded`.
        retry_after_us: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a typed rejection.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// The server's back-off hint, when there is one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Server { retry_after_us, .. } if *retry_after_us > 0 => {
                Some(Duration::from_micros(*retry_after_us))
            }
            _ => None,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// One pushed [`Response::Events`] frame: the result-set changes of
/// one subscription at one commit time.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// The subscription the events belong to.
    pub sub: u64,
    /// Evaluation time of the tick that produced them.
    pub time: f64,
    /// The subscription's monotone sequence number for this batch.
    pub seq: u64,
    /// `true`: discard all accumulated result-set state first — the
    /// events are a fresh backfill, not an incremental diff.
    pub reset: bool,
    /// `true`: the server is draining; this is the last frame this
    /// subscription will receive on this connection.
    pub fin: bool,
    /// `(kind, object id)` pairs, grouped by kind with ascending ids
    /// inside each group.
    pub events: Vec<(SubEventKind, u64)>,
}

/// What the client remembers about a live subscription so it can be
/// resumed across reconnects.
#[derive(Debug, Clone)]
struct SubState {
    spec: SubscribeSpec,
    /// Highest sequence number surfaced to the caller (0 = none yet).
    last_seq: u64,
}

/// A blocking connection to a vp-server.
pub struct VpClient {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Event frames the server pushed while we were waiting for some
    /// other response; drained by [`VpClient::take_events`] /
    /// [`VpClient::wait_events`].
    pending_events: VecDeque<EventBatch>,
    /// Live subscriptions, for resume-on-reconnect and seq dedupe.
    subs: HashMap<u64, SubState>,
    /// Reconnect policy; `None` disables auto-reconnect.
    reconnect: Option<RetryPolicy>,
    /// When set, every request is wrapped in a deadline envelope with
    /// this budget.
    deadline_budget: Option<Duration>,
    next_nonce: u64,
}

impl VpClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<VpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let (stream, reader, writer) = Self::dial(addr)?;
        Ok(VpClient {
            addr,
            stream,
            reader,
            writer,
            pending_events: VecDeque::new(),
            subs: HashMap::new(),
            reconnect: None,
            deadline_budget: None,
            next_nonce: 1,
        })
    }

    fn dial(
        addr: SocketAddr,
    ) -> io::Result<(TcpStream, BufReader<TcpStream>, BufWriter<TcpStream>)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok((stream, reader, writer))
    }

    /// Enables auto-reconnect (and read retry) with the given backoff
    /// policy. `RetryPolicy::standard()` is a sensible default.
    pub fn with_reconnect(mut self, policy: RetryPolicy) -> VpClient {
        self.reconnect = Some(policy);
        self
    }

    /// Sets (or clears) the per-request deadline budget. While set,
    /// every request travels inside a [`Request::Deadline`] envelope
    /// and expired work is answered with
    /// [`ErrorCode::DeadlineExceeded`].
    pub fn set_deadline_budget(&mut self, budget: Option<Duration>) {
        self.deadline_budget = budget;
    }

    /// Redials the server (with the reconnect policy's backoff) and
    /// resumes every tracked subscription from its last seen sequence
    /// number. Replayed/backfill event batches land in the pending
    /// queue exactly like server pushes.
    pub fn reconnect(&mut self) -> ClientResult<()> {
        let policy = self.reconnect.unwrap_or_else(RetryPolicy::none);
        let mut retry: u32 = 0;
        let conn = loop {
            match Self::dial(self.addr) {
                Ok(conn) => break conn,
                Err(e) => {
                    if retry + 1 >= policy.max_attempts.max(1) {
                        return Err(e.into());
                    }
                    std::thread::sleep(policy.backoff_for(retry));
                    retry += 1;
                }
            }
        };
        (self.stream, self.reader, self.writer) = conn;
        // Resume subscriptions under their original ids. The server
        // replays missed batches (dropped here if it over-replays) or
        // pushes a reset backfill.
        let resumes: Vec<(u64, SubscribeSpec, u64)> = self
            .subs
            .iter()
            .map(|(&id, st)| (id, st.spec, st.last_seq))
            .collect();
        for (id, spec, after_seq) in resumes {
            let got = self.subscribe_resume(spec, id, after_seq)?;
            if got != id {
                return Err(ClientError::Protocol(format!(
                    "resume of subscription {id} came back as {got}"
                )));
            }
        }
        Ok(())
    }

    fn send(&mut self, req: &Request) -> ClientResult<()> {
        let encoded = match (self.deadline_budget, req) {
            // Pings are liveness probes; a deadline envelope on them
            // is noise.
            (Some(budget), req) if !matches!(req, Request::Ping(_)) => Request::Deadline {
                budget_us: budget.as_micros().min(u64::MAX as u128) as u64,
                inner: Box::new(req.clone()),
            }
            .encode(),
            _ => req.encode(),
        };
        write_frame(&mut self.writer, &encoded)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Stashes one pushed event frame, deduplicating by sequence
    /// number: within a reset epoch each seq is surfaced at most once,
    /// and a `reset` frame restarts the epoch.
    fn ingest_events(
        &mut self,
        sub: u64,
        time: f64,
        seq: u64,
        reset: bool,
        fin: bool,
        events: Vec<(SubEventKind, u64)>,
    ) {
        if let Some(st) = self.subs.get_mut(&sub) {
            if fin {
                // Terminal marker; carries no events and no new seq.
            } else if reset {
                st.last_seq = seq;
            } else {
                if seq <= st.last_seq {
                    return; // duplicate (e.g. resume over-replay)
                }
                st.last_seq = seq;
            }
        }
        self.pending_events.push_back(EventBatch {
            sub,
            time,
            seq,
            reset,
            fin,
            events,
        });
    }

    /// Receives the next *non-event* response; pushed [`Response::Events`]
    /// frames that arrive in between are stashed for
    /// [`VpClient::take_events`].
    fn recv(&mut self) -> ClientResult<Response> {
        loop {
            match read_frame(&mut self.reader)? {
                Some(payload) => match Response::decode(&payload)? {
                    Response::Events {
                        sub,
                        time,
                        seq,
                        reset,
                        fin,
                        events,
                    } => {
                        self.ingest_events(sub, time, seq, reset, fin, events);
                    }
                    other => return Ok(other),
                },
                None => {
                    return Err(ClientError::Protocol(
                        "server closed connection mid-request".into(),
                    ))
                }
            }
        }
    }

    fn expect_ok(&mut self) -> ClientResult<()> {
        match self.recv()? {
            Response::Ok => Ok(()),
            Response::Error {
                code,
                message,
                retry_after_us,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after_us,
            }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Runs an idempotent call; on a transport error with a reconnect
    /// policy installed, redials (resuming subscriptions) and retries
    /// the call once.
    fn retry_read<T>(
        &mut self,
        mut f: impl FnMut(&mut VpClient) -> ClientResult<T>,
    ) -> ClientResult<T> {
        match f(self) {
            Err(ClientError::Io(first)) if self.reconnect.is_some() => {
                if self.reconnect().is_err() {
                    return Err(ClientError::Io(first));
                }
                f(self)
            }
            other => other,
        }
    }

    /// Executes a range query; chunked responses are reassembled into
    /// one id list (see [`VpClient::range_frames`] to observe chunk
    /// boundaries).
    pub fn range(&mut self, query: &RangeQuery) -> ClientResult<Vec<u64>> {
        Ok(self.range_frames(query)?.into_iter().flatten().collect())
    }

    /// Executes a range query and returns each response chunk as its
    /// own vector, in arrival order. Tests use this to assert the
    /// streaming behavior; most callers want [`VpClient::range`].
    pub fn range_frames(&mut self, query: &RangeQuery) -> ClientResult<Vec<Vec<u64>>> {
        let query = *query;
        self.retry_read(move |c| {
            c.send(&Request::Range(query))?;
            let mut frames = Vec::new();
            loop {
                match c.recv()? {
                    Response::Ids { done, ids } => {
                        frames.push(ids);
                        if done {
                            return Ok(frames);
                        }
                    }
                    Response::Error {
                        code,
                        message,
                        retry_after_us,
                    } => {
                        return Err(ClientError::Server {
                            code,
                            message,
                            retry_after_us,
                        })
                    }
                    other => {
                        return Err(ClientError::Protocol(format!("unexpected reply {other:?}")))
                    }
                }
            }
        })
    }

    /// Executes a kNN query.
    pub fn knn(&mut self, query: &KnnQuery) -> ClientResult<Vec<Neighbor>> {
        let query = *query;
        self.retry_read(move |c| {
            c.send(&Request::Knn(query))?;
            match c.recv()? {
                Response::Neighbors(ns) => Ok(ns),
                Response::Error {
                    code,
                    message,
                    retry_after_us,
                } => Err(ClientError::Server {
                    code,
                    message,
                    retry_after_us,
                }),
                other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        })
    }

    /// Inserts one object. Never auto-retried (see module docs).
    pub fn insert(&mut self, obj: MovingObject) -> ClientResult<()> {
        self.send(&Request::Insert(obj))?;
        self.expect_ok()
    }

    /// Deletes one object by id. Never auto-retried.
    pub fn delete(&mut self, id: u64) -> ClientResult<()> {
        self.send(&Request::Delete(id))?;
        self.expect_ok()
    }

    /// Applies one tick (an atomic batch of position re-reports).
    /// Never auto-retried.
    pub fn tick(&mut self, updates: &[MovingObject]) -> ClientResult<()> {
        self.send(&Request::Tick(updates.to_vec()))?;
        self.expect_ok()
    }

    /// Looks up an object's last reported state.
    pub fn get_object(&mut self, id: u64) -> ClientResult<Option<MovingObject>> {
        self.retry_read(move |c| {
            c.send(&Request::GetObject(id))?;
            match c.recv()? {
                Response::Object(o) => Ok(o),
                Response::Error {
                    code,
                    message,
                    retry_after_us,
                } => Err(ClientError::Server {
                    code,
                    message,
                    retry_after_us,
                }),
                other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        })
    }

    /// Fetches server + index statistics.
    pub fn stats(&mut self) -> ClientResult<StatsReply> {
        self.retry_read(|c| {
            c.send(&Request::Stats)?;
            match c.recv()? {
                Response::Stats(s) => Ok(s),
                Response::Error {
                    code,
                    message,
                    retry_after_us,
                } => Err(ClientError::Server {
                    code,
                    message,
                    retry_after_us,
                }),
                other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        })
    }

    /// Round-trips a heartbeat. Keeps an otherwise-passive connection
    /// (e.g. a subscriber between event pushes) from being evicted by
    /// the server's idle timer.
    pub fn ping(&mut self) -> ClientResult<()> {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.send(&Request::Ping(nonce))?;
        match self.recv()? {
            Response::Pong(n) if n == nonce => Ok(()),
            Response::Pong(n) => Err(ClientError::Protocol(format!(
                "pong nonce mismatch: sent {nonce}, got {n}"
            ))),
            Response::Error {
                code,
                message,
                retry_after_us,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after_us,
            }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the server to drain and shut down (acknowledged before it
    /// exits).
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.send(&Request::Shutdown)?;
        self.expect_ok()
    }

    // --- standing queries --------------------------------------------------

    fn subscribe_inner(
        &mut self,
        spec: SubscribeSpec,
        resume: Option<ResumeFrom>,
    ) -> ClientResult<u64> {
        self.send(&Request::Subscribe { spec, resume })?;
        match self.recv()? {
            Response::Subscribed(id) => {
                // Track (or keep tracking) the subscription *before*
                // its backfill/replay frames are read, so their seqs
                // are recorded.
                self.subs
                    .entry(id)
                    .or_insert(SubState { spec, last_seq: 0 });
                Ok(id)
            }
            Response::Error {
                code,
                message,
                retry_after_us,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after_us,
            }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers a standing range query. The initial result set
    /// arrives as an `Enter` backfill event batch (when non-empty);
    /// afterwards the server pushes result-set changes on this
    /// connection after every committed mutation.
    pub fn subscribe_range(&mut self, spec: RangeSubSpec) -> ClientResult<u64> {
        self.subscribe_inner(SubscribeSpec::Range(spec), None)
    }

    /// Registers a standing kNN query (see [`VpClient::subscribe_range`]).
    pub fn subscribe_knn(&mut self, spec: KnnSubSpec) -> ClientResult<u64> {
        self.subscribe_inner(SubscribeSpec::Knn(spec), None)
    }

    /// Resumes subscription `sub` after a reconnect, asking for replay
    /// of everything after `after_seq`. Usually called for you by
    /// [`VpClient::reconnect`]; exposed for tests and for clients that
    /// carry resume tokens across processes.
    pub fn subscribe_resume(
        &mut self,
        spec: SubscribeSpec,
        sub: u64,
        after_seq: u64,
    ) -> ClientResult<u64> {
        let id = self.subscribe_inner(spec, Some(ResumeFrom { sub, after_seq }))?;
        // If this client had no state for the sub (cross-process
        // resume), start dedupe from the caller's token.
        let st = self
            .subs
            .entry(id)
            .or_insert(SubState { spec, last_seq: 0 });
        st.last_seq = st.last_seq.max(after_seq);
        Ok(id)
    }

    /// Drops a standing query. Event batches already in flight may
    /// still surface afterwards; none are produced by later ticks.
    pub fn unsubscribe(&mut self, sub: u64) -> ClientResult<()> {
        self.send(&Request::Unsubscribe(sub))?;
        self.subs.remove(&sub);
        self.expect_ok()
    }

    /// The last sequence number surfaced for a subscription (its
    /// resume token), or `None` if the subscription is unknown.
    pub fn last_seq(&self, sub: u64) -> Option<u64> {
        self.subs.get(&sub).map(|st| st.last_seq)
    }

    /// Drains the event batches already received (those that arrived
    /// interleaved with other responses). Does not touch the socket.
    pub fn take_events(&mut self) -> Vec<EventBatch> {
        self.pending_events.drain(..).collect()
    }

    /// Waits up to `timeout` for at least one event batch, then
    /// returns everything pending. An empty vector means the deadline
    /// passed without the server pushing anything.
    ///
    /// Uses a socket read timeout; intended for an idle connection
    /// (no concurrent request awaiting its reply).
    pub fn wait_events(&mut self, timeout: Duration) -> ClientResult<Vec<EventBatch>> {
        let deadline = Instant::now() + timeout;
        while self.pending_events.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            let got = read_frame(&mut self.reader);
            self.stream.set_read_timeout(None)?;
            match got {
                Ok(Some(payload)) => match Response::decode(&payload)? {
                    Response::Events {
                        sub,
                        time,
                        seq,
                        reset,
                        fin,
                        events,
                    } => {
                        self.ingest_events(sub, time, seq, reset, fin, events);
                    }
                    // A stray Pong (e.g. from a keepalive whose reply
                    // raced an event wait) is dropped, not an error.
                    Response::Pong(_) => {}
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "unsolicited non-event frame {other:?}"
                        )))
                    }
                },
                Ok(None) => {
                    return Err(ClientError::Protocol(
                        "server closed connection while waiting for events".into(),
                    ))
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(self.take_events())
    }
}
