//! A small blocking client for the vp-server protocol.
//!
//! One [`VpClient`] wraps one TCP connection and issues synchronous
//! request/response calls. It exists for the integration tests, the
//! load generator, and the quickstart example — it is intentionally
//! not a connection pool.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use vp_core::{KnnQuery, MovingObject, Neighbor, RangeQuery};

use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response, StatsReply};

/// Client-side failure: transport, codec, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / framing failure (includes decode errors, which are
    /// `InvalidData` I/O errors).
    Io(io::Error),
    /// The server answered with a frame the call did not expect.
    Protocol(String),
    /// The server rejected the request with a typed error.
    Server {
        /// The protocol error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a typed rejection.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A blocking connection to a vp-server.
pub struct VpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl VpClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<VpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(VpClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, req: &Request) -> ClientResult<()> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> ClientResult<Response> {
        match read_frame(&mut self.reader)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Protocol(
                "server closed connection mid-request".into(),
            )),
        }
    }

    fn expect_ok(&mut self) -> ClientResult<()> {
        match self.recv()? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Executes a range query; chunked responses are reassembled into
    /// one id list (see [`VpClient::range_frames`] to observe chunk
    /// boundaries).
    pub fn range(&mut self, query: &RangeQuery) -> ClientResult<Vec<u64>> {
        Ok(self.range_frames(query)?.into_iter().flatten().collect())
    }

    /// Executes a range query and returns each response chunk as its
    /// own vector, in arrival order. Tests use this to assert the
    /// streaming behavior; most callers want [`VpClient::range`].
    pub fn range_frames(&mut self, query: &RangeQuery) -> ClientResult<Vec<Vec<u64>>> {
        self.send(&Request::Range(*query))?;
        let mut frames = Vec::new();
        loop {
            match self.recv()? {
                Response::Ids { done, ids } => {
                    frames.push(ids);
                    if done {
                        return Ok(frames);
                    }
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        }
    }

    /// Executes a kNN query.
    pub fn knn(&mut self, query: &KnnQuery) -> ClientResult<Vec<Neighbor>> {
        self.send(&Request::Knn(*query))?;
        match self.recv()? {
            Response::Neighbors(ns) => Ok(ns),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Inserts one object.
    pub fn insert(&mut self, obj: MovingObject) -> ClientResult<()> {
        self.send(&Request::Insert(obj))?;
        self.expect_ok()
    }

    /// Deletes one object by id.
    pub fn delete(&mut self, id: u64) -> ClientResult<()> {
        self.send(&Request::Delete(id))?;
        self.expect_ok()
    }

    /// Applies one tick (an atomic batch of position re-reports).
    pub fn tick(&mut self, updates: &[MovingObject]) -> ClientResult<()> {
        self.send(&Request::Tick(updates.to_vec()))?;
        self.expect_ok()
    }

    /// Looks up an object's last reported state.
    pub fn get_object(&mut self, id: u64) -> ClientResult<Option<MovingObject>> {
        self.send(&Request::GetObject(id))?;
        match self.recv()? {
            Response::Object(o) => Ok(o),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches server + index statistics.
    pub fn stats(&mut self) -> ClientResult<StatsReply> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the server to shut down (acknowledged before it exits).
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.send(&Request::Shutdown)?;
        self.expect_ok()
    }
}
